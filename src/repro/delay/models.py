"""The pluggable delay-oracle interface consumed by the routing algorithms.

LDRG's greedy loop (Figure 4 of the paper) only needs "the delay of this
routing graph"; which estimator answers that question is a knob:

* :class:`SpiceDelayModel` — circuit-level 50% delay (the paper's choice
  for LDRG/SLDRG/H1 and for all final reported numbers);
* :class:`NgspiceDelayModel` — the same measurement through an external
  ngspice binary (highest fidelity, least reliable — pair it with
  :class:`repro.runtime.resilience.ResilientDelayModel`);
* :class:`ElmoreGraphModel` — first-moment delay of the graph (fast, no
  simulation; what H2/H3 lean on, generalized to cycles);
* :class:`ElmoreTreeModel` — the O(k) tree formula (trees only);
* :class:`TwoPoleModel` — AWE-style two-pole estimate (the middle ground
  explored in the oracle ablation).

Each model binds a :class:`~repro.delay.parameters.Technology` so the
algorithms can treat delay as a pure function of the routing graph.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import astuple
from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.circuit.deck import deck_from_circuit
from repro.circuit.measure import threshold_crossing
from repro.circuit.moments import two_pole_delay
from repro.circuit.ngspice import NgspiceError, NgspiceRunner
from repro.delay.elmore_tree import elmore_delays
from repro.delay.elmore_graph import graph_elmore_delays
from repro.delay.parameters import Technology
from repro.delay.rc_builder import (
    EdgeWidths,
    build_interconnect_circuit,
    build_reduced_rc,
    node_label,
)
from repro.delay.spice_delay import SpiceOptions, spice_delays
from repro.graph.routing_graph import RoutingGraph


def reduce_delays(delays: Mapping[int, float],
                  weights: Mapping[int, float] | None = None) -> float:
    """Reduce per-sink delays to a scalar objective.

    ``weights=None`` is the ORG objective ``t(G) = max_i t(n_i)``; a
    weight map is the CSORG objective ``Σ αᵢ·t(nᵢ)`` (Section 5.1).
    Every greedy loop and candidate evaluator shares this one reduction,
    so search scores and reported numbers cannot use different formulas.
    """
    if weights is None:
        return max(delays.values())
    return sum(alpha * delays[sink] for sink, alpha in weights.items())


#: A candidate edge addition: a ``(u, v)`` node pair absent from the base.
CandidateEdge = tuple[int, int]

#: A candidate wire-width upgrade: ``(edge, new_width)``.
WidthUpgrade = tuple[tuple[int, int], float]


@runtime_checkable
class CandidateEvaluator(Protocol):
    """Scores batches of candidate modifications against one base graph.

    The greedy loops (LDRG/SLDRG/CSORG, local search, wire sizing) spend
    almost all of their time asking "what would the objective be if I
    applied this one modification?" for every candidate in turn. This
    protocol lets the answer be produced any way that is profitable:

    * naively, re-evaluating the oracle on a copied graph per candidate
      (the reference semantics);
    * incrementally, via a low-rank update against a factorization of
      the base graph shared by the whole batch
      (:class:`repro.delay.incremental.IncrementalElmoreEvaluator`);
    * in parallel, fanning candidates out over the
      :mod:`repro.runtime` worker pool for expensive oracles.

    Scores are objective values (see :func:`reduce_delays`), returned in
    candidate order so callers can argmin with stable tie-breaking.
    """

    def score_additions(self, graph: RoutingGraph,
                        candidates: Sequence[CandidateEdge]) -> list[float]:
        """Objective of ``graph`` with each candidate edge added."""
        ...

    def score_width_upgrades(self, graph: RoutingGraph,
                             widths: Mapping[tuple[int, int], float],
                             upgrades: Sequence[WidthUpgrade]) -> list[float]:
        """Objective of ``graph`` with each single width upgrade applied."""
        ...


class DelayModel(ABC):
    """A delay oracle: routing graph → per-sink delays."""

    #: short name used in reports and results
    name: str = "abstract"

    #: whether evaluations are pure functions of (graph, widths, tech) and
    #: may therefore be memoized (subprocess-backed and provenance-recording
    #: oracles opt out)
    cacheable: bool = True

    def __init__(self, tech: Technology):
        self.tech = tech

    @abstractmethod
    def delays(self, graph: RoutingGraph,
               widths: EdgeWidths | None = None) -> dict[int, float]:
        """Source→sink delay (seconds) for every sink pin."""

    def max_delay(self, graph: RoutingGraph,
                  widths: EdgeWidths | None = None) -> float:
        """``t(G) = max_i t(n_i)``, the ORG objective."""
        return max(self.delays(graph, widths).values())

    def weighted_delay(self, graph: RoutingGraph,
                       criticalities: dict[int, float],
                       widths: EdgeWidths | None = None) -> float:
        """``Σ αᵢ·t(nᵢ)``, the CSORG objective (Section 5.1)."""
        return reduce_delays(self.delays(graph, widths), criticalities)

    def memo_key(self) -> tuple:
        """Hashable identity of this oracle's full configuration.

        Two models with equal keys must return identical delays for any
        graph — the memo cache relies on it. Subclasses with extra knobs
        (options, thresholds) must extend the tuple.
        """
        return (type(self).__name__, self.name, astuple(self.tech))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SpiceDelayModel(DelayModel):
    """Circuit-simulation 50% delay — the paper's measurement."""

    name = "spice"

    def __init__(self, tech: Technology, options: SpiceOptions | None = None):
        super().__init__(tech)
        self.options = options or SpiceOptions()

    def delays(self, graph: RoutingGraph,
               widths: EdgeWidths | None = None) -> dict[int, float]:
        all_delays = spice_delays(graph, self.tech, self.options, widths)
        return {sink: all_delays[sink] for sink in graph.sink_indices()}

    def memo_key(self) -> tuple:
        return super().memo_key() + astuple(self.options)


class NgspiceDelayModel(DelayModel):
    """50% delay measured by an external ngspice binary.

    The most faithful oracle in the repo — and the least reliable, since
    it shells out to a subprocess that may be missing, hang, or crash.
    Raises :class:`~repro.circuit.ngspice.NgspiceError` on any such
    fault; wrap in :class:`repro.runtime.resilience.ResilientDelayModel`
    to retry and degrade to the in-process engines instead.
    """

    name = "ngspice"

    #: Shells out to a subprocess that can fail or be retried — results
    #: must stay attributable to a live run, so never memoize them.
    cacheable = False

    #: Simulation window as a multiple of the worst Elmore delay.
    HORIZON_FACTOR = 10.0

    def __init__(self, tech: Technology, options: SpiceOptions | None = None,
                 runner: NgspiceRunner | None = None):
        super().__init__(tech)
        self.options = options or SpiceOptions()
        self.runner = runner or NgspiceRunner()

    def delays(self, graph: RoutingGraph,
               widths: EdgeWidths | None = None) -> dict[int, float]:
        circuit = build_interconnect_circuit(
            graph, self.tech, segments=self.options.segments, widths=widths,
            include_inductance=self.options.include_inductance)
        rc_system = build_reduced_rc(graph, self.tech, segments=1,
                                     widths=widths)
        t_stop = self.HORIZON_FACTOR * max(float(max(rc_system.elmore())),
                                           1e-15)
        sinks = list(graph.sink_indices())
        deck = deck_from_circuit(circuit, t_stop=t_stop,
                                 print_nodes=[node_label(s) for s in sinks])
        result = self.runner.run(deck)
        delays: dict[int, float] = {}
        for sink in sinks:
            crossing = threshold_crossing(
                result.times, result.voltage(node_label(sink)),
                self.options.threshold * 1.0)
            if crossing is None:
                raise NgspiceError(
                    f"sink {node_label(sink)} never crossed "
                    f"{self.options.threshold:.0%} within {t_stop:.3g}s "
                    f"of ngspice simulation")
            delays[sink] = float(crossing)
        return delays


class ElmoreGraphModel(DelayModel):
    """First-moment (Elmore) delay, valid on arbitrary routing graphs."""

    name = "elmore"

    def delays(self, graph: RoutingGraph,
               widths: EdgeWidths | None = None) -> dict[int, float]:
        all_delays = graph_elmore_delays(graph, self.tech, widths)
        return {sink: all_delays[sink] for sink in graph.sink_indices()}


class ElmoreTreeModel(DelayModel):
    """The O(k) Elmore tree formula; raises on cyclic routings."""

    name = "elmore-tree"

    def delays(self, graph: RoutingGraph,
               widths: EdgeWidths | None = None) -> dict[int, float]:
        all_delays = elmore_delays(graph, self.tech, widths)
        return {sink: all_delays[sink] for sink in graph.sink_indices()}


class TwoPoleModel(DelayModel):
    """Two-pole (AWE) threshold delay from the first three moments."""

    name = "two-pole"

    def __init__(self, tech: Technology, segments: int = 1,
                 threshold: float = 0.5):
        super().__init__(tech)
        if not 0 < threshold < 1:
            raise ValueError("threshold must lie strictly between 0 and 1")
        self.segments = segments
        self.threshold = threshold

    def memo_key(self) -> tuple:
        return super().memo_key() + (self.segments, self.threshold)

    def delays(self, graph: RoutingGraph,
               widths: EdgeWidths | None = None) -> dict[int, float]:
        system = build_reduced_rc(graph, self.tech, segments=self.segments,
                                  widths=widths)
        lu = lu_factor(system.G)
        m0 = lu_solve(lu, system.b)
        m1 = lu_solve(lu, -(system.c * m0))
        m2 = lu_solve(lu, -(system.c * m1))
        moments = np.vstack([m0, m1, m2])
        return {sink: two_pole_delay(moments[:, system.row(sink)],
                                     fraction=self.threshold)
                for sink in graph.sink_indices()}


_FACTORIES = {
    "spice": SpiceDelayModel,
    "ngspice": NgspiceDelayModel,
    "elmore": ElmoreGraphModel,
    "elmore-graph": ElmoreGraphModel,
    "elmore-tree": ElmoreTreeModel,
    "two-pole": TwoPoleModel,
}


def get_delay_model(spec: str | DelayModel, tech: Technology) -> DelayModel:
    """Resolve a model spec (string shortcut or instance) to a model.

    A passed-in :class:`DelayModel` instance is returned as-is (its bound
    technology wins, by design — it may deliberately differ).
    """
    if isinstance(spec, DelayModel):
        return spec
    try:
        factory = _FACTORIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown delay model {spec!r}; expected one of "
            f"{sorted(_FACTORIES)} or a DelayModel instance") from None
    return factory(tech)
