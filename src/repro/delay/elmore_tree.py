"""The O(k) Elmore delay formula for routing trees (equation (1)).

For a tree rooted at the source, with ``r_e``/``c_e`` the edge resistance
and capacitance and ``C_i`` the total (sink + wire) capacitance of the
subtree hanging below node ``n_i``::

    t_ED(n_i) = r_d · C_root + Σ_{e_j ∈ path(n0, n_i)} r_{e_j} (c_{e_j}/2 + C_j)

Computed in two tree passes: subtree capacitances bottom-up, then delays
top-down — O(k) overall, as Rubinstein–Penfield–Horowitz noted. This
formula only exists for trees; :mod:`repro.delay.elmore_graph` covers
arbitrary routing graphs and reduces to this one on trees (a property the
test suite checks).
"""

from __future__ import annotations

from repro.delay.parameters import Technology
from repro.delay.rc_builder import EdgeWidths, edge_width
from repro.graph.routing_graph import RoutingGraph


def elmore_delays(graph: RoutingGraph, tech: Technology,
                  widths: EdgeWidths | None = None) -> dict[int, float]:
    """Elmore delay (seconds) from the source to *every* node of a tree.

    Steiner nodes are included (they carry no sink load but their delays
    are needed by tree-growing algorithms). Raises
    :class:`~repro.graph.routing_graph.RoutingGraphError` if the routing
    is not a tree.
    """
    parents = graph.rooted_parents()
    order = _topological_from_root(graph, parents)
    return _delays_from_orientation(graph, tech, widths, parents, order)


def elmore_delays_component(graph: RoutingGraph, tech: Technology,
                            widths: EdgeWidths | None = None) -> dict[int, float]:
    """Elmore delays over the source-connected component only.

    Tree-growing algorithms (ERT) evaluate *partial* trees in which most
    pins are still isolated; this variant only requires the component
    containing the source to be acyclic. Nodes outside the component are
    absent from the result.
    """
    from repro.graph.routing_graph import RoutingGraphError

    parents: dict[int, int | None] = {graph.source: None}
    order = [graph.source]
    edge_count = 0
    cursor = 0
    while cursor < len(order):
        node = order[cursor]
        cursor += 1
        for neighbor in graph.neighbors(node):
            edge_count += 1
            if neighbor not in parents:
                parents[neighbor] = node
                order.append(neighbor)
    if edge_count // 2 != len(order) - 1:
        raise RoutingGraphError(
            "source component contains a cycle; Elmore tree delay undefined")
    return _delays_from_orientation(graph, tech, widths, parents, order)


def _delays_from_orientation(graph: RoutingGraph, tech: Technology,
                             widths: EdgeWidths | None,
                             parents: dict[int, int | None],
                             order: list[int]) -> dict[int, float]:

    subtree_cap: dict[int, float] = {}
    for node in reversed(order):
        cap = tech.sink_capacitance if 0 < node < graph.num_pins else 0.0
        for child in graph.neighbors(node):
            if parents.get(child) == node:
                cap += _edge_cap(graph, tech, widths, node, child) + subtree_cap[child]
        subtree_cap[node] = cap

    delays: dict[int, float] = {}
    root_delay = tech.driver_resistance * subtree_cap[graph.source]
    delays[graph.source] = root_delay
    for node in order:
        if node == graph.source:
            continue
        parent = parents[node]
        assert parent is not None
        r_e = _edge_res(graph, tech, widths, parent, node)
        c_e = _edge_cap(graph, tech, widths, parent, node)
        delays[node] = delays[parent] + r_e * (c_e / 2.0 + subtree_cap[node])
    return delays


def elmore_tree_delay(graph: RoutingGraph, tech: Technology,
                      widths: EdgeWidths | None = None) -> float:
    """Max source→sink Elmore delay, ``t_ED(T) = max_i t_ED(n_i)``."""
    delays = elmore_delays(graph, tech, widths)
    return max(delays[sink] for sink in graph.sink_indices())


def _topological_from_root(graph: RoutingGraph,
                           parents: dict[int, int | None]) -> list[int]:
    """Nodes in BFS order from the root (parents before children)."""
    children: dict[int, list[int]] = {node: [] for node in parents}
    root = graph.source
    for node, parent in parents.items():
        if parent is not None:
            children[parent].append(node)
    order = [root]
    cursor = 0
    while cursor < len(order):
        order.extend(children[order[cursor]])
        cursor += 1
    return order


def _edge_res(graph: RoutingGraph, tech: Technology,
              widths: EdgeWidths | None, u: int, v: int) -> float:
    width = edge_width(widths, u, v)
    return tech.resistance_per_um(width) * graph.edge_length(u, v)


def _edge_cap(graph: RoutingGraph, tech: Technology,
              widths: EdgeWidths | None, u: int, v: int) -> float:
    width = edge_width(widths, u, v)
    return tech.capacitance_per_um(width) * graph.edge_length(u, v)
