"""Build electrical models of a routing graph.

Two builders share one discretization convention:

* :func:`build_reduced_rc` produces the ground-referenced
  :class:`~repro.circuit.analytic.ReducedRC` system used by the exact
  analytic solver and the graph-Elmore computation;
* :func:`build_interconnect_circuit` produces a full
  :class:`~repro.circuit.netlist.Circuit` (driver source included) for the
  MNA transient engine, deck export, and the inductance ablation.

Each wire is discretized into π-sections: a segment of length ``ℓ``
becomes a series resistance ``r·ℓ`` with half the segment capacitance
``c·ℓ/2`` at each end (plus an optional series inductance ``l·ℓ``). One
π-section per edge already matches the distributed line's first moment
exactly (which is why the Elmore formula carries the ``c_e/2`` term); more
sections refine the 50%-crossing waveform. Sink loading capacitors sit on
every sink pin, and the driver is a step source behind
``driver_resistance``, exactly the paper's SPICE setup.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.circuit.analytic import ReducedRC
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.waveform import Step
from repro.delay.parameters import Technology
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError

#: Node label of the driver input in full circuits.
INPUT_NODE = "in"

EdgeWidths = Mapping[tuple[int, int], float]


def node_label(node: int) -> str:
    """Circuit node label of routing-graph node ``node``."""
    return f"n{node}"


def edge_key(u: int, v: int) -> tuple[int, int]:
    """Canonical (sorted) key for an undirected edge."""
    return (u, v) if u < v else (v, u)


def edge_width(widths: EdgeWidths | None, u: int, v: int) -> float:
    """Width of edge ``(u, v)``; unit width when unspecified."""
    if widths is None:
        return 1.0
    return float(widths.get(edge_key(u, v), 1.0))


def segment_count_for(length: float, segments: int) -> int:
    """Number of π-sections for a wire of ``length`` µm.

    ``segments`` is the per-edge target; zero-length edges (coincident
    pins cannot occur, but Steiner points may land on a pin's coordinate
    lines) still get one section so the topology stays connected.
    """
    if segments < 1:
        raise ValueError("segments must be >= 1")
    return segments if length > 0 else 1


def build_reduced_rc(graph: RoutingGraph, tech: Technology,
                     segments: int = 1,
                     widths: EdgeWidths | None = None) -> ReducedRC:
    """The reduced RC system of a routing graph.

    Rows are ordered: graph nodes first (in node order), then the internal
    wire nodes of each edge. ``labels[i]`` is the graph node id for pin
    rows and ``("w", u, v, j)`` for internal rows.

    Raises :class:`RoutingGraphError` when the graph does not span the
    net — a disconnected pin would silently float otherwise.
    """
    if not graph.spans_net():
        raise RoutingGraphError(
            f"routing over net {graph.net.name!r} does not span all pins")
    nodes = sorted(graph.nodes())
    labels: list = list(nodes)
    row_of: dict = {node: i for i, node in enumerate(nodes)}

    # First pass: create internal segment nodes.
    edge_rows: dict[tuple[int, int], list[int]] = {}
    for u, v in graph.edges():
        key = edge_key(u, v)
        count = segment_count_for(graph.edge_length(u, v), segments)
        internal = []
        for j in range(count - 1):
            row_of[("w", key[0], key[1], j)] = len(labels)
            internal.append(len(labels))
            labels.append(("w", key[0], key[1], j))
        edge_rows[key] = internal

    n = len(labels)
    G = np.zeros((n, n))
    c = np.zeros(n)

    for u, v in graph.edges():
        key = edge_key(u, v)
        length = graph.edge_length(u, v)
        width = edge_width(widths, u, v)
        chain = [row_of[key[0]]] + edge_rows[key] + [row_of[key[1]]]
        count = len(chain) - 1
        seg_len = length / count
        seg_g = (1.0 / (tech.resistance_per_um(width) * seg_len)
                 if seg_len > 0 else 1.0 / 1e-6)  # 1 µΩ pseudo-short
        seg_c = tech.capacitance_per_um(width) * seg_len
        for a, b_row in zip(chain, chain[1:]):
            G[a, a] += seg_g
            G[b_row, b_row] += seg_g
            G[a, b_row] -= seg_g
            G[b_row, a] -= seg_g
            c[a] += seg_c / 2.0
            c[b_row] += seg_c / 2.0

    for sink in graph.sink_indices():
        c[row_of[sink]] += tech.sink_capacitance

    g_driver = 1.0 / tech.driver_resistance
    source_row = row_of[graph.source]
    G[source_row, source_row] += g_driver
    b = np.zeros(n)
    b[source_row] = g_driver

    # Nodes with zero capacitance (possible only for degenerate zero-length
    # topologies) get a vanishing cap so the state space stays well-posed.
    floor = 1e-24
    c[c < floor] = floor
    return ReducedRC(G=G, c=c, b=b, labels=labels)


def build_interconnect_circuit(graph: RoutingGraph, tech: Technology,
                               segments: int = 1,
                               widths: EdgeWidths | None = None,
                               include_inductance: bool = False,
                               step: Step | None = None) -> Circuit:
    """A full circuit netlist of the routing: driver, wires, sink loads.

    Node ``n{i}`` carries routing node ``i``; the step source drives node
    ``in`` through the driver resistor. With ``include_inductance`` each
    wire segment gains its series inductance (Table 1's 492 fH/µm), which
    only the MNA transient engine can simulate.
    """
    if not graph.spans_net():
        raise RoutingGraphError(
            f"routing over net {graph.net.name!r} does not span all pins")
    circuit = Circuit(name=f"route_{graph.net.name}")
    circuit.add_voltage_source("vin", INPUT_NODE, GROUND,
                               step if step is not None else Step())
    circuit.add_resistor("rdrv", INPUT_NODE, node_label(graph.source),
                         tech.driver_resistance)

    cap_at: dict[str, float] = {}
    for u, v in graph.edges():
        key = edge_key(u, v)
        length = graph.edge_length(u, v)
        width = edge_width(widths, u, v)
        count = segment_count_for(length, segments)
        seg_len = length / count
        seg_r = max(tech.resistance_per_um(width) * seg_len, 1e-6)
        seg_c = tech.capacitance_per_um(width) * seg_len
        seg_l = tech.inductance_per_um(width) * seg_len
        chain = [node_label(key[0])]
        chain += [f"w{key[0]}_{key[1]}_{j}" for j in range(count - 1)]
        chain.append(node_label(key[1]))
        for j, (a, b) in enumerate(zip(chain, chain[1:])):
            if include_inductance and seg_l > 0:
                mid = f"l{key[0]}_{key[1]}_{j}"
                circuit.add_resistor(f"r{key[0]}_{key[1]}_{j}", a, mid, seg_r)
                circuit.add_inductor(f"ll{key[0]}_{key[1]}_{j}", mid, b, seg_l)
            else:
                circuit.add_resistor(f"r{key[0]}_{key[1]}_{j}", a, b, seg_r)
            cap_at[a] = cap_at.get(a, 0.0) + seg_c / 2.0
            cap_at[b] = cap_at.get(b, 0.0) + seg_c / 2.0

    for sink in graph.sink_indices():
        label = node_label(sink)
        cap_at[label] = cap_at.get(label, 0.0) + tech.sink_capacitance

    for index, (label, value) in enumerate(sorted(cap_at.items())):
        if value > 0:
            circuit.add_capacitor(f"c{index}", label, GROUND, value)
    return circuit
