"""Tree/link partitioning for non-tree Elmore delay (Chan & Karplus [6]).

The paper cites Chan & Karplus, "Computing Signal Delay in General RC
Networks by Tree/Link Partitioning", as the way to extend Elmore delay to
non-tree topologies. This module implements that idea in its linear-
algebra form:

1. partition the routing graph's edges into a spanning tree and a set of
   *links* (the extra wires the LDRG family adds);
2. solve against the tree part in O(n) per right-hand side — a grounded
   tree Laplacian factors by leaf elimination in one up-down sweep;
3. fold each link back in with a Woodbury (rank-L) correction.

For L links the total cost is O(n·L + L³) versus O(n³) for the dense
solve in :mod:`repro.delay.elmore_graph` — the routings this library
produces have L ∈ {1, 2, 3}, so the correction is essentially free. The
two implementations are verified against each other in the property
tests; this one also serves as an independent check that the dense path
is right.
"""

from __future__ import annotations

import numpy as np

from repro.delay.parameters import Technology
from repro.delay.rc_builder import EdgeWidths, edge_width
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError
from repro.guard.numerics import guarded_solve


class TreeLinkSystem:
    """A grounded tree Laplacian with O(n) solves, plus link corrections."""

    def __init__(self, order: list[int], parents: dict[int, int | None],
                 parent_conductance: dict[int, float],
                 driver_conductance: float, source: int):
        self.order = order                      # BFS order, source first
        self.parents = parents
        self.g_parent = parent_conductance      # node -> g of its stem edge
        self.g_driver = driver_conductance
        self.source = source
        self.index = {node: i for i, node in enumerate(order)}

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``G_tree x = b`` in O(n) by leaf elimination.

        ``G_tree`` is the tree's conductance Laplacian plus the driver
        conductance on the source row (which grounds the system and makes
        it nonsingular).
        """
        n = len(self.order)
        if b.shape != (n,):
            raise ValueError(f"b has shape {b.shape}, expected ({n},)")
        # Upward sweep: eliminate leaves into their parents. After the
        # sweep, diag[i] holds the Schur-complement pivot of node i.
        diag = np.zeros(n)
        diag[self.index[self.source]] = self.g_driver
        for node in self.order:
            if node == self.source:
                continue
            g = self.g_parent[node]
            diag[self.index[node]] += g
            diag[self.index[self.parents[node]]] += g  # type: ignore[index]
        work = b.astype(float).copy()
        factor = np.zeros(n)
        for node in reversed(self.order):
            if node == self.source:
                continue
            i = self.index[node]
            parent = self.parents[node]
            assert parent is not None
            j = self.index[parent]
            g = self.g_parent[node]
            factor[i] = g / diag[i]
            diag[j] -= g * factor[i]
            work[j] += factor[i] * work[i]
        # Downward sweep: back-substitute from the source.
        x = np.zeros(n)
        src = self.index[self.source]
        x[src] = work[src] / diag[src]
        for node in self.order:
            if node == self.source:
                continue
            i = self.index[node]
            j = self.index[self.parents[node]]  # type: ignore[index]
            x[i] = work[i] / diag[i] + factor[i] * x[j]
        return x


def partition_tree_links(graph: RoutingGraph) -> tuple[dict[int, int | None],
                                                       list[int],
                                                       list[tuple[int, int]]]:
    """Split the graph's edges into a BFS spanning tree and link edges.

    Returns ``(parents, bfs_order, links)``; raises if the graph does not
    span its net (the partition would silently drop pins otherwise).
    """
    if not graph.spans_net():
        raise RoutingGraphError(
            f"routing over net {graph.net.name!r} does not span all pins")
    parents: dict[int, int | None] = {graph.source: None}
    order = [graph.source]
    cursor = 0
    while cursor < len(order):
        node = order[cursor]
        cursor += 1
        for neighbor in graph.neighbors(node):
            if neighbor not in parents:
                parents[neighbor] = node
                order.append(neighbor)
    tree_edges = {(min(n, p), max(n, p))
                  for n, p in parents.items() if p is not None}
    links = [edge for edge in graph.edges() if edge not in tree_edges
             and edge[0] in parents and edge[1] in parents]
    return parents, order, links


def tree_link_elmore(graph: RoutingGraph, tech: Technology,
                     widths: EdgeWidths | None = None) -> dict[int, float]:
    """Elmore (first-moment) delays of an arbitrary routing graph via
    tree/link partitioning — same numbers as
    :func:`repro.delay.elmore_graph.graph_elmore_delays`, different route.
    """
    parents, order, links = partition_tree_links(graph)
    n = len(order)
    index = {node: i for i, node in enumerate(order)}

    def conductance(u: int, v: int) -> float:
        length = graph.edge_length(u, v)
        r = tech.resistance_per_um(edge_width(widths, u, v)) * max(length, 1e-6)
        return 1.0 / r

    g_parent = {node: conductance(node, parent)
                for node, parent in parents.items() if parent is not None}
    tree = TreeLinkSystem(order, parents, g_parent,
                          1.0 / tech.driver_resistance, graph.source)

    # Node capacitances: half of each incident edge's wire cap + sink load.
    c = np.zeros(n)
    for u, v in graph.edges():
        cap = (tech.capacitance_per_um(edge_width(widths, u, v))
               * graph.edge_length(u, v))
        c[index[u]] += cap / 2.0
        c[index[v]] += cap / 2.0
    for sink in graph.sink_indices():
        c[index[sink]] += tech.sink_capacitance

    # T = G^-1 (c * v_inf) with v_inf = 1 (all-ones DC solution), where
    # G = G_tree + A W A^T over the links. Woodbury:
    #   G^-1 y = T0 - Z (W^-1 + A^T Z)^-1 A^T T0,  Z = G_tree^-1 A.
    y = c.copy()
    t0 = tree.solve(y)
    if not links:
        return {node: float(t0[index[node]]) for node in order}

    A = np.zeros((n, len(links)))
    w = np.zeros(len(links))
    for k, (u, v) in enumerate(links):
        A[index[u], k] = 1.0
        A[index[v], k] = -1.0
        w[k] = conductance(u, v)
    Z = np.column_stack([tree.solve(A[:, k]) for k in range(len(links))])
    # The capacitance matrix diag(1/w) + AᵀG⁻¹A is SPD, but a
    # degenerate link set (duplicated links, vanishing conductance) can
    # push it to singularity — surface that as a structured
    # NumericalIncident, never a raw LinAlgError.
    small = np.diag(1.0 / w) + A.T @ Z
    correction = Z @ guarded_solve(small, A.T @ t0, spd=True,
                                   context="tree-link woodbury correction")
    t = t0 - correction
    return {node: float(t[index[node]]) for node in order}
