"""Elmore (first-moment) delay for arbitrary routing graphs.

The paper notes that "the Elmore delay model outlined above applies only
to tree topologies, and in order to extend this formula to non-tree
topologies, additional transformations are required [6]" (Chan–Karplus
tree/link partitioning). This module takes the direct route: the Elmore
delay of node ``i`` is the first moment of its step-response error,

    T = ∫ (v∞ − v(t)) dt = G⁻¹ C (v∞ − v0),

one sparse/dense linear solve over the reduced RC system. On trees this
reproduces the classic formula exactly (single π-section per edge matches
the distributed line's first moment), which the property tests verify.
"""

from __future__ import annotations

from repro.delay.parameters import Technology
from repro.delay.rc_builder import EdgeWidths, build_reduced_rc
from repro.graph.routing_graph import RoutingGraph


def graph_elmore_delays(graph: RoutingGraph, tech: Technology,
                        widths: EdgeWidths | None = None) -> dict[int, float]:
    """First-moment delay (seconds) from the source to every graph node.

    Works for any connected routing graph, cyclic or not.
    """
    system = build_reduced_rc(graph, tech, segments=1, widths=widths)
    elmore = system.elmore()
    return {label: float(elmore[row])
            for row, label in enumerate(system.labels)
            if isinstance(label, int)}


def graph_elmore_delay(graph: RoutingGraph, tech: Technology,
                       widths: EdgeWidths | None = None) -> float:
    """Max source→sink first-moment delay of the routing graph."""
    delays = graph_elmore_delays(graph, tech, widths)
    return max(delays[sink] for sink in graph.sink_indices())
