"""Delay models for routing graphs.

Implements every delay estimator the paper uses, over one shared
technology description (Table 1):

* :func:`elmore_delays` — the O(k) Elmore formula for routing *trees*
  (equation (1) of the paper);
* :func:`graph_elmore_delays` — exact first-moment delay for arbitrary
  routing graphs (the Chan–Karplus generalization, via one linear solve);
* :func:`spice_delays` / :func:`spice_delay` — 50%-threshold delay from a
  full circuit-level simulation of the interconnect (the repo's SPICE);
* :class:`DelayModel` — the pluggable oracle interface the routing
  algorithms consume (``"spice"``, ``"elmore"``, ``"two-pole"``, ...);
* :class:`CandidateEvaluator` implementations — batched candidate
  scoring for the greedy loops, including the Sherman–Morrison
  incremental engine and the fingerprint-keyed delay memo
  (:mod:`repro.delay.incremental`).
"""

from repro.delay.parameters import Technology
from repro.delay.rc_builder import (
    build_interconnect_circuit,
    build_reduced_rc,
    segment_count_for,
)
from repro.delay.elmore_tree import elmore_delays, elmore_tree_delay
from repro.delay.elmore_graph import graph_elmore_delays, graph_elmore_delay
from repro.delay.tree_link import tree_link_elmore
from repro.delay.bounds import RphQuantities, delay_bounds, rph_quantities
from repro.delay.spice_delay import SpiceOptions, spice_delay, spice_delays
from repro.delay.models import (
    CandidateEvaluator,
    DelayModel,
    ElmoreGraphModel,
    ElmoreTreeModel,
    SpiceDelayModel,
    TwoPoleModel,
    get_delay_model,
    reduce_delays,
)
from repro.delay.incremental import (
    DelayMemo,
    IncrementalElmoreEvaluator,
    MemoizedDelayModel,
    NaiveCandidateEvaluator,
    ParallelCandidateEvaluator,
    default_memo,
    get_candidate_evaluator,
    graph_fingerprint,
    memoize_model,
)

__all__ = [
    "CandidateEvaluator",
    "DelayMemo",
    "DelayModel",
    "ElmoreGraphModel",
    "ElmoreTreeModel",
    "IncrementalElmoreEvaluator",
    "MemoizedDelayModel",
    "NaiveCandidateEvaluator",
    "ParallelCandidateEvaluator",
    "RphQuantities",
    "SpiceDelayModel",
    "SpiceOptions",
    "Technology",
    "TwoPoleModel",
    "build_interconnect_circuit",
    "build_reduced_rc",
    "default_memo",
    "delay_bounds",
    "elmore_delays",
    "elmore_tree_delay",
    "get_candidate_evaluator",
    "get_delay_model",
    "graph_elmore_delay",
    "graph_elmore_delays",
    "graph_fingerprint",
    "memoize_model",
    "reduce_delays",
    "rph_quantities",
    "segment_count_for",
    "spice_delay",
    "spice_delays",
    "tree_link_elmore",
]
