"""Incremental candidate-delay evaluation for the greedy routing loops.

LDRG's inner question — "what is the delay if I add this one edge?" — is
asked for every absent node pair, every iteration. Answered naively, each
ask copies the graph, re-assembles the reduced RC system, and solves a
fresh dense linear system: O(n³) per candidate, O(n⁵) per iteration. This
module answers it incrementally.

**The math.** With one π-section per edge (exactly what the graph-Elmore
oracle uses), the reduced RC system of the base graph has conductance
matrix ``G`` (SPD), node capacitances ``c``, and first-moment delays
``T = G⁻¹(c ∘ v∞)`` with ``v∞ = G⁻¹b``. Adding candidate edge ``(u, v)``
of conductance ``g`` and capacitance ``γ`` is

* a **rank-1 update** ``G' = G + g·wwᵀ`` with ``w = e_u − e_v``, and
* two **diagonal capacitance bumps** ``c' = c + (γ/2)(e_u + e_v)``.

By Sherman–Morrison, ``G'⁻¹ = G⁻¹ − f·(G⁻¹w)(G⁻¹w)ᵀ`` with
``f = 1/(1/g + wᵀG⁻¹w)`` (the ``1/g`` form stays stable for the 1 µΩ
pseudo-short conductance of zero-length edges, where ``g = 10⁶``).
Since ``G⁻¹w`` is just the difference of two *columns* of a single
precomputed ``G⁻¹``, every candidate's full sink-delay vector costs
O(k) arithmetic — one O(n³) inversion is shared by the whole batch, and
the batch itself is one vectorized numpy expression. A wire-width
upgrade is the same update with ``g`` and ``γ`` replaced by the deltas
between the two width levels, which is how the WSORG loop rides the
same engine.

Two further layers complete the subsystem:

* a **fingerprint-keyed memo cache** (:class:`DelayMemo` /
  :class:`MemoizedDelayModel`): H2/H3, local search, the exhaustive
  solvers, and wire sizing all re-score graphs some earlier loop already
  visited; a bounded LRU keyed by the routing's electrical fingerprint
  makes those re-asks free;
* an opt-in **parallel fan-out** (:class:`ParallelCandidateEvaluator`)
  that spreads naive candidate evaluations over the
  :mod:`repro.runtime` worker pool — worthwhile only for SPICE-class
  oracles where a single evaluation dwarfs process overhead.

The naive path (:class:`NaiveCandidateEvaluator`) is retained as the
reference semantics; property tests pin the incremental scores to it at
≤ 1e-9 relative everywhere, including pseudo-short edges and Steiner
candidates.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, Sequence

import numpy as np

from repro.delay.models import (
    CandidateEdge,
    CandidateEvaluator,
    DelayModel,
    ElmoreGraphModel,
    WidthUpgrade,
    reduce_delays,
)
from repro.delay.parameters import Technology
from repro.delay.rc_builder import EdgeWidths, build_reduced_rc, edge_width
from repro.graph.routing_graph import RoutingGraph
from repro.guard.audit import ShadowAuditedEvaluator
from repro.guard.incidents import KIND_FALLBACK, record_event
from repro.guard.numerics import GuardedFactorization
from repro.guard.policy import active_guard

#: Conductance of a zero-length pseudo-short edge (1 µΩ, mirrors
#: :func:`repro.delay.rc_builder.build_reduced_rc`).
PSEUDO_SHORT_CONDUCTANCE = 1.0 / 1e-6

#: Default capacity of the process-wide delay memo.
DEFAULT_MEMO_CAPACITY = 8192


class CandidateEvaluationError(RuntimeError):
    """Raised when a fanned-out candidate evaluation fails in a worker."""


# ---------------------------------------------------------------------------
# Fingerprints and the memo cache
# ---------------------------------------------------------------------------


def graph_fingerprint(graph: RoutingGraph,
                      widths: EdgeWidths | None = None) -> tuple:
    """A hashable key capturing the electrical identity of a routing.

    Two routings with equal fingerprints produce identical delays under
    any pure oracle: the key covers pin/Steiner positions, the edge set,
    the pin count (which fixes source/sink roles), and the width
    assignment. Node *numbering* matters only through positions and
    edges, so structurally identical graphs built in different orders
    still collide — which is exactly what the cache wants.
    """
    positions = tuple(sorted(
        (node, point.as_tuple()) for node, point in graph.positions().items()))
    edges = tuple(sorted(graph.edges()))
    if widths is None:
        width_key: tuple = ()
    else:
        width_key = tuple(sorted(
            (edge, float(value)) for edge, value in widths.items()))
    return (graph.num_pins, positions, edges, width_key)


class DelayMemo:
    """A bounded LRU cache of per-sink delay evaluations.

    Keys are ``(model.memo_key(), graph_fingerprint(...))`` pairs, so one
    memo instance can safely serve models of different kinds, options,
    and technologies at once. Stored delay maps are copied on the way in
    and out — callers may mutate what they receive.
    """

    def __init__(self, capacity: int = DEFAULT_MEMO_CAPACITY):
        if capacity < 1:
            raise ValueError("memo capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, dict[int, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> dict[int, float] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return dict(entry)

    def put(self, key: tuple, delays: Mapping[int, float]) -> None:
        self._entries[key] = dict(delays)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_DEFAULT_MEMO = DelayMemo()


def default_memo() -> DelayMemo:
    """The process-wide memo shared by all memoized models by default."""
    return _DEFAULT_MEMO


class MemoizedDelayModel(DelayModel):
    """A transparent caching wrapper around a pure delay oracle.

    Reports the inner model's ``name`` so results and tables are
    unaffected; only the cost of repeated evaluations changes.
    """

    def __init__(self, inner: DelayModel, memo: DelayMemo | None = None):
        super().__init__(inner.tech)
        self.inner = inner
        self.memo = memo if memo is not None else default_memo()
        self.name = inner.name
        self._model_key = inner.memo_key()

    def memo_key(self) -> tuple:
        return self._model_key

    def delays(self, graph: RoutingGraph,
               widths: EdgeWidths | None = None) -> dict[int, float]:
        key = (self._model_key, graph_fingerprint(graph, widths))
        cached = self.memo.get(key)
        if cached is not None:
            return cached
        result = self.inner.delays(graph, widths)
        self.memo.put(key, result)
        return dict(result)


def memoize_model(model: DelayModel,
                  memo: DelayMemo | None = None) -> DelayModel:
    """Wrap ``model`` in the delay memo, when that is safe.

    Non-cacheable oracles (subprocess-backed ngspice, the resilient
    ladder with its provenance side effects) and already-memoized models
    pass through unchanged — and the non-cacheable pass-through records
    a fallback provenance event, so a batch silently running without the
    memo shows up in journals instead of just running slower.
    """
    if isinstance(model, MemoizedDelayModel):
        return model
    if not getattr(model, "cacheable", True):
        record_event(
            KIND_FALLBACK, source=model.name, target="uncached",
            detail=f"oracle {model.name!r} is not cacheable; evaluations "
                   f"bypass the delay memo")
        return model
    return MemoizedDelayModel(model, memo=memo)


# ---------------------------------------------------------------------------
# Candidate evaluators
# ---------------------------------------------------------------------------


class NaiveCandidateEvaluator:
    """Reference evaluator: one full oracle evaluation per candidate.

    Exactly the semantics of the original greedy loops — every candidate
    graph is materialized with :meth:`RoutingGraph.with_edge` (or a trial
    width map) and scored from scratch. Kept both as the correctness
    reference for the incremental engine and as the only general path
    for oracles with no incremental form.
    """

    def __init__(self, model: DelayModel,
                 weights: Mapping[int, float] | None = None):
        self.model = model
        self.weights = dict(weights) if weights is not None else None

    def score_additions(self, graph: RoutingGraph,
                        candidates: Sequence[CandidateEdge]) -> list[float]:
        return [reduce_delays(self.model.delays(graph.with_edge(u, v)),
                              self.weights)
                for u, v in candidates]

    def score_width_upgrades(self, graph: RoutingGraph,
                             widths: Mapping[tuple[int, int], float],
                             upgrades: Sequence[WidthUpgrade]) -> list[float]:
        scores = []
        for edge, new_width in upgrades:
            trial = dict(widths)
            trial[edge] = new_width
            scores.append(reduce_delays(self.model.delays(graph, trial),
                                        self.weights))
        return scores


class _ElmoreBase:
    """One greedy iteration's shared factorization of the base graph.

    Holds the dense inverse of the base conductance matrix plus the base
    delay vector; every candidate in the batch is then a closed-form
    low-rank correction against these arrays.
    """

    def __init__(self, graph: RoutingGraph, tech: Technology,
                 widths: EdgeWidths | None):
        system = build_reduced_rc(graph, tech, segments=1, widths=widths)
        self.system = system
        # Conditioned Cholesky factorization (the reduced G is SPD), not
        # np.linalg.inv: ill-conditioning is detected and either repaired
        # or raised as a structured NumericalIncident, never returned as
        # garbage delays.
        self.Ginv = GuardedFactorization(
            system.G, spd=True,
            context=f"incremental-elmore-base[n={system.G.shape[0]}]",
        ).inverse()
        self.v_inf = self.Ginv @ system.b
        self.T0 = self.Ginv @ (system.c * self.v_inf)
        self.sinks = list(graph.sink_indices())
        self.sink_rows = np.array([system.row(sink) for sink in self.sinks],
                                  dtype=np.intp)

    def row(self, node: int) -> int:
        return self.system.row(node)

    def score(self, rows_u: np.ndarray, rows_v: np.ndarray,
              delta_g: np.ndarray, delta_c: np.ndarray,
              weights: Mapping[int, float] | None) -> list[float]:
        """Objective after each ``(u, v, Δg, Δc)`` low-rank update.

        ``delta_g`` is the added conductance between rows ``u`` and
        ``v``; ``delta_c`` is the capacitance added at *each* of the two
        endpoints (the π-section half-capacitance, or its width delta).
        """
        Ginv = self.Ginv
        guu = Ginv[rows_u, rows_u]
        gvv = Ginv[rows_v, rows_v]
        guv = Ginv[rows_u, rows_v]
        # f = g / (1 + g·q) computed as 1/(1/g + q): no overflow for the
        # 1e6-conductance pseudo-short, exact zero for Δg = 0 upgrades.
        q = guu + gvv - 2.0 * guv
        factor = np.zeros_like(delta_g)
        nonzero = delta_g != 0.0
        factor[nonzero] = 1.0 / (1.0 / delta_g[nonzero] + q[nonzero])

        v_u = self.v_inf[rows_u]
        v_v = self.v_inf[rows_v]
        # α = wᵀ G⁻¹ (c∘v∞ + Δc∘v∞): base part from T0, bump part from
        # the u/v columns of G⁻¹ (symmetry gives wᵀG⁻¹e_u = G⁻¹uu − G⁻¹uv).
        alpha = (self.T0[rows_u] - self.T0[rows_v]
                 + delta_c * (v_u * (guu - guv) + v_v * (guv - gvv)))

        cols_u = Ginv[np.ix_(self.sink_rows, rows_u)]
        cols_v = Ginv[np.ix_(self.sink_rows, rows_v)]
        delays = (self.T0[self.sink_rows][:, None]
                  + delta_c * (v_u * cols_u + v_v * cols_v)
                  - (factor * alpha) * (cols_u - cols_v))
        if weights is None:
            return [float(s) for s in delays.max(axis=0)]
        weight_vec = np.array([weights.get(sink, 0.0) for sink in self.sinks])
        return [float(s) for s in weight_vec @ delays]


class IncrementalElmoreEvaluator:
    """Sherman–Morrison–Woodbury candidate scoring on the Elmore oracle.

    Equivalent to ``NaiveCandidateEvaluator(ElmoreGraphModel(tech))`` to
    floating-point noise (≤ 1e-9 relative, property-tested), at O(k) per
    candidate after one shared O(n³) factorization per call instead of
    O(n³) per candidate — no graph copies, no per-candidate RC assembly.
    """

    def __init__(self, tech: Technology,
                 weights: Mapping[int, float] | None = None):
        self.tech = tech
        self.weights = dict(weights) if weights is not None else None

    def score_additions(self, graph: RoutingGraph,
                        candidates: Sequence[CandidateEdge]) -> list[float]:
        if not candidates:
            return []
        base = _ElmoreBase(graph, self.tech, widths=None)
        count = len(candidates)
        rows_u = np.fromiter((base.row(u) for u, _ in candidates),
                             dtype=np.intp, count=count)
        rows_v = np.fromiter((base.row(v) for _, v in candidates),
                             dtype=np.intp, count=count)
        lengths = np.fromiter((graph.distance(u, v) for u, v in candidates),
                              dtype=float, count=count)
        resistance = self.tech.resistance_per_um(1.0)
        capacitance = self.tech.capacitance_per_um(1.0)
        positive = lengths > 0
        delta_g = np.where(positive,
                           1.0 / (resistance * np.where(positive, lengths, 1.0)),
                           PSEUDO_SHORT_CONDUCTANCE)
        delta_c = np.where(positive, capacitance * lengths / 2.0, 0.0)
        return base.score(rows_u, rows_v, delta_g, delta_c, self.weights)

    def score_width_upgrades(self, graph: RoutingGraph,
                             widths: Mapping[tuple[int, int], float],
                             upgrades: Sequence[WidthUpgrade]) -> list[float]:
        if not upgrades:
            return []
        base = _ElmoreBase(graph, self.tech, widths=widths)
        rows_u, rows_v, delta_g, delta_c = [], [], [], []
        for (u, v), new_width in upgrades:
            length = graph.edge_length(u, v)
            old_width = edge_width(widths, u, v)
            rows_u.append(base.row(u))
            rows_v.append(base.row(v))
            if length > 0:
                delta_g.append(
                    1.0 / (self.tech.resistance_per_um(new_width) * length)
                    - 1.0 / (self.tech.resistance_per_um(old_width) * length))
                delta_c.append(
                    (self.tech.capacitance_per_um(new_width)
                     - self.tech.capacitance_per_um(old_width)) * length / 2.0)
            else:
                # Zero-length pseudo-shorts are width-independent: the 1 µΩ
                # conductance and zero capacitance do not move with width.
                delta_g.append(0.0)
                delta_c.append(0.0)
        return base.score(np.array(rows_u, dtype=np.intp),
                          np.array(rows_v, dtype=np.intp),
                          np.array(delta_g), np.array(delta_c), self.weights)


# Module-level task functions: the worker pool pickles them by reference.

def _addition_score(model: DelayModel, weights: dict[int, float] | None,
                    graph: RoutingGraph, edge: CandidateEdge) -> float:
    return reduce_delays(model.delays(graph.with_edge(*edge)), weights)


def _upgrade_score(model: DelayModel, weights: dict[int, float] | None,
                   graph: RoutingGraph, widths: dict[tuple[int, int], float],
                   edge: tuple[int, int], new_width: float) -> float:
    trial = dict(widths)
    trial[edge] = new_width
    return reduce_delays(model.delays(graph, trial), weights)


class ParallelCandidateEvaluator:
    """Naive candidate evaluation fanned out over the runtime worker pool.

    Intra-net parallelism for expensive oracles: each candidate is a
    :class:`~repro.runtime.pool.PoolTask` run in an isolated worker
    process, with the pool's crash/timeout containment intact. Process
    startup is amortized over the batch, so this only pays off when a
    single evaluation is costly (SPICE-class engines) — it is opt-in,
    never chosen by ``mode="auto"``.
    """

    def __init__(self, model: DelayModel,
                 weights: Mapping[int, float] | None = None,
                 workers: int = 2, timeout: float | None = None):
        if workers < 1:
            raise ValueError("parallel evaluation needs workers >= 1")
        self.model = model
        self.weights = dict(weights) if weights is not None else None
        self.workers = workers
        self.timeout = timeout

    def score_additions(self, graph: RoutingGraph,
                        candidates: Sequence[CandidateEdge]) -> list[float]:
        return self._run([(_addition_score,
                           (self.model, self.weights, graph, edge))
                          for edge in candidates])

    def score_width_upgrades(self, graph: RoutingGraph,
                             widths: Mapping[tuple[int, int], float],
                             upgrades: Sequence[WidthUpgrade]) -> list[float]:
        trial_widths = dict(widths)
        return self._run([(_upgrade_score,
                           (self.model, self.weights, graph, trial_widths,
                            edge, new_width))
                          for edge, new_width in upgrades])

    def _run(self, calls: list[tuple]) -> list[float]:
        if not calls:
            return []
        # Imported lazily: repro.runtime imports repro.delay.models for its
        # resilience ladder, and a module-level import here would tie the
        # two packages into an initialization cycle.
        from repro.runtime.pool import PoolTask, run_tasks
        from repro.runtime.trial import TrialFailure

        tasks = [PoolTask(key=(index, 0), fn=fn, args=args)
                 for index, (fn, args) in enumerate(calls)]
        outcomes = run_tasks(tasks, workers=min(self.workers, len(tasks)),
                             timeout=self.timeout)
        scores: list[float] = []
        for index in range(len(calls)):
            outcome = outcomes[(index, 0)]
            if isinstance(outcome, TrialFailure):
                raise CandidateEvaluationError(
                    f"candidate {index} evaluation failed in a worker: "
                    f"{outcome.summary()}")
            scores.append(float(outcome))
        return scores


#: Evaluator modes accepted by :func:`get_candidate_evaluator`.
EVALUATOR_MODES = ("auto", "incremental", "naive", "parallel", "multinet")


def get_candidate_evaluator(model: DelayModel,
                            weights: Mapping[int, float] | None = None,
                            mode: str = "auto",
                            workers: int = 2,
                            timeout: float | None = None
                            ) -> CandidateEvaluator:
    """Resolve a candidate-evaluation strategy for a delay oracle.

    ``"auto"`` picks the incremental engine whenever the search oracle is
    the graph-Elmore model (where it is exact to floating-point noise)
    and the naive reference path otherwise — recording a fallback
    provenance event when it does, so degraded evaluation is visible in
    journals. ``"parallel"`` fans the naive path out over ``workers``
    pool processes — opt-in, for SPICE-class oracles. ``"multinet"``
    returns the stacked fleet engine of :mod:`repro.delay.multinet`
    (Elmore only), which also scores whole fleets of nets at once.
    Memoized wrappers are looked through when deciding.

    When the active :class:`~repro.guard.policy.GuardPolicy` enables
    shadow auditing, the incremental engine is wrapped in a
    :class:`~repro.guard.audit.ShadowAuditedEvaluator` that re-scores a
    sampled fraction of batches through the naive reference and
    quarantines the fast path on divergence.
    """
    inner = model.inner if isinstance(model, MemoizedDelayModel) else model
    if mode == "auto":
        if isinstance(inner, ElmoreGraphModel):
            mode = "incremental"
        else:
            # The silent part of this fallback was the bug: callers asking
            # for "auto" with a non-Elmore oracle got per-candidate naive
            # re-evaluation with nothing in the journal saying so.
            record_event(
                KIND_FALLBACK, source=inner.name, target="naive",
                detail=f"oracle {inner.name!r} has no incremental form; "
                       f"auto candidate evaluation fell back to naive "
                       f"per-candidate re-evaluation")
            mode = "naive"
    if mode == "multinet":
        # Imported lazily: repro.delay.multinet imports this module for the
        # memo and naive reference, so a top-level import would be a cycle.
        from repro.delay.multinet import FleetEvaluator

        if not isinstance(inner, ElmoreGraphModel):
            raise ValueError(
                f"multinet candidate evaluation requires the graph-Elmore "
                f"oracle (the stacked fleet factorization is its closed "
                f"form); got {inner!r} — use mode='naive' or 'parallel' "
                f"for other oracles")
        fleet = FleetEvaluator(inner.tech, weights=weights)
        policy = active_guard()
        if policy.audit_enabled:
            return ShadowAuditedEvaluator(
                fleet, NaiveCandidateEvaluator(model, weights=weights),
                policy, source="multinet-elmore")
        return fleet
    if mode == "incremental":
        if not isinstance(inner, ElmoreGraphModel):
            raise ValueError(
                f"incremental candidate evaluation requires the graph-Elmore "
                f"oracle (its delays are linear-solve moments with a "
                f"closed-form low-rank update); got {inner!r} — use "
                f"mode='naive' or 'parallel' for other oracles")
        fast = IncrementalElmoreEvaluator(inner.tech, weights=weights)
        policy = active_guard()
        if policy.audit_enabled:
            return ShadowAuditedEvaluator(
                fast, NaiveCandidateEvaluator(model, weights=weights),
                policy, source="incremental-elmore")
        return fast
    if mode == "naive":
        return NaiveCandidateEvaluator(model, weights=weights)
    if mode == "parallel":
        return ParallelCandidateEvaluator(model, weights=weights,
                                          workers=workers, timeout=timeout)
    raise ValueError(
        f"unknown candidate evaluator mode {mode!r}; "
        f"expected one of {EVALUATOR_MODES}")
