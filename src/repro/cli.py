"""Command-line interface.

Usage examples::

    python -m repro params
    python -m repro random-net --pins 10 --seed 7 --out demo.nets
    python -m repro route demo.nets --algorithm ldrg --svg route.svg
    python -m repro route demo.nets --algorithm sldrg --deck route.cir
    python -m repro table 2 --trials 5 --sizes 5,10
    python -m repro figure 1 --out-dir figures/

    python -m repro lint route.json demo.nets
    python -m repro lint route.json --format json --no-rc

    python -m repro table 2 --workers 4 --run-dir runs/ --resume
    python -m repro table 6 --trials 20 --chaos 0.2 --run-dir runs/

    python -m repro serve --socket 0 --workers 4 --cache-dir cache/

Every subcommand prints a human-readable report to stdout; artifact
flags (``--svg``, ``--deck``, ``--json``, ``--out``) write files.

Robustness contract (see ``docs/robustness.md``): table runs given
``--run-dir`` journal every completed trial atomically, so a killed run
resumed with ``--resume`` loses at most one trial and reproduces the
uninterrupted output byte for byte. ``Ctrl-C`` exits with status 130
(the journal is already flushed — records are durable the moment each
trial completes); known operational errors (bad env config, ngspice
trouble, malformed routing files) exit 2 with a one-line message
instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.analysis import (
    LintConfig,
    lint_graph,
    lint_routing_rc,
    render_json,
    render_text,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    has_errors,
)
from repro.core.ert import ert, ert_ldrg
from repro.core.heuristics import h1, h2, h3
from repro.core.ldrg import ldrg
from repro.core.sert import sert
from repro.core.sldrg import sldrg
from repro.delay.models import SpiceDelayModel
from repro.delay.parameters import Technology
from repro.delay.rc_builder import build_interconnect_circuit, node_label
from repro.delay.spice_delay import SpiceOptions
from repro.experiments.figures import run_figure
from repro.experiments.harness import ExperimentConfig
from repro.experiments.tables import run_table, table1
from repro.geometry.random_nets import random_net
from repro.guard.policy import parse_guard
from repro.io.nets_file import read_nets, write_nets
from repro.io.routing_json import (
    RoutingFormatError,
    load_routing,
    save_routing,
)
from repro.runtime import (
    ChaosPolicy,
    ConfigError,
    ReproRuntimeError,
    RuntimePolicy,
)
from repro.circuit.ngspice import NgspiceError
from repro.delay.incremental import CandidateEvaluationError
from repro.guard.incidents import GuardError
from repro.viz.svg import save_routing_svg

_ALGORITHMS = {
    "ldrg": lambda net, tech, model: ldrg(net, tech, delay_model=model),
    "sldrg": lambda net, tech, model: sldrg(net, tech, delay_model=model),
    "h1": lambda net, tech, model: h1(net, tech, delay_model=model),
    "h2": lambda net, tech, model: h2(net, tech, evaluation_model=model),
    "h3": lambda net, tech, model: h3(net, tech, evaluation_model=model),
    "ert": lambda net, tech, model: ert(net, tech, evaluation_model=model),
    "ert-ldrg": lambda net, tech, model: ert_ldrg(net, tech,
                                                  delay_model=model),
    "sert": lambda net, tech, model: sert(net, tech, evaluation_model=model),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Non-tree routing (McCoy & Robins, DATE 1994) toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("params", help="print the Table 1 technology parameters")

    rand = sub.add_parser("random-net", help="generate a random net file")
    rand.add_argument("--pins", type=int, default=10)
    rand.add_argument("--seed", type=int, default=0)
    rand.add_argument("--count", type=int, default=1)
    rand.add_argument("--out", type=Path, required=True)

    route = sub.add_parser("route", help="route nets from a net file")
    route.add_argument("net_file", type=Path)
    route.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                       default="ldrg")
    route.add_argument("--index", type=int, default=None,
                       help="route only the net at this index")
    route.add_argument("--segments", type=int, default=3,
                       help="pi-sections per wire in the SPICE oracle")
    route.add_argument("--svg", type=Path, default=None,
                       help="write the routing as SVG (single net only)")
    route.add_argument("--json", type=Path, default=None,
                       help="write the routing as JSON (single net only)")
    route.add_argument("--deck", type=Path, default=None,
                       help="write a SPICE deck (single net only)")

    table = sub.add_parser("table", help="regenerate a paper table (1-7)")
    table.add_argument("number", type=int)
    table.add_argument("--trials", type=int, default=None)
    table.add_argument("--sizes", type=str, default=None)
    table.add_argument("--seed", type=int, default=1994)
    table.add_argument("--workers", type=int, default=0,
                       help="isolated worker processes for trials "
                            "(0 = in-process; results are identical "
                            "for any worker count)")
    table.add_argument("--trial-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-trial wall-clock budget; an overrun is "
                            "recorded as a failed trial, not a hang")
    table.add_argument("--run-dir", type=Path, default=None,
                       help="journal directory: every completed trial is "
                            "recorded atomically so a killed run can be "
                            "resumed")
    table.add_argument("--resume", action="store_true",
                       help="skip trials already journaled in --run-dir "
                            "(byte-identical output to an uninterrupted "
                            "run)")
    table.add_argument("--retry-failures", action="store_true",
                       help="with --resume, re-run journaled failures "
                            "instead of keeping them")
    table.add_argument("--chaos", type=float, default=0.0, metavar="RATE",
                       help="inject deterministic oracle faults at this "
                            "rate (testing/CI; see repro.runtime.chaos)")
    table.add_argument("--chaos-seed", type=int, default=0,
                       help="seed of the injected-fault stream")
    table.add_argument("--guard", type=str, default="off",
                       metavar="{off,sentinel,audit=RATE}",
                       help="self-verification level: 'sentinel' enables "
                            "runtime invariant checks, 'audit=RATE' also "
                            "shadow re-scores that fraction of fast-path "
                            "candidate batches against the naive oracle "
                            "(see docs/robustness.md)")
    table.add_argument("--multinet", action="store_true",
                       help="batch each row's 50 nets through the "
                            "fleet-scale graph-Elmore backend (tables "
                            "2/3/7; an ineligible table falls back to "
                            "the sequential driver with a recorded "
                            "provenance event — see docs/performance.md)")
    table.add_argument("--backend", type=str, default="auto",
                       choices=("auto", "numpy", "cupy"),
                       help="array backend of the --multinet path")

    serve = sub.add_parser(
        "serve", help="run the routing daemon (JSON-lines protocol; see "
                      "docs/service.md)")
    serve.add_argument("--socket", type=int, default=None, metavar="PORT",
                       help="listen on this localhost TCP port instead of "
                            "stdio (0 picks a free port, printed on "
                            "stderr)")
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="bind address for --socket (default loopback)")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="admission-queue bound; requests beyond it "
                            "are shed with a structured overload error")
    serve.add_argument("--workers", type=int, default=0,
                       help="isolated worker processes (0 = route "
                            "serially inside the daemon)")
    serve.add_argument("--deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="default per-request budget when the frame "
                            "names none")
    serve.add_argument("--max-deadline", type=float, default=300.0,
                       metavar="SECONDS",
                       help="hard ceiling a frame's deadline is clamped "
                            "to")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="grace the SIGTERM drain gives in-flight "
                            "requests before failing them as 'drained'")
    serve.add_argument("--cache-dir", type=Path, default=None,
                       help="warm-result cache directory (restarted "
                            "daemons serve repeats from it without "
                            "re-routing)")
    serve.add_argument("--segments", type=int, default=1,
                       help="pi-sections per wire in the delay oracle")
    serve.add_argument("--engines", type=str, default="transient,analytic",
                       help="oracle ladder, best first (comma list of "
                            "ngspice/transient/analytic, or 'auto' to "
                            "include ngspice only when the binary is "
                            "found)")
    serve.add_argument("--chaos", type=float, default=0.0, metavar="RATE",
                       help="inject deterministic oracle faults at this "
                            "rate (testing/CI)")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="seed of the injected-fault stream")
    serve.add_argument("--fault-injection", action="store_true",
                       help="honor per-request 'inject' directives "
                            "(fault-matrix tests only; never production)")
    serve.add_argument("--multinet", action="store_true",
                       help="batch eligible ldrg/sldrg requests through "
                            "the stacked graph-Elmore fleet backend "
                            "(changes the oracle for those requests; "
                            "part of the request fingerprint)")
    serve.add_argument("--run-dir", type=Path, default=None,
                       help="durability/supervision state directory: "
                            "write-ahead request log, heartbeat and pid "
                            "files (see docs/service.md, 'Recovery & "
                            "supervision')")
    serve.add_argument("--recover", action="store_true",
                       help="replay admitted-but-unanswered requests "
                            "from the --run-dir write-ahead log at "
                            "startup (idempotent: completed "
                            "fingerprints answer from the warm cache)")
    serve.add_argument("--supervised", action="store_true",
                       help="run under a supervisor parent that "
                            "restarts the daemon on crash or hang "
                            "(always with --recover) and gives up with "
                            "exit 3 on a crash loop")
    serve.add_argument("--restart-budget", type=int, default=5,
                       help="--supervised: restarts allowed inside "
                            "--restart-window before giving up")
    serve.add_argument("--restart-window", type=float, default=60.0,
                       metavar="SECONDS",
                       help="--supervised: the crash-loop window")
    serve.add_argument("--heartbeat-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="seconds between daemon heartbeat-file "
                            "touches in --run-dir")
    serve.add_argument("--heartbeat-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="--supervised: heartbeat staleness that "
                            "declares the daemon hung (0 disables hang "
                            "detection)")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive engine failures that open its "
                            "circuit breaker (0 disables breakers)")
    serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                       metavar="SECONDS",
                       help="seconds an open breaker waits before "
                            "half-opening for a probe request")
    serve.add_argument("--wal-fault-after", type=int, default=None,
                       metavar="N",
                       help="chaos hook: the N-th write-ahead-log append "
                            "fails once with a disk-full OSError "
                            "(testing/CI only)")

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=(1, 2, 3, 5))
    figure.add_argument("--out-dir", type=Path, default=None,
                        help="directory for before/after SVGs")

    embed = sub.add_parser(
        "embed", help="route a net, then embed it on a grid with A*")
    embed.add_argument("net_file", type=Path)
    embed.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                       default="ldrg")
    embed.add_argument("--index", type=int, default=0,
                       help="net index within the file")
    embed.add_argument("--pitch", type=float, default=200.0,
                       help="grid pitch in microns")
    embed.add_argument("--block", action="append", default=[],
                       metavar="XMIN,YMIN,XMAX,YMAX",
                       help="blocked rectangle (repeatable)")
    embed.add_argument("--svg", type=Path, default=None,
                       help="render the embedded routing as SVG")

    lint = sub.add_parser(
        "lint", help="lint routing JSON / net files and their RC models, "
                     "or the source tree itself (--pass "
                     "source/dataflow/contracts/interlock)")
    lint.add_argument("inputs", nargs="*", type=Path,
                      help="routing .json files and/or .nets files "
                           "(with --pass source/dataflow/contracts/"
                           "interlock: source files or directories, "
                           "default src/repro)")
    lint.add_argument("--pass", dest="lint_pass",
                      choices=("data", "source", "dataflow", "contracts",
                               "interlock", "all"),
                      default="data",
                      help="what to lint: routing/RC data files (data, "
                           "the default), per-file AST rules (source), "
                           "the whole-program determinism analyzer "
                           "(dataflow), the exception-contract & "
                           "resource-lifecycle analyzer (contracts), "
                           "the thread/lock/signal & durability "
                           "analyzer (interlock), or every code pass "
                           "(all)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="report format (default: text)")
    lint.add_argument("--disable", action="append", default=[],
                      metavar="RULE", help="disable a rule id (repeatable)")
    lint.add_argument("--severity", action="append", default=[],
                      metavar="RULE=LEVEL",
                      help="override a rule's severity (repeatable)")
    lint.add_argument("--no-rc", action="store_true",
                      help="skip the electrical (RC) lint pass")
    lint.add_argument("--segments", type=int, default=1,
                      help="pi-sections per wire for the RC pass")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Dispatch, mapping operational failures to clean exit codes.

    ``KeyboardInterrupt`` exits 130 (any journal is already flushed —
    trial records are written atomically as each trial completes, so
    there is nothing left to save); a numerical guard incident exits 3
    (the input is electrically pathological, not malformed); every
    other known operational error — bad env config, ngspice trouble,
    malformed routing/net files, bad geometry, I/O failure — exits 2
    with a one-line message instead of a traceback. The full taxonomy
    is the error table in ``docs/robustness.md``, and the
    ``contracts-exception-escape`` rule of ``repro.analysis.contracts``
    verifies statically that nothing escapes this ladder unmapped.
    """
    try:
        return _dispatch(argv)
    except KeyboardInterrupt:
        print("\ninterrupted (journaled trials are preserved; rerun with "
              "--resume to continue)", file=sys.stderr)
        return 130
    except (ConfigError, NgspiceError, RoutingFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except GuardError as exc:
        print(f"numerical guard: {exc}", file=sys.stderr)
        return 3
    except (OSError, ValueError, ReproRuntimeError,
            CandidateEvaluationError) as exc:
        # ValueError covers the domain errors derived from it
        # (GridError, NetsFileError, RoutingGraphError, CircuitError,
        # DesignError); OSError covers artifact writes.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(argv: list[str] | None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "params": _cmd_params,
        "random-net": _cmd_random_net,
        "route": _cmd_route,
        "serve": _cmd_serve,
        "table": _cmd_table,
        "figure": _cmd_figure,
        "embed": _cmd_embed,
        "lint": _cmd_lint,
    }[args.command]
    return handler(args)


def _cmd_params(args: argparse.Namespace) -> int:
    print(table1())
    return 0


def _cmd_random_net(args: argparse.Namespace) -> int:
    nets = [random_net(args.pins, seed=args.seed + i)
            for i in range(args.count)]
    write_nets(nets, args.out)
    print(f"wrote {len(nets)} net(s) to {args.out}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    nets = read_nets(args.net_file)
    if args.index is not None:
        if not 0 <= args.index < len(nets):
            print(f"error: net index {args.index} out of range "
                  f"(file has {len(nets)} nets)", file=sys.stderr)
            return 2
        nets = [nets[args.index]]
    wants_artifacts = args.svg or args.json or args.deck
    if wants_artifacts and len(nets) != 1:
        print("error: --svg/--json/--deck need a single net "
              "(use --index)", file=sys.stderr)
        return 2

    tech = Technology.cmos08()
    model = SpiceDelayModel(tech, SpiceOptions(segments=args.segments))
    for net in nets:
        result = _ALGORITHMS[args.algorithm](net, tech, model)
        print(result.summary())
        if args.svg:
            save_routing_svg(result.graph, str(args.svg),
                             highlight_edges=[r.edge for r in result.history],
                             title=result.summary())
            print(f"  svg  -> {args.svg}")
        if args.json:
            save_routing(result.graph, args.json)
            print(f"  json -> {args.json}")
        if args.deck:
            from repro.circuit.deck import deck_from_circuit

            circuit = build_interconnect_circuit(result.graph, tech,
                                                 segments=args.segments)
            horizon = 10 * max(result.delay, 1e-12)
            sink_nodes = [node_label(s)
                          for s in result.graph.sink_indices()]
            args.deck.write_text(
                deck_from_circuit(circuit, t_stop=horizon,
                                  print_nodes=sink_nodes),
                encoding="utf-8")
            print(f"  deck -> {args.deck}")
    return 0


def _serve_engines(spec: str) -> tuple[str, ...]:
    """The oracle ladder named by --engines (resolving 'auto')."""
    from repro.circuit.ngspice import find_ngspice

    if spec.strip() == "auto":
        if find_ngspice() is not None:
            return ("ngspice", "transient", "analytic")
        return ("transient", "analytic")
    engines = tuple(tok.strip() for tok in spec.split(",") if tok.strip())
    if not engines:
        raise ConfigError("--engines must name at least one oracle engine")
    unknown = [e for e in engines
               if e not in ("ngspice", "transient", "analytic")]
    if unknown:
        raise ConfigError(
            f"--engines: unknown engine(s) {', '.join(unknown)} "
            f"(expected ngspice, transient or analytic, or 'auto')")
    return engines


def _serve_child_argv(args: argparse.Namespace) -> list[str]:
    """The supervised daemon's command line, rebuilt from parsed flags.

    Always carries ``--recover`` (replaying an empty write-ahead log is
    a no-op, so generation 0 and every restart start identically) and
    never ``--supervised`` (no supervisor towers).
    """
    argv = [sys.executable, "-m", "repro", "serve",
            "--run-dir", str(args.run_dir), "--recover",
            "--queue-capacity", str(args.queue_capacity),
            "--workers", str(args.workers),
            "--deadline", str(args.deadline),
            "--max-deadline", str(args.max_deadline),
            "--drain-timeout", str(args.drain_timeout),
            "--segments", str(args.segments),
            "--engines", args.engines,
            "--heartbeat-interval", str(args.heartbeat_interval),
            "--breaker-threshold", str(args.breaker_threshold),
            "--breaker-cooldown", str(args.breaker_cooldown)]
    if args.socket is not None:
        argv += ["--socket", str(args.socket), "--host", args.host]
    if args.cache_dir is not None:
        argv += ["--cache-dir", str(args.cache_dir)]
    if args.chaos:
        argv += ["--chaos", str(args.chaos),
                 "--chaos-seed", str(args.chaos_seed)]
    if args.fault_injection:
        argv.append("--fault-injection")
    if args.multinet:
        argv.append("--multinet")
    if args.wal_fault_after is not None:
        argv += ["--wal-fault-after", str(args.wal_fault_after)]
    return argv


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the routing daemon until EOF (stdio) or SIGTERM (drain)."""
    from repro.service import (
        BreakerPolicy,
        RoutingDaemon,
        ServiceConfig,
        SessionConfig,
        Supervisor,
        SupervisorPolicy,
    )

    if args.supervised and args.run_dir is None:
        raise ConfigError("--supervised requires --run-dir (the shared "
                          "WAL/heartbeat state directory)")
    if args.recover and args.run_dir is None:
        raise ConfigError("--recover requires --run-dir (the write-ahead "
                          "log to replay)")
    if args.supervised:
        try:
            policy = SupervisorPolicy(
                restart_budget=args.restart_budget,
                restart_window=args.restart_window,
                heartbeat_timeout=args.heartbeat_timeout)
        except ValueError as exc:
            raise ConfigError(str(exc)) from exc
        supervisor = Supervisor(_serve_child_argv(args),
                                Path(args.run_dir), policy)
        return supervisor.run()
    try:
        session = SessionConfig(
            segments=args.segments,
            engines=_serve_engines(args.engines),
            chaos=(ChaosPolicy(seed=args.chaos_seed, raise_rate=args.chaos)
                   if args.chaos else None),
            default_deadline=args.deadline,
            max_deadline=args.max_deadline,
            enable_fault_injection=args.fault_injection,
            multinet=args.multinet,
        )
        config = ServiceConfig(
            session=session,
            queue_capacity=args.queue_capacity,
            workers=args.workers,
            drain_grace=args.drain_timeout,
            cache_dir=args.cache_dir,
            run_dir=args.run_dir,
            recover=args.recover,
            breaker=(BreakerPolicy(failure_threshold=args.breaker_threshold,
                                   cooldown=args.breaker_cooldown)
                     if args.breaker_threshold > 0 else None),
            heartbeat_interval=args.heartbeat_interval,
            wal_fail_after=args.wal_fault_after,
        )
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc
    daemon = RoutingDaemon(config)
    if args.socket is not None:
        def announce(host: str, port: int) -> None:
            print(f"serving on {host}:{port}", file=sys.stderr, flush=True)

        return daemon.serve_socket(host=args.host, port=args.socket,
                                   install_signal_handlers=True,
                                   ready=announce)
    return daemon.serve(sys.stdin, sys.stdout,
                        install_signal_handlers=True)


def _table_config(args: argparse.Namespace) -> ExperimentConfig:
    kwargs = {"seed": args.seed}
    if args.trials is not None:
        kwargs["trials"] = args.trials
    if args.sizes is not None:
        try:
            kwargs["sizes"] = tuple(
                int(tok) for tok in args.sizes.split(",") if tok.strip())
        except ValueError:
            raise ConfigError(
                f"--sizes {args.sizes!r} is invalid: expected a "
                f"comma-separated list of integers (e.g. 5,10,20)") from None
    try:
        if args.chaos:
            kwargs["chaos"] = ChaosPolicy(seed=args.chaos_seed,
                                          raise_rate=args.chaos)
        if args.guard != "off":
            kwargs["guard"] = parse_guard(args.guard)
        return ExperimentConfig(**kwargs)
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc


def _table_runtime(args: argparse.Namespace) -> RuntimePolicy | None:
    """The execution policy the table flags describe (None = legacy).

    Any runtime flag opts into fault-tolerant execution: failed trials
    become per-row counts instead of aborting the sweep.
    """
    if args.resume and args.run_dir is None:
        raise ConfigError("--resume requires --run-dir (the journal to "
                          "resume from)")
    wants_runtime = (args.workers or args.run_dir is not None
                     or args.trial_timeout is not None or args.chaos)
    if not wants_runtime:
        return None
    try:
        return RuntimePolicy(
            workers=args.workers,
            trial_timeout=args.trial_timeout,
            run_root=args.run_dir,
            resume=args.resume,
            retry_failures=args.retry_failures,
        )
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        print(table1())
        return 0
    try:
        if args.multinet:
            return _cmd_table_multinet(args)
        table = run_table(args.number, _table_config(args),
                          _table_runtime(args))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(table.render())
    return 0


def _cmd_table_multinet(args: argparse.Namespace) -> int:
    """``table --multinet``: fleet-batch each row when the table allows.

    The fleet path runs in-process (its parallelism is the stacked
    linear algebra, not worker processes), so the journaling/worker
    runtime flags are rejected rather than silently ignored.
    """
    from repro.experiments.fleet import run_table_multinet

    if _table_runtime(args) is not None:
        raise ConfigError(
            "--multinet rows run as one in-process batched pipeline; it "
            "cannot be combined with --workers/--run-dir/--resume/"
            "--trial-timeout/--chaos (drop --multinet to use the "
            "journaling runtime)")
    try:
        table, batched = run_table_multinet(args.number,
                                            _table_config(args),
                                            backend=args.backend)
    except RuntimeError as exc:
        # resolve_backend raises RuntimeError for an unavailable
        # accelerator backend (e.g. --backend cupy without CuPy); map it
        # to the CLI's documented configuration exit code.
        raise ConfigError(str(exc)) from exc
    if not batched:
        print(f"note: table {args.number} has no fleet-batched form; "
              f"the sequential driver served this run (recorded as a "
              f"fallback provenance event)", file=sys.stderr)
    print(table.render())
    return 0


def _cmd_embed(args: argparse.Namespace) -> int:
    from repro.route.embed import embed_routing
    from repro.route.grid import GridError, RoutingGrid

    nets = read_nets(args.net_file)
    if not 0 <= args.index < len(nets):
        print(f"error: net index {args.index} out of range "
              f"(file has {len(nets)} nets)", file=sys.stderr)
        return 2
    net = nets[args.index]
    tech = Technology.cmos08()
    model = SpiceDelayModel(tech, SpiceOptions(segments=3))
    result = _ALGORITHMS[args.algorithm](net, tech, model)
    print(result.summary())

    grid = RoutingGrid(region=tech.region, pitch=args.pitch)
    for spec in args.block:
        try:
            xmin, ymin, xmax, ymax = (float(tok) for tok in spec.split(","))
            grid.block_rect(xmin, ymin, xmax, ymax)
        except (ValueError, GridError) as exc:
            print(f"error: bad --block {spec!r}: {exc}", file=sys.stderr)
            return 2
    try:
        embedding = embed_routing(result.graph, grid,
                                  snap_blocked_pins=True)
    except GridError as exc:
        print(f"error: embedding failed: {exc}", file=sys.stderr)
        return 1
    embedded = embedding.to_routing_graph()
    embedded_delay = model.max_delay(embedded)
    print(f"embedded on a {grid.cols}x{grid.rows} grid "
          f"({grid.blockage_fraction():.0%} blocked): "
          f"detour {embedding.detour_factor():.3f}x, "
          f"delay {embedded_delay * 1e9:.3f} ns "
          f"({embedded_delay / result.delay:.3f}x abstract)")
    if args.svg:
        save_routing_svg(embedded, str(args.svg),
                         title=f"embedded {args.algorithm} routing "
                               f"({embedded_delay * 1e9:.2f} ns)")
        print(f"  svg -> {args.svg}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Lint routing/net data files or the source tree itself.

    ``--pass data`` (the default) checks routing JSON and net files;
    ``--pass source``/``dataflow``/``contracts``/``interlock``/``all``
    runs the code passes of :mod:`repro.analysis` over source paths
    instead. Exit status: 0 clean (warnings allowed), 1 when any
    error-severity diagnostic fires, 2 on usage errors.
    """
    # Registers the dataflow-*/contracts-*/interlock-* rules so
    # --disable and --list-rules see them.
    from repro.analysis.contracts.engine import analyze_contracts
    from repro.analysis.dataflow.engine import analyze_dataflow
    from repro.analysis.interlock.engine import analyze_interlock
    from repro.analysis.reporters import render_sarif
    from repro.analysis.source_rules import lint_source_tree

    if args.list_rules:
        from repro.analysis.__main__ import list_rules

        print(list_rules())
        return 0
    try:
        config = LintConfig.from_options(disable=args.disable,
                                         severity=args.severity)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    diagnostics: list[Diagnostic] = []
    if args.lint_pass == "data":
        if not args.inputs:
            print("error: no input files (give routing .json or .nets "
                  "files)", file=sys.stderr)
            return 2
        tech = Technology.cmos08()
        for path in args.inputs:
            if not path.exists():
                print(f"error: no such file: {path}", file=sys.stderr)
                return 2
            if path.suffix == ".json":
                diagnostics.extend(_lint_routing_file(
                    path, tech, config, with_rc=not args.no_rc,
                    segments=args.segments))
            else:
                diagnostics.extend(_lint_nets_file(path))
    else:
        paths = args.inputs or [Path("src/repro")]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(f"error: no such path(s): "
                  f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
            return 2
        if args.lint_pass in ("source", "all"):
            diagnostics.extend(lint_source_tree(paths, config))
        if args.lint_pass in ("dataflow", "all"):
            diagnostics.extend(analyze_dataflow(paths, config))
        if args.lint_pass in ("contracts", "all"):
            diagnostics.extend(analyze_contracts(paths, config))
        if args.lint_pass in ("interlock", "all"):
            diagnostics.extend(analyze_interlock(paths, config))

    render = {"json": render_json, "sarif": render_sarif,
              "text": render_text}[args.format]
    print(render(diagnostics))
    return 1 if has_errors(diagnostics) else 0


def _lint_routing_file(path: Path, tech: Technology, config: LintConfig,
                       *, with_rc: bool, segments: int) -> list[Diagnostic]:
    """Diagnostics for one routing JSON file, tagged with the file path."""
    try:
        graph = load_routing(path, validate=False)
    except RoutingFormatError as exc:
        return exc.diagnostics
    found = lint_graph(graph, config)
    if with_rc:
        found = found + lint_routing_rc(graph, tech, segments=segments,
                                        config=config)
    return [replace(d, location=replace(d.location, file=str(path)))
            if d.location.file is None else d
            for d in found]


def _lint_nets_file(path: Path) -> list[Diagnostic]:
    """Diagnostics for one net file (parse-level checks)."""
    try:
        nets = read_nets(path)
    except (ValueError, OSError) as exc:
        return [Diagnostic(
            rule="nets-malformed", severity=Severity.ERROR,
            message=f"cannot read net file: {exc}",
            location=Location(file=str(path)),
            hint="net stanzas are 'net <name>' followed by one source "
                 "and one or more sink coordinate lines")]
    out: list[Diagnostic] = []
    for index, net in enumerate(nets):
        if net.num_sinks == 0:  # read_nets normally refuses this already
            out.append(Diagnostic(
                rule="nets-degenerate", severity=Severity.ERROR,
                message=f"net {net.name!r} (index {index}) has no sinks",
                location=Location(file=str(path), obj=f"net {net.name!r}")))
    return out


def _cmd_figure(args: argparse.Namespace) -> int:
    report = run_figure(args.number)
    print(report.caption())
    if args.out_dir:
        before, after = report.save_svgs(args.out_dir)
        print(f"  svg -> {before}\n  svg -> {after}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
