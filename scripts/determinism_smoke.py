#!/usr/bin/env python3
"""CI determinism smoke: serial and parallel sweeps must journal alike.

The dataflow analyzer (``python -m repro.analysis --pass dataflow``)
*statically* claims the experiment pipeline is deterministic; this
script checks the claim dynamically:

1. runs a 10-pin sweep twice through the real CLI — once serially, once
   with ``--workers 4`` — each into its own journal directory;
2. asserts both runs land in the *same* fingerprint directory name
   (worker count must not leak into the config identity);
3. asserts the canonical journal bytes match exactly. Canonical =
   volatile wall-clock fields (``elapsed``) stripped; those are the one
   sanctioned nondeterminism, produced only inside ``repro.runtime``
   where the analyzer allows wall-clock reads;
4. asserts both table printouts are byte-identical;
5. runs the dataflow analyzer itself and requires a clean exit, so a
   dynamic failure always arrives with the static view (and vice
   versa: a new static violation fails CI before it can flake here).

Exit status 0 = all invariants hold; 1 = a violation, with a message.

Usage:  python scripts/determinism_smoke.py [--trials 3] [--sizes 10]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.runtime.journal import canonical_journal_bytes  # noqa: E402


def fail(message: str) -> None:
    print(f"determinism-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def run_table(args: argparse.Namespace, run_dir: Path,
              extra: list[str]) -> str:
    cmd = [sys.executable, "-m", "repro", "table", "2",
           "--trials", str(args.trials), "--sizes", args.sizes,
           "--seed", str(args.seed), "--run-dir", str(run_dir), *extra]
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          cwd=REPO_ROOT,
                          env=_env_with_src())
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return proc.stdout


def _env_with_src() -> dict[str, str]:
    import os

    env = dict(os.environ)
    pythonpath = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (f"{SRC}:{pythonpath}" if pythonpath else str(SRC))
    return env


def journal_dir(run_root: Path) -> Path:
    subdirs = [p for p in run_root.iterdir() if p.is_dir()]
    if len(subdirs) != 1:
        fail(f"expected exactly one fingerprint directory under "
             f"{run_root}, found {[p.name for p in subdirs]}")
    return subdirs[0]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--sizes", type=str, default="10")
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="determinism-smoke-") as tmp:
        serial_root = Path(tmp) / "serial"
        parallel_root = Path(tmp) / "parallel"

        serial_out = run_table(args, serial_root, [])
        parallel_out = run_table(args, parallel_root,
                                 ["--workers", str(args.workers)])

        if serial_out != parallel_out:
            fail("serial and parallel table output differ:\n"
                 f"--- serial ---\n{serial_out}\n"
                 f"--- workers={args.workers} ---\n{parallel_out}")

        serial_dir = journal_dir(serial_root)
        parallel_dir = journal_dir(parallel_root)
        if serial_dir.name != parallel_dir.name:
            fail(f"worker count leaked into the run fingerprint: "
                 f"{serial_dir.name} != {parallel_dir.name}")

        serial_bytes = canonical_journal_bytes(serial_dir)
        parallel_bytes = canonical_journal_bytes(parallel_dir)
        records = sum(1 for _ in serial_dir.glob("trial_*.json"))
        expected = args.trials * len(args.sizes.split(","))
        if records != expected:
            fail(f"serial journal holds {records} records, expected "
                 f"{expected}")
        if serial_bytes != parallel_bytes:
            _report_divergence(serial_bytes, parallel_bytes)

    # The static analyzer must agree the tree is deterministic.
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--pass", "dataflow",
         "src/repro"],
        capture_output=True, text=True, cwd=REPO_ROOT, env=_env_with_src())
    if proc.returncode != 0:
        fail(f"dataflow analyzer found violations:\n{proc.stdout}")

    print(f"determinism-smoke: OK — {records} trials journaled "
          f"byte-identically serial vs {args.workers} workers; "
          f"dataflow analyzer clean")


def _report_divergence(serial_bytes: bytes, parallel_bytes: bytes) -> None:
    """Fail with the first diverging record plus the analyzer's view."""
    serial_lines = serial_bytes.decode("utf-8").splitlines()
    parallel_lines = parallel_bytes.decode("utf-8").splitlines()
    detail = ""
    for a, b in zip(serial_lines, parallel_lines):
        if a != b:
            detail = f"first divergence:\n  serial:   {a}\n  parallel: {b}"
            break
    else:
        detail = (f"record counts differ: {len(serial_lines)} serial vs "
                  f"{len(parallel_lines)} parallel")
    try:
        from repro.analysis.dataflow import build_dataflow_model, purity_report

        model = build_dataflow_model([SRC / "repro"])
        effects = "\n" + purity_report(model, model.worker_roots)
    except Exception as exc:  # the report is best-effort context
        effects = f" (purity report unavailable: {exc})"
    fail("serial and parallel journals diverge after canonicalization; "
         f"{detail}\nanalyzer effects for worker entry points:{effects}")


if __name__ == "__main__":
    main()
