#!/usr/bin/env python3
"""CI chaos smoke: a faulty sweep must complete, reproduce, and resume.

Drives the real CLI (``python -m repro table``) end to end:

1. runs a small sweep with 20% injected oracle faults and asserts it
   exits 0 with per-row ``[N ok, M failed]`` annotations;
2. reruns it and asserts the output is byte-identical (chaos is
   deterministic);
3. resumes from the journal and asserts the output is again identical
   *and* no journaled trial was re-executed (record mtimes unchanged).

Exit status 0 = all invariants hold; 1 = a violation, with a message.

Usage:  python scripts/chaos_smoke.py [--trials 10] [--sizes 5,10] [--rate 0.2]
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path


def run_table(args: argparse.Namespace, extra: list[str]) -> str:
    cmd = [sys.executable, "-m", "repro", "table", "6",
           "--trials", str(args.trials), "--sizes", args.sizes,
           "--chaos", str(args.rate), "--chaos-seed", str(args.seed),
           *extra]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return proc.stdout


def fail(message: str) -> None:
    print(f"chaos-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def journal_state(run_dir: Path) -> dict[str, float]:
    return {str(p.relative_to(run_dir)): p.stat().st_mtime_ns
            for p in run_dir.glob("*/trial_*.json")}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--sizes", type=str, default="5,10")
    parser.add_argument("--rate", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()
    num_sizes = len(args.sizes.split(","))

    # 1. The faulty sweep completes, with failure counts surfaced.
    first = run_table(args, [])
    annotations = re.findall(r"\[(\d+) ok, (\d+) failed\]", first)
    failed = sum(int(m) for _, m in annotations)
    completed = sum(int(n) for n, _ in annotations)
    if failed == 0:
        fail(f"no injected faults surfaced at rate {args.rate}:\n{first}")
    if completed + failed != args.trials * num_sizes:
        fail(f"rows account for {completed}+{failed} trials, expected "
             f"{args.trials * num_sizes}:\n{first}")

    # 2. Chaos is deterministic: a rerun reproduces the output exactly.
    if run_table(args, []) != first:
        fail("two identical chaos runs produced different output")

    # 3. A journaled run resumes byte-identically without re-executing.
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        run_dir = Path(tmp) / "runs"
        journaled = run_table(args, ["--run-dir", str(run_dir)])
        if journaled != first:
            fail("journaled run output differs from in-memory run")
        before = journal_state(run_dir)
        if len(before) != args.trials * num_sizes:
            fail(f"journal holds {len(before)} records, expected "
                 f"{args.trials * num_sizes}")
        resumed = run_table(args, ["--run-dir", str(run_dir), "--resume"])
        if resumed != first:
            fail("resumed run output differs from original")
        if journal_state(run_dir) != before:
            fail("resume re-wrote journal records (trials were re-run)")

    print(f"chaos-smoke: OK — {completed} completed / {failed} failed "
          f"trials at rate {args.rate}; reproducible; resume exact")


if __name__ == "__main__":
    main()
