#!/usr/bin/env python3
"""Regenerate every paper table at full 50-trial scale.

Writes each rendered table to ``results/paper/tableN.txt`` as it
completes (and the figures' captions to ``figures.txt``), so partial
progress survives interruption. This is the run recorded in
EXPERIMENTS.md; the pytest benchmarks exercise the same code path at a
reduced default trial count.

Usage:  python scripts/run_paper_tables.py [--trials 50] [--out results/paper]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.experiments.figures import FIGURE_DRIVERS
from repro.experiments.harness import ExperimentConfig
from repro.experiments.tables import TABLE_DRIVERS, table1


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=50)
    parser.add_argument("--sizes", type=str, default="5,10,20,30")
    parser.add_argument("--out", type=Path,
                        default=Path("results") / "paper")
    args = parser.parse_args()
    sizes = tuple(int(tok) for tok in args.sizes.split(","))
    config = ExperimentConfig(trials=args.trials, sizes=sizes)
    args.out.mkdir(parents=True, exist_ok=True)

    (args.out / "table1.txt").write_text(table1(config) + "\n",
                                         encoding="utf-8")
    print("table1 written")

    for number, driver in sorted(TABLE_DRIVERS.items()):
        start = time.time()
        table = driver(config)
        text = table.render()
        (args.out / f"table{number}.txt").write_text(text + "\n",
                                                     encoding="utf-8")
        print(f"table{number} written in {time.time() - start:.0f}s")

    captions = []
    for number, driver in sorted(FIGURE_DRIVERS.items()):
        start = time.time()
        report = driver(config)
        report.save_svgs(args.out)
        captions.append(report.caption())
        print(f"figure{number} written in {time.time() - start:.0f}s")
    (args.out / "figures.txt").write_text("\n".join(captions) + "\n",
                                          encoding="utf-8")
    print("done")


if __name__ == "__main__":
    main()
