#!/usr/bin/env python3
"""CI service smoke: the daemon under concurrent load, chaos, and SIGTERM.

Drives the real CLI daemon (``python -m repro serve --socket``) end to
end:

1. starts the daemon with 20% injected oracle chaos and a bounded
   admission queue;
2. fires concurrent requests from several client connections (with
   deliberate duplicates across clients, so coalescing and the warm
   cache are on the hot path);
3. asserts every single response is a structured frame — ``status`` of
   ``ok``/``error``, error kinds from the typed taxonomy, no tracebacks
   anywhere, no hangs;
4. sends SIGTERM and asserts the daemon drains and exits 0.

Exit status 0 = all invariants hold; 1 = a violation, with a message.

Usage:  python scripts/service_smoke.py [--clients 5] [--requests 10]
                                        [--rate 0.2]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading

TYPED_KINDS = {"protocol", "overload", "draining", "drained", "timeout",
               "crash", "exception"}


def fail(message: str) -> None:
    print(f"service-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def start_daemon(args: argparse.Namespace) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", "0",
         "--chaos", str(args.rate), "--chaos-seed", str(args.seed),
         "--queue-capacity", str(args.clients * args.requests + 16)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    assert proc.stderr is not None
    line = proc.stderr.readline()
    match = re.search(r"serving on ([\d.]+):(\d+)", line)
    if not match:
        proc.kill()
        fail(f"daemon did not announce its address: {line!r}")
    return proc, match.group(1), int(match.group(2))


def client(index: int, host: str, port: int, count: int,
           results: list, errors: list) -> None:
    try:
        with socket.create_connection((host, port), timeout=120.0) as conn:
            conn.settimeout(120.0)
            stream = conn.makefile("rw", encoding="utf-8", newline="\n")
            for i in range(count):
                # every other request is shared across clients, so the
                # fleet hammers the same fingerprints concurrently
                seed = i if i % 2 == 0 else 1000 + index * count + i
                frame = {"op": "route", "id": f"c{index}-{i}",
                         "algorithm": "ldrg",
                         "net": {"source": [0, 0],
                                 "sinks": [[100.0 + 13 * seed,
                                            200.0 + 7 * seed],
                                           [50.0 + 29 * seed, 90.0]]}}
                stream.write(json.dumps(frame) + "\n")
            stream.flush()
            for _ in range(count):
                raw = stream.readline()
                if not raw:
                    errors.append(f"client {index}: connection closed "
                                  f"before all responses arrived")
                    return
                results.append(json.loads(raw))
    except Exception as exc:
        errors.append(f"client {index}: {type(exc).__name__}: {exc}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--clients", type=int, default=5)
    parser.add_argument("--requests", type=int, default=10,
                        help="requests per client")
    parser.add_argument("--rate", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    proc, host, port = start_daemon(args)
    results: list = []
    errors: list = []
    threads = [threading.Thread(target=client,
                                args=(i, host, port, args.requests,
                                      results, errors))
               for i in range(args.clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
        if thread.is_alive():
            proc.kill()
            fail("a client is hung: the daemon stopped answering")
    if errors:
        proc.kill()
        fail("; ".join(errors))

    total = args.clients * args.requests
    if len(results) != total:
        proc.kill()
        fail(f"expected {total} responses, got {len(results)}")
    ok = degraded = warm = 0
    for response in results:
        if response.get("status") == "ok":
            ok += 1
            degraded += bool(response.get("degraded"))
            warm += bool(response.get("cached") or response.get("coalesced"))
        elif response.get("status") == "error":
            kind = response.get("error", {}).get("kind")
            if kind not in TYPED_KINDS:
                proc.kill()
                fail(f"untyped error kind {kind!r}: {response}")
        else:
            proc.kill()
            fail(f"unstructured response: {response}")

    proc.send_signal(signal.SIGTERM)
    try:
        _out, err = proc.communicate(timeout=120.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("daemon did not drain within 120s of SIGTERM")
    if proc.returncode != 0:
        fail(f"daemon exited {proc.returncode} after SIGTERM:\n{err}")
    if "Traceback" in err:
        fail(f"traceback on daemon stderr:\n{err}")

    print(f"service-smoke: PASS — {total} concurrent requests "
          f"({ok} ok, {degraded} degraded-with-provenance, {warm} warm, "
          f"{total - ok} typed errors) at chaos {args.rate}; "
          f"clean SIGTERM drain")


if __name__ == "__main__":
    main()
