#!/usr/bin/env python3
"""Render paper-vs-measured comparison blocks from a results directory.

Reads the ``tableN.txt`` files produced by ``scripts/run_paper_tables.py``
and prints (or writes) the side-by-side comparisons that EXPERIMENTS.md
records.

Usage:  python scripts/make_comparison.py [--dir results/paper] [--out FILE]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments.comparison import compare_blocks, parse_rendered_table
from repro.experiments.paper_data import PAPER_TABLES


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", type=Path, default=Path("results") / "paper")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()

    sections = []
    for number in sorted(PAPER_TABLES):
        path = args.dir / f"table{number}.txt"
        if not path.exists():
            sections.append(f"Table {number}: (no results file at {path})")
            continue
        measured = parse_rendered_table(path.read_text(encoding="utf-8"))
        sections.append(compare_blocks(number, measured))
    text = "\n\n".join(sections)
    if args.out:
        args.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text)


if __name__ == "__main__":
    main()
