#!/usr/bin/env python3
"""Kill/recover chaos campaign against the supervised routing daemon.

Drives the real CLI (``python -m repro serve --supervised --run-dir …``)
end to end and proves the PR-9 durability contract:

1. feeds a seeded request stream (unique nets, deliberate duplicates,
   malformed frames, worker-kill directives) into the daemon's stdin;
2. SIGKILLs the *daemon child* (never the supervisor) mid-backlog, up
   to ``--kills`` times, reading the victim's pid from the run
   directory's ``daemon.pid``;
3. waits for the supervisor to restart the daemon, which replays the
   write-ahead log (``--recover``) — and re-sends any ids that are
   still unanswered (a killed child can lose stdin bytes it had read
   but not yet admitted; the WAL only covers *admitted* frames);
4. optionally injects a one-shot WAL disk-full fault per generation
   (``--wal-fault-after``), proving durability failures degrade to
   counted errors, not outages;
5. at EOF the final generation drains, the supervisor exits 0, and the
   campaign asserts:
   * every well-formed request id was answered at least once, and all
     answers for one id are canonically identical (volatile fields
     stripped) — the exactly-once-from-the-client's-view contract;
   * the write-ahead log has no pending entries left;
   * every warm-cache record still parses (no corruption across kills);
   * at least one daemon generation was actually killed and recovered.

Emits a ``BENCH_recovery.json`` with time-to-first-response after each
kill versus the backlog depth at the kill.

Exit status 0 = all invariants hold; 1 = a violation, with a message.

Usage:  python scripts/chaos_campaign.py [--requests 200] [--kills 3]
            [--seed 0] [--workers 0] [--kill-backlog 50]
            [--out BENCH_recovery.json]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.geometry.random_nets import random_net  # noqa: E402
from repro.service.faults import (  # noqa: E402
    CampaignFrame,
    ServiceFaultPlan,
    build_campaign_stream,
)
from repro.service.wal import load_pending  # noqa: E402

#: Response fields that legitimately differ between an original answer
#: and its retry/replay/coalesced/cached echo.
VOLATILE_RESPONSE_FIELDS = frozenset(
    {"elapsed", "cached", "coalesced", "replayed", "id"})


def fail(message: str) -> None:
    print(f"chaos-campaign: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def canonical(response: dict) -> str:
    """A response's identity bytes: volatile delivery fields stripped."""

    def strip(data):
        if isinstance(data, dict):
            return {k: strip(v) for k, v in sorted(data.items())
                    if k not in VOLATILE_RESPONSE_FIELDS}
        if isinstance(data, list):
            return [strip(v) for v in data]
        return data

    return json.dumps(strip(response), sort_keys=True)


@dataclass
class CampaignOptions:
    requests: int = 200
    kills: int = 3
    seed: int = 0
    workers: int = 0
    kill_backlog: int = 50
    malformed_rate: float = 0.03
    worker_kill_rate: float = 0.0
    duplicate_every: int = 10
    deadline: float = 30.0
    wal_fault_after: int | None = None
    retry_rounds: int = 8
    quiet_timeout: float = 20.0
    run_dir: Path | None = None
    out: Path = Path("BENCH_recovery.json")


@dataclass
class CampaignResult:
    answered: dict[str, list[dict]] = field(default_factory=dict)
    null_id_errors: int = 0
    kills: list[dict] = field(default_factory=list)
    retries_sent: int = 0
    supervisor_exit: int | None = None


class _Reader(threading.Thread):
    """Drains the shared stdout pipe, indexing responses by id."""

    def __init__(self, stream, result: CampaignResult):
        super().__init__(name="campaign-reader", daemon=True)
        self.stream = stream
        self.result = result
        self.lock = threading.Lock()
        self.last_response_at = time.monotonic()

    def run(self) -> None:
        for raw in self.stream:
            raw = raw.strip()
            if not raw:
                continue
            try:
                response = json.loads(raw)
            except ValueError:
                fail(f"non-JSON line on the response stream: {raw[:200]!r}")
            if not isinstance(response, dict):
                fail(f"non-object response frame: {raw[:200]!r}")
            with self.lock:
                self.last_response_at = time.monotonic()
                frame_id = response.get("id")
                if frame_id is None:
                    self.result.null_id_errors += 1
                else:
                    self.result.answered.setdefault(
                        str(frame_id), []).append(response)

    def answered_count(self) -> int:
        with self.lock:
            return len(self.result.answered)

    def quiet_for(self) -> float:
        with self.lock:
            return time.monotonic() - self.last_response_at


def spawn_supervised(options: CampaignOptions,
                     run_dir: Path) -> subprocess.Popen:
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ, PYTHONPATH=str(repo_root / "src"))
    argv = [sys.executable, "-m", "repro", "serve", "--supervised",
            "--run-dir", str(run_dir),
            "--cache-dir", str(run_dir / "cache"),
            "--queue-capacity", str(max(256, options.requests + 64)),
            "--workers", str(options.workers),
            # The analytic engine routes a 5-pin net in ~10 ms: fast
            # enough that a 200-request campaign builds and drains a
            # real backlog in CI, slow enough that kills land mid-work.
            "--engines", "analytic",
            "--deadline", str(options.deadline),
            "--drain-timeout", "30",
            "--heartbeat-interval", "0.2",
            "--heartbeat-timeout", "10",
            "--restart-budget", str(options.kills + 3),
            "--restart-window", "3600",
            "--fault-injection"]
    if options.wal_fault_after is not None:
        argv += ["--wal-fault-after", str(options.wal_fault_after)]
    return subprocess.Popen(argv, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, text=True, env=env,
                            cwd=repo_root)


def read_daemon_pid(run_dir: Path, supervisor_pid: int) -> int | None:
    try:
        pid = int((run_dir / "daemon.pid").read_text().strip())
    except (OSError, ValueError):
        return None
    if pid == supervisor_pid:
        return None
    try:
        os.kill(pid, 0)  # liveness probe only
    except OSError:
        return None
    return pid


def kill_daemon(options: CampaignOptions, run_dir: Path,
                supervisor_pid: int, reader: _Reader, sent_ids: int,
                result: CampaignResult) -> None:
    """SIGKILL the daemon child once the backlog is deep enough."""
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        backlog = sent_ids - reader.answered_count()
        pid = read_daemon_pid(run_dir, supervisor_pid)
        if backlog >= options.kill_backlog and pid is not None:
            killed_at = time.monotonic()
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                time.sleep(0.05)
                continue
            answered_before = reader.answered_count()
            recover_deadline = time.monotonic() + 120.0
            while (reader.answered_count() <= answered_before
                   and time.monotonic() < recover_deadline):
                time.sleep(0.02)
            ttfr = time.monotonic() - killed_at
            result.kills.append({
                "pid": pid, "backlog_at_kill": backlog,
                "time_to_first_response_s": round(ttfr, 4)})
            return
        if backlog == 0:
            return  # stream already fully answered; nothing to kill over
        time.sleep(0.02)


def run_campaign(options: CampaignOptions) -> dict:
    """Run one seeded campaign; returns the benchmark/report dict."""
    owned_tmp = None
    if options.run_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="chaos-campaign-")
        run_dir = Path(owned_tmp.name)
    else:
        run_dir = Path(options.run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)

    plan = ServiceFaultPlan(seed=options.seed,
                            kill_rate=options.worker_kill_rate,
                            malformed_rate=options.malformed_rate)
    nets = [random_net(5, seed=options.seed * 100_003 + i)
            for i in range(options.requests)]
    frames = build_campaign_stream(plan, nets, deadline=options.deadline,
                                   duplicate_every=options.duplicate_every,
                                   id_prefix="c")
    expected = {f.frame_id: f for f in frames if f.frame_id is not None}

    result = CampaignResult()
    proc = spawn_supervised(options, run_dir)
    assert proc.stdin is not None and proc.stdout is not None
    reader = _Reader(proc.stdout, result)
    reader.start()

    try:
        started = time.monotonic()
        for index, frame in enumerate(frames):
            proc.stdin.write(frame.line + "\n")
            if index % 32 == 0:
                proc.stdin.flush()
        proc.stdin.flush()

        for _ in range(options.kills):
            kill_daemon(options, run_dir, proc.pid, reader,
                        len(expected), result)

        # Retry rounds: ids a killed child read-but-never-admitted are
        # genuinely lost (the WAL covers admitted frames only) — the
        # client-side retry contract recovers them. Idempotence makes
        # the re-sends safe: completed fingerprints answer from cache.
        # The quiet window (3 s) must outlast a supervisor restart
        # (backoff + interpreter startup), or retries fire while the
        # next generation is still replaying.
        for _ in range(options.retry_rounds):
            round_start = time.monotonic()
            while reader.quiet_for() < 3.0:
                if time.monotonic() - round_start > options.quiet_timeout:
                    break
                time.sleep(0.05)
            with reader.lock:
                missing = [fid for fid in expected
                           if fid not in result.answered]
            if not missing:
                break
            for fid in missing:
                proc.stdin.write(expected[fid].line + "\n")
                result.retries_sent += 1
            proc.stdin.flush()

        proc.stdin.close()  # EOF: final generation drains, tree exits
        result.supervisor_exit = proc.wait(timeout=180.0)
        reader.join(timeout=10.0)
        elapsed = time.monotonic() - started
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)

    report = verify(options, run_dir, result, expected, elapsed)
    if owned_tmp is not None:
        owned_tmp.cleanup()
    return report


def verify(options: CampaignOptions, run_dir: Path, result: CampaignResult,
           expected: dict[str, CampaignFrame], elapsed: float) -> dict:
    if result.supervisor_exit != 0:
        fail(f"supervisor exited {result.supervisor_exit}, expected 0")
    missing = sorted(fid for fid in expected
                     if fid not in result.answered)
    if missing:
        fail(f"{len(missing)} request(s) never answered: {missing[:10]}")

    duplicates = 0
    for fid, responses in result.answered.items():
        if fid not in expected:
            fail(f"answer for an id that was never sent: {fid!r}")
        duplicates += len(responses) - 1
        ok_forms = {canonical(r) for r in responses
                    if r.get("status") == "ok"}
        if len(ok_forms) > 1:
            fail(f"id {fid!r}: {len(ok_forms)} distinct ok payloads "
                 f"across retries/replays (must be byte-identical)")
        error_kinds = {r.get("error", {}).get("kind")
                       for r in responses if r.get("status") == "error"}
        if ok_forms and error_kinds - {"timeout", "crash"}:
            fail(f"id {fid!r}: mixed ok and non-transient error answers "
                 f"({sorted(error_kinds)})")

    replay = load_pending(run_dir)
    if replay.pending:
        fail(f"write-ahead log still has {len(replay.pending)} pending "
             f"entries after a clean drain")

    cache_dir = run_dir / "cache"
    cache_files = 0
    for record in sorted(cache_dir.glob("result_*.json")):
        cache_files += 1
        try:
            json.loads(record.read_text(encoding="utf-8"))
        except ValueError:
            fail(f"corrupt warm-cache record survived the campaign: "
                 f"{record.name}")

    if options.kills > 0 and not result.kills:
        fail("campaign was asked to kill the daemon but never could "
             "(backlog threshold never reached — lower --kill-backlog)")

    ok_answers = sum(
        1 for rs in result.answered.values()
        for r in rs if r.get("status") == "ok")
    return {
        "requests": len(expected),
        "answered_ids": len(result.answered),
        "ok_answers": ok_answers,
        "duplicate_answers": duplicates,
        "null_id_protocol_errors": result.null_id_errors,
        "retries_sent": result.retries_sent,
        "kills": result.kills,
        "daemon_generations": len(result.kills) + 1,
        "wal_records_final": replay.records,
        "wal_corrupt_lines_final": replay.corrupt_lines,
        "cache_records": cache_files,
        "elapsed_s": round(elapsed, 3),
        "seed": options.seed,
        "workers": options.workers,
        "supervisor_exit": result.supervisor_exit,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--kills", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--kill-backlog", type=int, default=50)
    parser.add_argument("--worker-kill-rate", type=float, default=0.0)
    parser.add_argument("--malformed-rate", type=float, default=0.03)
    parser.add_argument("--wal-fault-after", type=int, default=None)
    parser.add_argument("--run-dir", type=Path, default=None)
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_recovery.json"))
    args = parser.parse_args(argv)
    options = CampaignOptions(
        requests=args.requests, kills=args.kills, seed=args.seed,
        workers=args.workers, kill_backlog=args.kill_backlog,
        worker_kill_rate=args.worker_kill_rate,
        malformed_rate=args.malformed_rate,
        wal_fault_after=args.wal_fault_after,
        run_dir=args.run_dir, out=args.out)
    report = run_campaign(options)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"chaos-campaign: OK — {report['answered_ids']} ids answered, "
          f"{len(report['kills'])} daemon kill(s), "
          f"{report['duplicate_answers']} duplicate answer(s), "
          f"report in {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
