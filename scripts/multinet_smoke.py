#!/usr/bin/env python3
"""CI multinet smoke: the fleet backend must not change a single bit.

The fleet evaluator's contract is *batch-composition invariance*: numpy's
batched ``linalg`` gufuncs process each stacked matrix independently, so
a net's routing must be byte-identical whether it rode a fleet of one or
shared its batch with 49 strangers — and its chosen edges must match the
sequential incremental engine exactly. This script checks the claim
dynamically on the paths CI cares about:

1. routes a mixed-size fleet three ways — sequential LDRG (incremental
   engine), one whole ``route_fleet`` batch, and 50 fleets of one — and
   requires identical chosen edges everywhere plus *bitwise* identical
   delays between the batched and singleton fleet runs;
2. shuffles the fleet and requires every member's delays to stay
   bitwise identical to the unshuffled run (batch position must not
   exist electrically);
3. renders ``table 7`` through the CLI with and without ``--multinet``
   and requires the ratio columns to agree (same trial nets, same
   chosen edges, only the throughput differs);
4. runs the whole-program dataflow analyzer, which now covers
   ``repro.delay.multinet`` as an eval module, and requires a clean
   exit — a dynamic violation should always arrive with the static
   view, and vice versa.

Exit status 0 = all invariants hold; 1 = a violation, with a message.

Usage:  python scripts/multinet_smoke.py [--fleet 50] [--pins 10]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.ldrg import ldrg  # noqa: E402
from repro.delay.multinet import route_fleet  # noqa: E402
from repro.delay.parameters import Technology  # noqa: E402
from repro.geometry.net import Net  # noqa: E402

RELATIVE_TOLERANCE = 1e-9


def fail(message: str) -> None:
    print(f"multinet-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _env_with_src() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(SRC) + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else str(SRC))
    return env


def _run(cmd: list[str]) -> str:
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          cwd=REPO_ROOT, env=_env_with_src())
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return proc.stdout


def check_byte_identity(args: argparse.Namespace) -> None:
    tech = Technology.cmos08()
    nets = [Net.random(3 + (i % args.pins), seed=2000 + i, name=f"m{i}")
            for i in range(args.fleet)]
    sequential = [ldrg(net, tech, delay_model="elmore",
                       candidate_evaluator="incremental") for net in nets]
    batched = route_fleet(nets, tech)
    singles = [route_fleet([net], tech)[0] for net in nets]
    for net, seq, bat, single in zip(nets, sequential, batched, singles):
        if sorted(seq.graph.edges()) != sorted(bat.graph.edges()):
            fail(f"{net.name}: batched fleet chose different edges than "
                 f"the sequential engine")
        for sink, want in seq.delays.items():
            rel = abs(want - bat.delays[sink]) / max(abs(want), 1e-30)
            if rel > RELATIVE_TOLERANCE:
                fail(f"{net.name} sink {sink}: fleet delay off by "
                     f"{rel:.2e} relative")
        if bat.delays != single.delays:
            fail(f"{net.name}: batch-of-{args.fleet} delays are not "
                 f"bitwise equal to the fleet-of-one run")
        if bat.history != single.history:
            fail(f"{net.name}: greedy history depends on batch size")
    order = sorted(range(len(nets)), key=lambda i: (i * 7919) % len(nets))
    shuffled = route_fleet([nets[i] for i in order], tech)
    for position, index in enumerate(order):
        if shuffled[position].delays != batched[index].delays:
            fail(f"{nets[index].name}: delays changed under fleet "
                 f"shuffling (batch position leaked)")
    print(f"multinet-smoke: byte identity holds across batch-of-1, "
          f"batch-of-{args.fleet}, and shuffled fleets")


def check_cli_table(args: argparse.Namespace) -> None:
    base = [sys.executable, "-m", "repro", "table", "7",
            "--trials", "2", "--sizes", "5"]
    sequential = _run(base)
    batched = _run(base + ["--multinet"])

    def ratio_rows(text: str) -> list[str]:
        return [line for line in text.splitlines()
                if line.strip() and line.lstrip()[0].isdigit()]

    if ratio_rows(sequential) != ratio_rows(batched):
        fail("table 7 ratio rows differ between sequential and "
             f"--multinet runs:\n{sequential}\n---\n{batched}")
    print("multinet-smoke: table 7 rows identical with and without "
          "--multinet")


def check_analyzer() -> None:
    _run([sys.executable, "-m", "repro.analysis", "--pass", "dataflow",
          str(SRC / "repro")])
    print("multinet-smoke: dataflow analyzer clean with "
          "repro.delay.multinet in eval coverage")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fleet", type=int, default=50,
                        help="fleet size of the byte-identity check")
    parser.add_argument("--pins", type=int, default=10,
                        help="size spread of the mixed fleet")
    args = parser.parse_args()
    check_byte_identity(args)
    check_cli_table(args)
    check_analyzer()
    print("multinet-smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
