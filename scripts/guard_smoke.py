#!/usr/bin/env python3
"""CI guard smoke: the self-verification layer must verify — and catch.

Drives Elmore-oracle LDRG sweeps (the configuration whose candidate
path is the shadow-audited incremental engine; the stock SPICE-searched
tables use the naive path, where there is nothing to audit) through the
real sweep runtime with journaling on, and asserts:

1. a **full-rate audit** (``--guard audit=1.0`` equivalent) completes
   with every candidate batch re-scored and **zero divergences**, and
   the rendered rows carry the ``[audited N, diverged 0]`` annotation;
2. an **injected fast-path perturbation** (the ``inject_error`` test
   hook) is detected, the fast path is quarantined, the sweep still
   completes, and the divergence + quarantine events are recorded in
   the journal;
3. the perturbed run's aggregate numbers equal the clean run's — the
   naive fallback kept the statistics trustworthy.

Exit status 0 = all invariants hold; 1 = a violation, with a message.

Usage:  python scripts/guard_smoke.py [--trials 5] [--sizes 5,10] [--seed 1994]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from functools import partial
from pathlib import Path

from repro.core.ldrg import ldrg
from repro.experiments.harness import ExperimentConfig, run_size_sweep
from repro.experiments.reporting import format_rows
from repro.geometry.net import Net
from repro.guard.incidents import KIND_DIVERGE, KIND_QUARANTINE
from repro.guard.policy import GuardPolicy
from repro.runtime import RuntimePolicy


def fail(message: str) -> None:
    print(f"guard-smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def run_elmore_ldrg(config: ExperimentConfig, net: Net):
    """Module-level (picklable) Elmore-oracle trial runner."""
    with config.guard_scope():
        return ldrg(net, config.tech, delay_model="elmore")


def run_sweep(args: argparse.Namespace, guard: GuardPolicy,
              run_dir: Path):
    config = ExperimentConfig(
        sizes=tuple(int(s) for s in args.sizes.split(",")),
        trials=args.trials, seed=args.seed, guard=guard)
    rows = run_size_sweep(config, partial(run_elmore_ldrg, config),
                          runtime=RuntimePolicy(run_root=run_dir))
    return rows


def journaled_kinds(run_dir: Path) -> set[str]:
    kinds: set[str] = set()
    for record in run_dir.glob("*/trial_*.json"):
        data = json.loads(record.read_text(encoding="utf-8"))
        result = data.get("result") or {}
        kinds.update(e["kind"] for e in result.get("provenance", ()))
    return kinds


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--sizes", type=str, default="5,10")
    parser.add_argument("--seed", type=int, default=1994)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="guard-smoke-") as tmp:
        tmp_path = Path(tmp)

        # 1. Full-rate audit of a clean sweep: everything checked,
        #    nothing diverged.
        clean = run_sweep(args, GuardPolicy(mode="audit", audit_rate=1.0),
                          tmp_path / "clean")
        for row in clean:
            if row.audited == 0:
                fail(f"size-{row.net_size} row was never audited "
                     f"(audit mode did not engage)")
            if row.diverged != 0:
                fail(f"size-{row.net_size} row reports {row.diverged} "
                     f"divergences on a clean run:\n{format_rows(clean)}")
        rendered = format_rows(clean)
        if "[audited " not in rendered:
            fail(f"rendered rows lack the audit annotation:\n{rendered}")

        # 2. An injected fast-path error must be caught and quarantined.
        perturbed = run_sweep(
            args, GuardPolicy(mode="audit", audit_rate=1.0,
                              inject_error=1e-4),
            tmp_path / "perturbed")
        diverged = sum(row.diverged for row in perturbed)
        if diverged == 0:
            fail("injected 1e-4 perturbation was not detected")
        kinds = journaled_kinds(tmp_path / "perturbed")
        for required in (KIND_DIVERGE, KIND_QUARANTINE):
            if required not in kinds:
                fail(f"journal lacks {required!r} provenance "
                     f"(found: {sorted(kinds)})")

        # 3. Quarantine means the naive fallback produced the numbers:
        #    the perturbed sweep's statistics equal the clean sweep's.
        for clean_row, hit_row in zip(clean, perturbed):
            if (clean_row.all_delay, clean_row.all_cost) \
                    != (hit_row.all_delay, hit_row.all_cost):
                fail(f"size-{clean_row.net_size} statistics drifted under "
                     f"quarantine: {clean_row} vs {hit_row}")

    audited = sum(row.audited for row in clean)
    print(f"guard-smoke: OK (audited {audited} candidate scores clean; "
          f"injected fault caught, quarantined, and survived with "
          f"{diverged} journaled divergences)")


if __name__ == "__main__":
    main()
