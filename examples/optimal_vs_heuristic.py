#!/usr/bin/env python3
"""Exact optima vs the heuristics, on nets small enough to enumerate.

For 5-pin nets every routing topology can be scored exhaustively, which
answers questions the paper could only approach statistically:

* how far is LDRG from the true Optimal Routing Graph?
* how near-optimal is the ERT, really? (Boese et al. estimated ~2%)
* how often is the optimal routing graph actually a *tree*?

The last number explains the paper's Table 2 directly: at 5 pins only
52% of nets benefited from an extra edge — because at that size the true
optimum usually *is* a tree (just not the MST).

Run:  python examples/optimal_vs_heuristic.py [num_nets]
"""

import sys

from repro import Net, Technology, ert, ldrg
from repro.core.exhaustive import optimal_routing_graph, optimal_routing_tree
from repro.delay.models import ElmoreGraphModel


def main() -> None:
    num_nets = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    tech = Technology.cmos08()
    oracle = ElmoreGraphModel(tech)

    print(f"{'net':>6s}  {'ORG':>8s}  {'ORT':>8s}  {'LDRG':>8s}  "
          f"{'ERT':>8s}  {'optimum'}")
    tree_optima = 0
    for seed in range(num_nets):
        net = Net.random(5, seed=seed, name=f"n{seed}")
        org = optimal_routing_graph(net, tech, oracle)
        ort = optimal_routing_tree(net, tech, oracle)
        greedy = ldrg(net, tech, delay_model=oracle)
        tree = ert(net, tech, evaluation_model=oracle)
        kind = "tree" if org.is_tree else "NON-TREE"
        tree_optima += org.is_tree
        print(f"{net.name:>6s}  {org.delay * 1e9:7.3f}n  "
              f"{ort.delay * 1e9:7.3f}n  {greedy.delay * 1e9:7.3f}n  "
              f"{tree.delay * 1e9:7.3f}n  {kind}")

    print(f"\n{tree_optima}/{num_nets} optima are trees — tiny nets "
          "rarely want cycles, which is why the paper's gains grow with "
          "net size (Tables 2-7).")
    print("Note the ORG/ORT columns: whenever they differ, a non-tree "
          "routing strictly beats the best possible tree.")


if __name__ == "__main__":
    main()
