#!/usr/bin/env python3
"""Detailed routing around a macro blockage — abstract vs embedded delay.

The paper's routing graphs assume every wire runs at Manhattan length.
This example embeds a non-tree routing on a real routing grid with a
large blocked macro in the middle of the die (A* maze routing, in the
lineage of the paper's citation [17]), and measures what the detours do:

* wirelength inflation (the detour factor);
* SPICE-level delay of the abstract vs the bend-accurate embedded net;
* whether LDRG's extra edge still pays off after embedding.

Renders the embedded routing (bends as Steiner squares) to an SVG.

Run:  python examples/obstacle_routing.py [seed] [out.svg]
"""

import sys

from repro import Net, Technology, ldrg, prim_mst, spice_delay
from repro.route import RoutingGrid, embed_routing
from repro.viz import save_routing_svg


def embed_on(graph, blocked: bool):
    grid = RoutingGrid(region=10_000.0, pitch=200.0)
    if blocked:
        grid.block_rect(3500.0, 3500.0, 6500.0, 6500.0)  # 3x3 mm macro
    embedding = embed_routing(graph, grid, snap_blocked_pins=True)
    return embedding


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 23
    out_svg = sys.argv[2] if len(sys.argv) > 2 else "embedded_route.svg"
    tech = Technology.cmos08()
    net = Net.random(num_pins=10, seed=seed, name=f"macro_demo_s{seed}")

    mst = prim_mst(net)
    routed = ldrg(net, tech)
    print(f"Abstract routing: MST {spice_delay(mst, tech) * 1e9:.3f} ns, "
          f"LDRG {routed.delay * 1e9:.3f} ns "
          f"({routed.num_added_edges} extra edge(s))\n")

    print(f"{'scenario':28s}  {'detour':>7s}  {'MST ns':>8s}  {'LDRG ns':>8s}")
    for blocked in (False, True):
        mst_embedded = embed_on(mst, blocked).to_routing_graph()
        ldrg_embedding = embed_on(routed.graph, blocked)
        ldrg_embedded = ldrg_embedding.to_routing_graph()
        label = "3x3 mm macro blockage" if blocked else "open die"
        print(f"{label:28s}  {ldrg_embedding.detour_factor():6.3f}x  "
              f"{spice_delay(mst_embedded, tech) * 1e9:8.3f}  "
              f"{spice_delay(ldrg_embedded, tech) * 1e9:8.3f}")
        if blocked:
            save_routing_svg(
                ldrg_embedded, out_svg,
                highlight_edges=[],
                title=f"LDRG routing embedded around a macro "
                      f"({spice_delay(ldrg_embedded, tech) * 1e9:.2f} ns)")

    improvement = 1.0 - (spice_delay(ldrg_embedded, tech)
                         / spice_delay(mst_embedded, tech))
    print(f"\nAfter embedding around the macro, the non-tree edge still "
          f"buys {improvement:+.1%} delay vs the embedded MST.")
    print(f"Embedded routing drawn to {out_svg}")


if __name__ == "__main__":
    main()
