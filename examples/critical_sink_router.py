#!/usr/bin/env python3
"""Critical-sink routing (CSORG, Section 5.1 of the paper).

Scenario: timing analysis has flagged one sink of a 12-pin net as lying
on the chip's critical path. This example routes the net three ways and
compares the delay *to the critical sink* and the average sink delay:

1. plain MST (timing-oblivious baseline);
2. max-delay LDRG (the paper's main algorithm, which optimizes the
   worst sink, not necessarily the critical one);
3. CSORG-LDRG with criticality concentrated on the flagged sink.

Run:  python examples/critical_sink_router.py [seed]
"""

import sys
from statistics import mean

from repro import Net, Technology, csorg_ldrg, ldrg, prim_mst, spice_delays


def describe(name: str, delays: dict[int, float], critical: int,
             cost: float) -> None:
    print(f"{name:22s}  critical-sink {delays[critical] * 1e9:6.3f} ns   "
          f"max {max(delays.values()) * 1e9:6.3f} ns   "
          f"avg {mean(delays.values()) * 1e9:6.3f} ns   "
          f"cost {cost:8.0f} um")


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    tech = Technology.cmos08()
    net = Net.random(num_pins=12, seed=seed, name=f"cs_demo_s{seed}")

    mst = prim_mst(net)
    mst_delays = spice_delays(mst, tech)
    # Flag the electrically slowest MST sink as critical - the situation
    # iterative timing-driven layout actually produces.
    critical = max(mst_delays, key=mst_delays.get)
    print(f"Net {net.name}: critical sink n{critical} "
          f"(slowest under the MST routing)\n")

    describe("MST baseline", mst_delays, critical, mst.cost())

    max_delay_route = ldrg(net, tech)
    describe("LDRG (max-delay)", max_delay_route.delays, critical,
             max_delay_route.cost)

    cs_route = csorg_ldrg(net, tech, critical_sink=critical)
    describe("CSORG-LDRG (targeted)", cs_route.delays, critical,
             cs_route.cost)

    improvement = 1.0 - cs_route.delays[critical] / mst_delays[critical]
    print(f"\nTargeted routing cut the critical sink's delay by "
          f"{improvement:.1%} vs the MST.")
    print("Edges added for the critical sink:",
          [record.edge for record in cs_route.history] or "(none needed)")


if __name__ == "__main__":
    main()
