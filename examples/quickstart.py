#!/usr/bin/env python3
"""Quickstart: route one net with every algorithm in the library.

Builds a random 10-pin net in a 10x10 mm region (the paper's workload),
routes it with the MST baseline, LDRG, SLDRG, the H1-H3 heuristics and
the ERT, and prints each routing's SPICE-level delay and wirelength.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import (
    Net,
    Technology,
    ert,
    h1,
    h2,
    h3,
    ldrg,
    prim_mst,
    sldrg,
    spice_delay,
)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    tech = Technology.cmos08()
    net = Net.random(num_pins=10, seed=seed, name=f"demo_s{seed}")
    print(f"Net {net.name}: source at ({net.source.x:.0f}, {net.source.y:.0f}) um, "
          f"{net.num_sinks} sinks\n")

    mst = prim_mst(net)
    mst_delay = spice_delay(mst, tech)
    print(f"{'MST baseline':14s}  delay {mst_delay * 1e9:7.3f} ns   "
          f"cost {mst.cost():9.0f} um")

    runs = [
        ("LDRG", ldrg(net, tech)),
        ("SLDRG", sldrg(net, tech)),
        ("H1", h1(net, tech)),
        ("H2", h2(net, tech)),
        ("H3", h3(net, tech)),
        ("ERT", ert(net, tech)),
    ]
    for name, result in runs:
        marker = "non-tree" if not result.graph.is_tree() else "tree    "
        print(f"{name:14s}  delay {result.delay * 1e9:7.3f} ns   "
              f"cost {result.cost:9.0f} um   [{marker}] "
              f"{result.num_added_edges} edge(s) added")

    best = min(runs, key=lambda item: item[1].delay)
    print(f"\nBest routing: {best[0]} at "
          f"{best[1].delay / mst_delay:.2f}x the MST delay "
          f"({best[1].cost / mst.cost():.2f}x the MST wirelength)")


if __name__ == "__main__":
    main()
