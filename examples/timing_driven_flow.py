#!/usr/bin/env python3
"""Full timing-driven routing flow (the Section 5.1 story, end to end).

Builds a seeded random placed design (DFF start points feeding stages of
combinational gates), routes every net with an MST, runs static timing
analysis with real routed-interconnect delays, then iteratively
re-routes the nets on the critical path with CSORG-LDRG using per-sink
criticalities extracted from the STA — the loop the paper's critical-sink
formulation exists to serve.

Run:  python examples/timing_driven_flow.py [seed]
"""

import sys

from repro import Technology
from repro.timing import analyze, random_design, timing_driven_flow
from repro.graph.mst import prim_mst


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    tech = Technology.cmos08()
    design = random_design(num_stages=6, stage_width=8, seed=seed,
                           max_fanout=6)
    print(f"Design {design.name}: {len(design.instances)} gates, "
          f"{len(design.nets)} nets, "
          f"{len(design.primary_inputs)} start points\n")

    baseline = analyze(design, tech, router=prim_mst, clock_period=6e-9)
    print(f"MST-routed baseline: critical path "
          f"{baseline.max_arrival * 1e9:.3f} ns, "
          f"WNS {baseline.worst_slack * 1e9:+.3f} ns")
    print("critical path:", " -> ".join(baseline.critical_path(design)))

    flow = timing_driven_flow(design, tech, rounds=4, clock_period=6e-9)
    print(f"\nAfter timing-driven re-routing: {flow.summary()}")
    for round_index, nets in enumerate(flow.rerouted, start=1):
        print(f"  round {round_index}: re-routed {', '.join(nets)}")

    final = flow.reports[-1]
    nontree = [name for name, graph in final.routings.items()
               if not graph.is_tree()]
    print(f"\nNets now routed as non-trees: {nontree or '(none)'}")
    print(f"Final WNS {final.worst_slack * 1e9:+.3f} ns "
          f"(was {baseline.worst_slack * 1e9:+.3f} ns)")


if __name__ == "__main__":
    main()
