#!/usr/bin/env python3
"""Steiner non-tree routing (SLDRG, Figures 5/6 of the paper) with SVGs.

Routes a net four ways - MST, Iterated 1-Steiner tree, LDRG, SLDRG -
prints the delay/wirelength ledger, and renders each routing to an SVG
file (added non-tree edges dashed red, Steiner points as hollow squares),
reproducing the look of the paper's figures.

Run:  python examples/steiner_nontree.py [seed] [out_dir]
"""

import sys
from pathlib import Path

from repro import (
    Net,
    Technology,
    iterated_one_steiner,
    ldrg,
    prim_mst,
    sldrg,
    spice_delay,
)
from repro.viz import save_routing_svg


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 19
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("routing_svgs")
    out_dir.mkdir(parents=True, exist_ok=True)

    tech = Technology.cmos08()
    net = Net.random(num_pins=10, seed=seed, name=f"steiner_demo_s{seed}")

    mst = prim_mst(net)
    steiner = iterated_one_steiner(net)
    ldrg_result = ldrg(net, tech)
    sldrg_result = sldrg(net, tech)

    rows = [
        ("MST", mst, spice_delay(mst, tech), []),
        ("Steiner tree", steiner, spice_delay(steiner, tech), []),
        ("LDRG", ldrg_result.graph, ldrg_result.delay,
         [r.edge for r in ldrg_result.history]),
        ("SLDRG", sldrg_result.graph, sldrg_result.delay,
         [r.edge for r in sldrg_result.history]),
    ]
    print(f"Net {net.name} - delay / wirelength / topology:\n")
    for name, graph, delay, added in rows:
        kind = "tree" if graph.is_tree() else f"graph (+{len(added)} edges)"
        print(f"{name:14s}  {delay * 1e9:7.3f} ns   "
              f"{graph.cost():9.0f} um   {kind}")
        path = out_dir / f"{name.lower().replace(' ', '_')}.svg"
        save_routing_svg(graph, str(path), highlight_edges=added,
                         title=f"{name}: {delay * 1e9:.2f} ns")

    print(f"\nSVG renderings written to {out_dir}/")
    steiner_gain = 1.0 - rows[3][2] / rows[1][2]
    print(f"SLDRG improved the Steiner tree's delay by {steiner_gain:.1%} "
          f"({sldrg_result.cost_ratio - 1.0:+.1%} wirelength).")


if __name__ == "__main__":
    main()
