#!/usr/bin/env python3
"""Export a routing's interconnect circuit as a runnable SPICE deck.

The paper measured everything with SPICE2. This repo's simulator is
built in, but for external cross-checking every routing can be emitted
as a standard ``.cir`` deck (wire RC pi-sections, driver, sink loads,
``.tran`` card) runnable under ngspice:

    ngspice -b nontree_route.cir

The example also demonstrates the round trip: the exported deck is parsed
back and re-simulated with the built-in engine to confirm the
serialization preserves the circuit.

Run:  python examples/spice_deck_export.py [seed]
"""

import sys

from repro import Net, Technology, ldrg
from repro.circuit import circuit_from_deck, deck_from_circuit, transient
from repro.circuit.measure import delay_to_fraction
from repro.delay import build_interconnect_circuit, graph_elmore_delays
from repro.delay.rc_builder import node_label


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    tech = Technology.cmos08()
    net = Net.random(num_pins=8, seed=seed, name=f"deck_demo_s{seed}")
    result = ldrg(net, tech)
    graph = result.graph
    print(f"Routed {net.name}: {result.summary()}\n")

    circuit = build_interconnect_circuit(graph, tech, segments=3)
    horizon = 8.0 * max(graph_elmore_delays(graph, tech).values())
    sink_nodes = [node_label(s) for s in graph.sink_indices()]
    deck = deck_from_circuit(circuit, t_stop=horizon, print_nodes=sink_nodes)

    deck_path = "nontree_route.cir"
    with open(deck_path, "w", encoding="utf-8") as handle:
        handle.write(deck)
    print(f"Wrote {deck_path} ({len(deck.splitlines())} cards). "
          f"First lines:")
    for line in deck.splitlines()[:8]:
        print(f"  {line}")

    # Round trip: parse the deck back and re-measure the worst sink delay.
    parsed = circuit_from_deck(deck)
    sim = transient(parsed, t_stop=horizon, num_steps=2000)
    worst = max(
        delay_to_fraction(sim.times, sim.voltage(node), final_value=1.0)
        for node in sink_nodes)
    print(f"\nRound-trip check: worst sink 50% delay from the parsed deck = "
          f"{worst * 1e9:.3f} ns (library reported "
          f"{result.delay * 1e9:.3f} ns)")


if __name__ == "__main__":
    main()
