#!/usr/bin/env python3
"""Wire sizing study (WSORG, Section 5.2 of the paper).

The paper observes that the extra wires LDRG adds can be read as local
wire *widening* (two parallel width-w wires = one width-2w wire), and
poses the wire-sized ORG problem. This example quantifies both halves of
that observation on one net:

* widen the MST's wires greedily (pure WSORG, no topology change);
* add non-tree edges greedily (pure LDRG, no widths);
* do both (LDRG topology, then WSORG widths on top).

and reports delay vs total wire *area* (length x width), the real silicon
currency.

Run:  python examples/wire_sizing_study.py [seed]
"""

import sys

from repro import Net, Technology, ldrg, prim_mst, spice_delay, wsorg


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    tech = Technology.cmos08()
    net = Net.random(num_pins=15, seed=seed, name=f"ws_demo_s{seed}")

    mst = prim_mst(net)
    base_delay = spice_delay(mst, tech)
    base_area = mst.cost()  # unit width: area == length
    print(f"Net {net.name}, MST: {base_delay * 1e9:.3f} ns, "
          f"{base_area:.0f} um^2 of wire\n")
    print(f"{'strategy':24s}  {'delay':>9s}  {'vs MST':>7s}  "
          f"{'wire area':>10s}  {'widened/added':>13s}")

    sized_mst = wsorg(mst, tech)
    print(f"{'WSORG on MST':24s}  {sized_mst.delay * 1e9:7.3f} ns  "
          f"{sized_mst.delay / base_delay:6.2f}x  "
          f"{sized_mst.total_wire_area():9.0f}  "
          f"{len(sized_mst.widened_edges):13d}")

    routed = ldrg(net, tech)
    print(f"{'LDRG topology only':24s}  {routed.delay * 1e9:7.3f} ns  "
          f"{routed.delay / base_delay:6.2f}x  "
          f"{routed.cost:9.0f}  {routed.num_added_edges:13d}")

    sized_ldrg = wsorg(routed.graph, tech)
    print(f"{'LDRG + WSORG':24s}  {sized_ldrg.delay * 1e9:7.3f} ns  "
          f"{sized_ldrg.delay / base_delay:6.2f}x  "
          f"{sized_ldrg.total_wire_area():9.0f}  "
          f"{len(sized_ldrg.widened_edges):13d}")

    print("\nWidth assignment of the combined routing "
          "(edges at width > 1):")
    for edge in sized_ldrg.widened_edges:
        print(f"  edge {edge}: width {sized_ldrg.widths[edge]:.0f}")


if __name__ == "__main__":
    main()
