"""End-to-end tests for ``repro-route lint`` and ``python -m repro.analysis``."""

import json

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.cli import main as cli_main
from repro.graph.mst import prim_mst
from repro.io.nets_file import write_nets
from repro.io.routing_json import save_routing


@pytest.fixture
def clean_routing(tmp_path, net10):
    path = tmp_path / "mst.json"
    save_routing(prim_mst(net10), path)
    return path


@pytest.fixture
def corrupted_routing(tmp_path, net10):
    """A routing JSON with edges dropped: disconnected and non-spanning."""
    path = tmp_path / "broken.json"
    save_routing(prim_mst(net10), path)
    data = json.loads(path.read_text())
    data["edges"] = data["edges"][: len(data["edges"]) // 2]
    path.write_text(json.dumps(data))
    return path


class TestLintCommand:
    def test_clean_routing_exits_zero(self, clean_routing, capsys):
        assert cli_main(["lint", str(clean_routing)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupted_routing_exits_nonzero(self, corrupted_routing, capsys):
        assert cli_main(["lint", str(corrupted_routing)]) == 1
        out = capsys.readouterr().out
        assert "graph-disconnected" in out
        assert str(corrupted_routing) in out

    def test_unparseable_json_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{not json at all")
        assert cli_main(["lint", str(path)]) == 1
        assert "json-malformed" in capsys.readouterr().out

    def test_json_format_report(self, corrupted_routing, capsys):
        assert cli_main(["lint", "--format", "json",
                         str(corrupted_routing)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["error"] >= 1
        rules = {d["rule"] for d in report["diagnostics"]}
        assert "graph-disconnected" in rules

    def test_disable_turns_rules_off(self, corrupted_routing, capsys):
        code = cli_main([
            "lint", str(corrupted_routing), "--no-rc",
            "--disable", "graph-disconnected",
            "--disable", "graph-nonspanning",
            "--disable", "graph-dangling-steiner"])
        out = capsys.readouterr().out
        assert "graph-disconnected" not in out
        assert code == 0

    def test_severity_override_demotes_error(self, corrupted_routing, capsys):
        code = cli_main([
            "lint", str(corrupted_routing), "--no-rc",
            "--severity", "graph-disconnected=info",
            "--severity", "graph-nonspanning=info"])
        assert code == 0
        assert "info[graph-disconnected]" in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, clean_routing, capsys):
        assert cli_main(["lint", str(clean_routing),
                         "--disable", "bogus"]) == 2

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "nope.json")]) == 2

    def test_no_inputs_is_usage_error(self, capsys):
        assert cli_main(["lint"]) == 2

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "graph-disconnected" in out
        assert "rc-asymmetric-conductance" in out

    def test_clean_nets_file(self, tmp_path, net10, capsys):
        path = tmp_path / "good.nets"
        write_nets([net10], path)
        assert cli_main(["lint", str(path)]) == 0

    def test_malformed_nets_file(self, tmp_path, capsys):
        path = tmp_path / "bad.nets"
        path.write_text("net broken\n  sink 1.0 2.0\n")  # no source line
        assert cli_main(["lint", str(path)]) == 1
        assert "nets-malformed" in capsys.readouterr().out


class TestAnalysisMain:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(a=None):\n    return a\n")
        assert analysis_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(a=[]):\n    return a\n")
        assert analysis_main([str(tmp_path)]) == 1
        assert "source-mutable-default" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(a=[]):\n    return a\n")
        assert analysis_main(["--format", "json", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["error"] == 1

    def test_disable_flag(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(a=[]):\n    return a\n")
        assert analysis_main(["--disable", "source-mutable-default",
                              str(tmp_path)]) == 0

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert analysis_main(["--disable", "bogus", str(tmp_path)]) == 2

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        assert "source-float-eq" in capsys.readouterr().out

    def test_repo_package_is_clean(self, capsys):
        from pathlib import Path

        import repro

        assert analysis_main([str(Path(repro.__file__).parent)]) == 0
