"""Unit tests for the diagnostic framework itself."""

import json

import pytest

from repro.analysis.diagnostics import (
    Diagnostic,
    LintConfig,
    Location,
    Severity,
    has_errors,
    max_severity,
    registry,
)
from repro.analysis.reporters import render_json, render_text, summarize


def make(rule="graph-disconnected", severity=Severity.ERROR, message="boom",
         **kwargs):
    return Diagnostic(rule=rule, severity=severity, message=message, **kwargs)


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse(" Warning ") is Severity.WARNING

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_str(self):
        assert str(Severity.WARNING) == "warning"


class TestDiagnostic:
    def test_render_with_location_and_hint(self):
        diag = make(location=Location(file="a.json", obj="edge (0, 1)"),
                    hint="fix it")
        text = diag.render()
        assert "a.json" in text
        assert "edge (0, 1)" in text
        assert "error[graph-disconnected]" in text
        assert "(hint: fix it)" in text

    def test_render_bare(self):
        assert make().render() == "error[graph-disconnected] boom"

    def test_location_with_line(self):
        assert str(Location(file="x.py", line=12)) == "x.py:12"

    def test_to_dict_round_trips_through_json(self):
        diag = make(location=Location(file="a.json", line=3))
        data = json.loads(json.dumps(diag.to_dict()))
        assert data["rule"] == "graph-disconnected"
        assert data["severity"] == "error"
        assert data["line"] == 3


class TestRegistry:
    def test_rules_are_registered_by_category(self):
        categories = {rule.category for rule in registry}
        assert {"graph", "circuit", "rc", "source"} <= categories

    def test_get_unknown_rule(self):
        with pytest.raises(KeyError, match="unknown rule"):
            registry.get("no-such-rule")

    def test_every_rule_documents_itself(self):
        for rule in registry:
            assert rule.summary, rule.id
            assert rule.rationale, rule.id
            assert rule.id == rule.id.lower()

    def test_disable_filters_rule(self, line_net):
        from repro.graph.routing_graph import RoutingGraph

        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        config = LintConfig(disabled=frozenset(
            {"graph-disconnected", "graph-nonspanning"}))
        diags = registry.run("graph", graph, config)
        assert not any(d.rule in config.disabled for d in diags)

    def test_severity_override_applied(self, line_net):
        from repro.graph.routing_graph import RoutingGraph

        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        config = LintConfig(severity_overrides={
            "graph-disconnected": Severity.INFO})
        diags = registry.run("graph", graph, config)
        by_rule = {d.rule: d for d in diags}
        assert by_rule["graph-disconnected"].severity is Severity.INFO
        assert by_rule["graph-nonspanning"].severity is Severity.ERROR

    def test_run_sorts_most_severe_first(self, line_net):
        from repro.graph.routing_graph import RoutingGraph

        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        config = LintConfig(severity_overrides={
            "graph-disconnected": Severity.INFO})
        diags = registry.run("graph", graph, config)
        severities = [d.severity for d in diags]
        assert severities == sorted(severities, reverse=True)


class TestLintConfig:
    def test_from_options(self):
        config = LintConfig.from_options(
            disable=["graph-excess-cycles"],
            severity=["graph-zero-length-edge=error"])
        assert not config.enabled("graph-excess-cycles")
        assert config.severity_overrides[
            "graph-zero-length-edge"] is Severity.ERROR

    def test_from_options_rejects_unknown_rule(self):
        with pytest.raises(ValueError, match="unknown rule"):
            LintConfig.from_options(disable=["bogus-rule"])

    def test_from_options_rejects_bad_override(self):
        with pytest.raises(ValueError, match="expected rule=level"):
            LintConfig.from_options(severity=["graph-disconnected"])


class TestHelpers:
    def test_has_errors(self):
        assert has_errors([make()])
        assert not has_errors([make(severity=Severity.WARNING)])
        assert not has_errors([])

    def test_max_severity(self):
        assert max_severity([]) is None
        assert max_severity([make(severity=Severity.INFO),
                             make(severity=Severity.WARNING)]) \
            is Severity.WARNING


class TestReporters:
    def test_summarize(self):
        counts = summarize([make(), make(severity=Severity.WARNING)])
        assert counts == {"error": 1, "warning": 1, "info": 0}

    def test_render_text_clean(self):
        assert "clean" in render_text([])

    def test_render_text_counts(self):
        text = render_text([make(), make(severity=Severity.INFO)])
        assert "2 diagnostic(s)" in text
        assert "1 error(s)" in text

    def test_render_json_parses(self):
        report = json.loads(render_json([make()]))
        assert report["summary"]["error"] == 1
        assert report["diagnostics"][0]["rule"] == "graph-disconnected"
