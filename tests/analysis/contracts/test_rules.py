"""The contracts rule pack against seeded negative fixtures.

Each test plants exactly the defect the rule exists for in a fixture
tree shaped like the real repo, and asserts the rule (and only the
expected rule) fires — or stays quiet on the compliant variant.
"""

from pathlib import Path

import repro
from repro.analysis.diagnostics import Severity
from repro.analysis.contracts import ContractOptions, analyze_contracts

#: Options pointing the analyzer at fixture conventions.
FIXTURE_OPTIONS = ContractOptions(
    guarded_prefixes=("repro.delay", "repro.guard", "repro.circuit"),
    pool_wrappers=("repro.runtime.pool.run_all",),
    worker_entries=("repro.runtime.execute.run_trial",),
    cli_entries=("repro.cli.main",),
)


def run(tree, options=FIXTURE_OPTIONS, config=None):
    return analyze_contracts([tree.root], config=config, options=options)


def fired(diags):
    return {d.rule for d in diags}


class TestExceptionEscape:
    def test_raw_linalgerror_escaping_guarded_public_fn_fires(self, tree):
        tree.write("delay/solve.py", """
            import numpy as np

            def elmore(G, rhs):
                return np.linalg.solve(G, rhs)
        """)
        diags = run(tree)
        assert fired(diags) == {"contracts-exception-escape"}
        assert "guarded numeric boundary repro.delay.solve.elmore" \
            in diags[0].message

    def test_guarded_private_fn_is_quiet(self, tree):
        tree.write("delay/solve.py", """
            import numpy as np

            def _kernel(G, rhs):
                return np.linalg.solve(G, rhs)
        """)
        assert fired(run(tree)) == set()

    def test_converted_incident_is_quiet(self, tree):
        tree.write("guard/incidents.py", """
            class NumericalIncident(Exception):
                pass
        """)
        tree.write("delay/solve.py", """
            import numpy as np

            from repro.guard.incidents import NumericalIncident

            def elmore(G, rhs):
                try:
                    return np.linalg.solve(G, rhs)
                except np.linalg.LinAlgError:
                    raise NumericalIncident("singular conductance system")
        """)
        assert fired(run(tree)) == set()

    def test_raw_linalgerror_escaping_pool_trial_fn_fires(self, tree):
        tree.write("runtime/execute.py", """
            import numpy as np

            def run_trial(spec):
                return float(np.linalg.solve(spec.G, spec.rhs)[0])
        """)
        diags = run(tree)
        assert fired(diags) == {"contracts-exception-escape"}
        assert "pool trial function repro.runtime.execute.run_trial" \
            in diags[0].message

    def test_pool_wrapper_leaking_non_io_exception_fires(self, tree):
        tree.write("runtime/pool.py", """
            def run_all(tasks):
                if not tasks:
                    raise RuntimeError("no tasks")
                return [t() for t in tasks]
        """)
        diags = run(tree)
        assert fired(diags) == {"contracts-exception-escape"}
        assert "pool wrapper repro.runtime.pool.run_all" in diags[0].message

    def test_pool_wrapper_may_surface_oserror(self, tree):
        tree.write("runtime/pool.py", """
            def run_all(tasks, journal):
                raise BrokenPipeError(journal)
        """)
        assert fired(run(tree)) == set()

    def test_unmapped_cli_escape_fires(self, tree):
        tree.write("cli.py", """
            def _cmd_route(args):
                raise ValueError(args)

            def main(args):
                handler = {"route": _cmd_route}[args.command]
                return handler(args)
        """)
        diags = run(tree)
        assert fired(diags) == {"contracts-exception-escape"}
        assert "CLI entry point repro.cli.main" in diags[0].message

    def test_cli_catch_ladder_is_quiet(self, tree):
        tree.write("cli.py", """
            import sys

            def _cmd_route(args):
                raise ValueError(args)

            def main(args):
                try:
                    handler = {"route": _cmd_route}[args.command]
                    return handler(args)
                except (KeyError, ValueError) as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
        """)
        assert fired(run(tree)) == set()

    def test_cli_may_exit(self, tree):
        tree.write("cli.py", """
            def main(args):
                raise SystemExit(2)
        """)
        assert fired(run(tree)) == set()

    def test_waiver_on_the_origin_site_suppresses(self, tree):
        tree.write("delay/solve.py", """
            import numpy as np

            def elmore(G, rhs):
                return np.linalg.solve(G, rhs)  # repro: allow=contracts-exception-escape
        """)
        assert fired(run(tree)) == set()


class TestBroadCatchSwallow:
    def test_silent_pass_fires(self, tree):
        tree.write("runtime/cleanup.py", """
            def remove(path):
                try:
                    path.unlink()
                except Exception:
                    pass
        """)
        diags = run(tree)
        assert fired(diags) == {"contracts-broad-catch-swallow"}
        assert "except Exception" in diags[0].message

    def test_constant_return_is_a_swallow(self, tree):
        tree.write("runtime/cleanup.py", """
            def probe(path):
                try:
                    return path.stat().st_size
                except OSError:
                    return None
        """)
        assert fired(run(tree)) == {"contracts-broad-catch-swallow"}

    def test_os_exit_is_a_swallow(self, tree):
        tree.write("runtime/workerish.py", """
            import os

            def run(conn):
                try:
                    conn.send(1)
                except Exception:
                    os._exit(1)
        """)
        assert fired(run(tree)) == {"contracts-broad-catch-swallow"}

    def test_recording_before_suppressing_is_quiet(self, tree):
        tree.write("runtime/cleanup.py", """
            import sys

            def remove(path):
                try:
                    path.unlink()
                except OSError as exc:
                    print(f"cleanup failed: {exc}", file=sys.stderr)
        """)
        assert fired(run(tree)) == set()

    def test_justified_waiver_suppresses(self, tree):
        tree.write("runtime/cleanup.py", """
            def remove(path):
                try:
                    path.unlink()
                except OSError:  # repro: allow=contracts-broad-catch-swallow — best-effort cleanup
                    pass
        """)
        assert fired(run(tree)) == set()


class TestUndeclaredRaise:
    def test_escape_outside_the_declaration_fires(self, tree):
        tree.write("runtime/journalish.py", """
            from repro.contracts import boundary

            @boundary(raises=(OSError,))
            def write_record(path, text):
                if not text:
                    raise ValueError("empty record")
                path.write_text(text)
        """)
        diags = run(tree)
        assert fired(diags) == {"contracts-undeclared-raise"}
        assert "declares raises=(OSError)" in diags[0].message
        assert "ValueError" in diags[0].message

    def test_declared_base_covers_subtype(self, tree):
        tree.write("core/errors.py", """
            class GridError(ValueError):
                pass
        """)
        tree.write("runtime/journalish.py", """
            from repro.contracts import boundary
            from repro.core.errors import GridError

            @boundary(raises=(ValueError,))
            def parse(text):
                raise GridError(text)
        """)
        assert fired(run(tree)) == set()

    def test_exact_declaration_is_quiet(self, tree):
        tree.write("runtime/journalish.py", """
            from repro.contracts import boundary

            @boundary(raises=(OSError,))
            def write_record(path, text):
                path.write_text(text)
        """)
        assert fired(run(tree)) == set()

    def test_waiver_on_the_def_line_suppresses(self, tree):
        tree.write("runtime/journalish.py", """
            from repro.contracts import boundary

            @boundary(raises=(OSError,))
            def write_record(path, text):  # repro: allow=contracts-undeclared-raise
                raise ValueError(text)
        """)
        assert fired(run(tree)) == set()


class TestResourceLeak:
    def test_fd_leaked_on_early_return_fires(self, tree):
        tree.write("io/reader.py", """
            import os

            def head(path):
                fd = os.open(path, os.O_RDONLY)
                data = os.read(fd, 16)
                if not data:
                    return None
                os.close(fd)
                return data
        """)
        diags = run(tree)
        assert fired(diags) == {"contracts-resource-leak"}
        assert "file descriptor 'fd'" in diags[0].message

    def test_try_finally_is_quiet(self, tree):
        tree.write("io/reader.py", """
            import os

            def head(path):
                fd = os.open(path, os.O_RDONLY)
                try:
                    return os.read(fd, 16)
                finally:
                    os.close(fd)
        """)
        assert fired(run(tree)) == set()

    def test_waiver_on_the_acquisition_suppresses(self, tree):
        tree.write("io/reader.py", """
            import os

            def head(path):
                fd = os.open(path, os.O_RDONLY)  # repro: allow=contracts-resource-leak
                data = os.read(fd, 16)
                if not data:
                    return None
                os.close(fd)
                return data
        """)
        assert fired(run(tree)) == set()


class TestUnboundedGrowth:
    def test_module_cache_with_no_bound_fires(self, tree):
        tree.write("delay/memoish.py", """
            _SCORES = {}

            def score(key, compute):
                if key not in _SCORES:
                    _SCORES[key] = compute(key)
                return _SCORES[key]
        """)
        diags = run(tree)
        assert fired(diags) == {"contracts-unbounded-growth"}
        assert "'_SCORES'" in diags[0].message

    def test_bounded_lru_is_quiet(self, tree):
        tree.write("delay/memoish.py", """
            _SCORES = {}

            def score(key, compute):
                if key not in _SCORES:
                    _SCORES[key] = compute(key)
                    while len(_SCORES) > 64:
                        _SCORES.popitem()
                return _SCORES[key]
        """)
        assert fired(run(tree)) == set()

    def test_cache_class_growth_without_eviction_fires(self, tree):
        tree.write("delay/memoish.py", """
            class ScoreCache:
                def __init__(self):
                    self._store = {}

                def put(self, key, value):
                    self._store[key] = value
        """)
        diags = run(tree)
        assert fired(diags) == {"contracts-unbounded-growth"}
        assert "ScoreCache._store" in diags[0].message

    def test_waiver_suppresses(self, tree):
        tree.write("delay/memoish.py", """
            _SCORES = {}  # repro: allow=contracts-unbounded-growth — bounded by grid size

            def score(key, compute):
                _SCORES[key] = compute(key)
                return _SCORES[key]
        """)
        assert fired(run(tree)) == set()


class TestWaiverAudit:
    def test_stale_contracts_waiver_warns(self, tree):
        tree.write("core/clean.py", """
            def route(net):  # repro: allow=contracts-resource-leak
                return net
        """)
        diags = run(tree)
        assert fired(diags) == {"contracts-unused-waiver"}
        assert diags[0].severity is Severity.WARNING

    def test_consumed_waiver_is_not_audited(self, tree):
        tree.write("runtime/cleanup.py", """
            def remove(path):
                try:
                    path.unlink()
                except OSError:  # repro: allow=contracts-broad-catch-swallow — best-effort
                    pass
        """)
        assert fired(run(tree)) == set()

    def test_other_category_waivers_are_not_this_passes_business(self, tree):
        tree.write("core/algo.py", """
            import random

            def route(net):
                return random.random()  # repro: allow=dataflow-unseeded-rng
        """)
        assert fired(run(tree)) == set()


class TestRepoIsClean:
    def test_contracts_pass_is_clean_on_the_real_tree(self):
        src = Path(repro.__file__).resolve().parent
        diags = analyze_contracts([src])
        assert diags == [], "\n".join(d.render() for d in diags)
