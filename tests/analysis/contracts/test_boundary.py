"""The runtime boundary declaration registry (``repro.contracts``)."""

import pytest

from repro.contracts import (
    ExceptionContract,
    boundary,
    contract_for,
    declared_contracts,
)
from repro.guard.incidents import NumericalIncident


class TestBoundaryDecorator:
    def test_returns_the_function_unchanged(self):
        def probe():
            return 42

        decorated = boundary(raises=(ValueError,))(probe)
        assert decorated is probe

    def test_registers_a_contract(self):
        @boundary(raises=(OSError, ValueError))
        def probe():
            pass

        contract = contract_for(probe)
        assert contract is not None
        assert contract.raises == (OSError, ValueError)
        assert contract.qualname.endswith("probe")

    def test_single_type_is_normalized_to_a_tuple(self):
        @boundary(raises=OSError)
        def probe():
            pass

        assert contract_for(probe).raises == (OSError,)

    def test_non_exception_type_is_rejected(self):
        with pytest.raises(TypeError):
            boundary(raises=(int,))
        with pytest.raises(TypeError):
            boundary(raises=("OSError",))


class TestExceptionContract:
    def test_covers_declared_type_and_subtypes(self):
        contract = ExceptionContract("m.f", (OSError,))
        assert contract.covers(OSError)
        assert contract.covers(FileNotFoundError)
        assert not contract.covers(ValueError)

    def test_total_boundary_covers_nothing(self):
        contract = ExceptionContract("m.f", ())
        assert not contract.covers(Exception)


class TestRepoDeclarations:
    def test_guarded_solve_declares_its_incident_surface(self):
        import repro.guard.numerics  # noqa: F401  (registers on import)

        contracts = declared_contracts()
        decl = contracts["repro.guard.numerics.guarded_solve"]
        assert decl.covers(NumericalIncident)
        assert decl.covers(ValueError)

    def test_atomic_write_declares_oserror(self):
        import repro.runtime.journal  # noqa: F401

        decl = declared_contracts()["repro.runtime.journal.atomic_write_text"]
        assert decl.covers(OSError)
        assert not decl.covers(ValueError)
