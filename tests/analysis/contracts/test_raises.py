"""The whole-program may-raise fixpoint on seeded fixture trees."""

from repro.analysis.dataflow.callgraph import CallGraph, build_project
from repro.analysis.contracts import analyze_raises


def escapes(tree, qualname, **kwargs):
    project = build_project([tree.root])
    graph = CallGraph(project)
    analysis = analyze_raises(project, graph, **kwargs)
    return set(analysis.of(qualname))


class TestExplicitRaises:
    def test_raise_escapes_the_raising_function(self, tree):
        tree.write("core/algo.py", """
            def route(net):
                if not net:
                    raise ValueError("empty net")
                return net
        """)
        assert escapes(tree, "repro.core.algo.route") == {"ValueError"}

    def test_raise_propagates_through_the_call_chain(self, tree):
        tree.write("core/algo.py", """
            def _inner(net):
                raise KeyError(net)

            def _middle(net):
                return _inner(net)

            def route(net):
                return _middle(net)
        """)
        assert escapes(tree, "repro.core.algo.route") == {"KeyError"}

    def test_catching_handler_stops_propagation(self, tree):
        tree.write("core/algo.py", """
            def _inner(net):
                raise KeyError(net)

            def route(net):
                try:
                    return _inner(net)
                except KeyError:
                    return None
        """)
        assert escapes(tree, "repro.core.algo.route") == set()

    def test_base_class_handler_catches_subtype(self, tree):
        tree.write("core/algo.py", """
            def _inner(net):
                raise KeyError(net)

            def route(net):
                try:
                    return _inner(net)
                except LookupError:
                    return None
        """)
        assert escapes(tree, "repro.core.algo.route") == set()

    def test_bare_reraise_keeps_the_escape(self, tree):
        tree.write("core/algo.py", """
            def route(net):
                try:
                    raise ValueError(net)
                except ValueError:
                    raise
        """)
        assert escapes(tree, "repro.core.algo.route") == {"ValueError"}

    def test_project_exception_hierarchy_is_resolved(self, tree):
        tree.write("core/errors.py", """
            class GridError(ValueError):
                pass
        """)
        tree.write("core/algo.py", """
            from repro.core.errors import GridError

            def _parse(text):
                raise GridError(text)

            def route(text):
                try:
                    return _parse(text)
                except ValueError:
                    return None
        """)
        assert escapes(tree, "repro.core.algo.route") == set()

    def test_raise_inside_unmatched_handler_escapes(self, tree):
        tree.write("core/algo.py", """
            def route(net):
                try:
                    raise OSError(net)
                except ValueError:
                    return None
        """)
        assert escapes(tree, "repro.core.algo.route") == {"OSError"}


class TestIntrinsicRaisers:
    def test_numpy_solve_raises_linalgerror(self, tree):
        tree.write("delay/solve.py", """
            import numpy as np

            def elmore(G, rhs):
                return np.linalg.solve(G, rhs)
        """)
        assert escapes(tree, "repro.delay.solve.elmore") == {
            "numpy.linalg.LinAlgError"}

    def test_open_raises_oserror(self, tree):
        tree.write("io/loader.py", """
            def load(path):
                with open(path) as handle:
                    return handle.read()
        """)
        assert escapes(tree, "repro.io.loader.load") == {"OSError"}

    def test_json_loads_decode_error_is_a_valueerror(self, tree):
        tree.write("io/loader.py", """
            import json

            def load(text):
                try:
                    return json.loads(text)
                except ValueError:
                    return None
        """)
        assert escapes(tree, "repro.io.loader.load") == set()

    def test_caught_linalgerror_does_not_escape(self, tree):
        tree.write("delay/solve.py", """
            import numpy as np

            def elmore(G, rhs):
                try:
                    return np.linalg.solve(G, rhs)
                except np.linalg.LinAlgError:
                    return None
        """)
        assert escapes(tree, "repro.delay.solve.elmore") == set()

    def test_subscripts_are_tracked_only_on_request(self, tree):
        tree.write("core/algo.py", """
            def route(table, key):
                return table[key]
        """)
        assert escapes(tree, "repro.core.algo.route") == set()
        assert escapes(tree, "repro.core.algo.route",
                       track_subscripts=True) == {"LookupError"}


class TestDispatchTables:
    def test_local_dispatch_table_pulls_callee_escapes(self, tree):
        tree.write("cli.py", """
            def _cmd_route(args):
                raise ValueError(args)

            def _cmd_report(args):
                return 0

            def main(args):
                handler = {
                    "route": _cmd_route,
                    "report": _cmd_report,
                }[args.command]
                return handler(args)
        """)
        assert escapes(tree, "repro.cli.main") == {"ValueError"}

    def test_inline_dispatch_subscript_call(self, tree):
        tree.write("cli.py", """
            def _cmd_route(args):
                raise KeyError(args)

            def main(args):
                return {"route": _cmd_route}[args.command](args)
        """)
        assert escapes(tree, "repro.cli.main") == {"KeyError"}
