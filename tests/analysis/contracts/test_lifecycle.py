"""CFG resource-leak tracking and container-growth detection, unit level."""

import ast
import textwrap

from repro.analysis.contracts import (
    find_resource_leaks,
    find_unbounded_cache_attrs,
    find_unbounded_globals,
)


def parse(code):
    return ast.parse(textwrap.dedent(code))


def leaks_in(code):
    module = parse(code)
    fn = next(node for node in module.body
              if isinstance(node, ast.FunctionDef))
    return find_resource_leaks(fn)


class TestResourceLeaks:
    def test_fd_leaked_on_early_return_fires(self, tmp_path):
        leaks = leaks_in("""
            import os

            def head(path):
                fd = os.open(path, os.O_RDONLY)
                data = os.read(fd, 16)
                if not data:
                    return None
                os.close(fd)
                return data
        """)
        assert [(leak.variable, leak.resource) for leak in leaks] == [
            ("fd", "file descriptor")]

    def test_close_on_every_path_is_quiet(self):
        assert leaks_in("""
            import os

            def head(path):
                fd = os.open(path, os.O_RDONLY)
                data = os.read(fd, 16)
                if not data:
                    os.close(fd)
                    return None
                os.close(fd)
                return data
        """) == []

    def test_with_block_is_quiet(self):
        assert leaks_in("""
            def head(path):
                with open(path) as handle:
                    return handle.read(16)
        """) == []

    def test_try_finally_release_is_quiet(self):
        assert leaks_in("""
            import os

            def head(path):
                fd = os.open(path, os.O_RDONLY)
                try:
                    return os.read(fd, 16)
                finally:
                    os.close(fd)
        """) == []

    def test_raise_between_acquire_and_close_fires(self):
        leaks = leaks_in("""
            def copy(path, n):
                handle = open(path)
                if n < 0:
                    raise ValueError(n)
                handle.close()
                return n
        """)
        assert [leak.variable for leak in leaks] == ["handle"]

    def test_returning_the_handle_transfers_ownership(self):
        assert leaks_in("""
            def acquire(path):
                handle = open(path)
                return handle
        """) == []

    def test_storing_on_self_transfers_ownership(self):
        module = parse("""
            class Holder:
                def acquire(self, path):
                    handle = open(path)
                    self.handle = handle
        """)
        fn = module.body[0].body[0]
        assert find_resource_leaks(fn) == []

    def test_popen_without_wait_fires(self):
        leaks = leaks_in("""
            import subprocess

            def launch(cmd):
                proc = subprocess.Popen(cmd)
                return proc.pid
        """)
        assert [leak.resource for leak in leaks] == ["child process"]

    def test_popen_communicate_is_quiet(self):
        assert leaks_in("""
            import subprocess

            def launch(cmd):
                proc = subprocess.Popen(cmd)
                out, err = proc.communicate()
                return out
        """) == []

    def test_pipe_pair_tracks_both_ends(self):
        leaks = leaks_in("""
            from multiprocessing import Pipe

            def make():
                parent, child = Pipe()
                parent.close()
                return 1
        """)
        assert [leak.variable for leak in leaks] == ["child"]

    def test_mkstemp_tracks_only_the_fd(self):
        assert leaks_in("""
            import os
            import tempfile

            def scratch():
                fd, path = tempfile.mkstemp()
                os.close(fd)
                return path
        """) == []

    def test_acquisition_own_failure_is_not_a_leak(self):
        # The os.open itself raising jumps to the handler before the fd
        # exists; only post-acquisition exception paths can leak it.
        assert leaks_in("""
            import os

            def probe(path):
                try:
                    fd = os.open(path, os.O_RDONLY)
                except OSError:
                    return None
                os.close(fd)
                return True
        """) == []


class TestUnboundedGlobals:
    def test_module_dict_grown_in_function_fires(self):
        sites = find_unbounded_globals(parse("""
            _CACHE = {}

            def lookup(key, compute):
                if key not in _CACHE:
                    _CACHE[key] = compute(key)
                return _CACHE[key]
        """))
        assert [site.owner for site in sites] == ["_CACHE"]

    def test_annotated_assignment_is_a_candidate(self):
        sites = find_unbounded_globals(parse("""
            _CACHE: dict[str, int] = {}

            def put(key, value):
                _CACHE[key] = value
        """))
        assert [site.owner for site in sites] == ["_CACHE"]

    def test_shrink_anywhere_in_module_is_safe(self):
        assert find_unbounded_globals(parse("""
            _CACHE = {}

            def put(key, value):
                _CACHE[key] = value
                if len(_CACHE) > 64:
                    _CACHE.popitem()
        """)) == []

    def test_deque_with_maxlen_is_bounded(self):
        assert find_unbounded_globals(parse("""
            from collections import deque

            _RECENT = deque(maxlen=32)

            def note(event):
                _RECENT.append(event)
        """)) == []

    def test_growth_only_at_import_time_is_safe(self):
        assert find_unbounded_globals(parse("""
            _TABLE = {}
            for k in range(4):
                _TABLE[k] = k * k

            def lookup(key):
                return _TABLE[key]
        """)) == []

    def test_scalar_counter_augassign_is_not_growth(self):
        assert find_unbounded_globals(parse("""
            _COUNT = {}

            def lookup(key):
                return _COUNT.get(key)
        """)) == []


class TestUnboundedCacheAttrs:
    def test_cache_class_growing_without_eviction_fires(self):
        sites = find_unbounded_cache_attrs(parse("""
            class DelayCache:
                def __init__(self):
                    self._store = {}

                def put(self, key, value):
                    self._store[key] = value
        """), markers=("Memo", "Cache"))
        assert [site.owner for site in sites] == ["DelayCache._store"]

    def test_lru_eviction_is_safe(self):
        assert find_unbounded_cache_attrs(parse("""
            class DelayMemo:
                def __init__(self, capacity):
                    self.capacity = capacity
                    self._store = {}

                def put(self, key, value):
                    self._store[key] = value
                    while len(self._store) > self.capacity:
                        self._store.popitem()
        """), markers=("Memo", "Cache")) == []

    def test_unmarked_class_is_ignored(self):
        assert find_unbounded_cache_attrs(parse("""
            class Builder:
                def __init__(self):
                    self._parts = []

                def add(self, part):
                    self._parts.append(part)
        """), markers=("Memo", "Cache")) == []
