"""Unit tests for the durability-ordering machinery: WAL seeds, call
closures, and the CFG reply-ordering checks."""

from repro.analysis.interlock import build_interlock_model

WAL_MODULE = """
    import os

    class RequestWAL:
        def __init__(self, fd):
            self.fd = fd

        def admit(self, frame):
            os.write(self.fd, frame)
            os.fsync(self.fd)
            return 1

        def done(self, seq, status):
            os.write(self.fd, b"done")
            os.fsync(self.fd)
    """


def model_for(tree):
    return build_interlock_model([tree.root])


class TestClosures:
    def test_wal_marked_class_seeds_admit_and_done(self, tree):
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def _wal_admit(self, frame):
                    return self.wal.admit(frame)

                def handle(self, frame):
                    return self._wal_admit(frame)
            """)
        model = model_for(tree)
        assert "repro.service.wal.RequestWAL.admit" in model.admit_closure
        # callers of admit are in the closure, transitively
        assert ("repro.service.daemon.Daemon._wal_admit"
                in model.admit_closure)
        assert "repro.service.daemon.Daemon.handle" in model.admit_closure
        assert ("repro.service.daemon.Daemon.handle"
                not in model.done_closure)

    def test_durable_closure_crosses_spawn_edges(self, tree):
        tree.write("service/daemon.py", """
            import os
            import threading

            class Daemon:
                def start(self):
                    worker = threading.Thread(target=self._writer)
                    worker.start()

                def _writer(self):
                    os.fsync(0)
            """)
        model = model_for(tree)
        # the spawner *causes* the durable write even though it never
        # calls the body
        assert "repro.service.daemon.Daemon.start" in model.durable_closure
        assert ("repro.service.daemon.Daemon._writer"
                in model.durable_closure)

    def test_unmarked_class_is_not_a_wal(self, tree):
        tree.write("service/store.py", """
            import os

            class Ledger:
                def admit(self, frame):
                    os.fsync(0)
            """)
        model = model_for(tree)
        assert model.admit_closure == set()


class TestReplyOrdering:
    def test_reply_before_admit_is_reported_once(self, tree):
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def handle(self, frame, reply):
                    reply({"status": "ok"})
                    self.wal.admit(frame)
            """)
        model = model_for(tree)
        kinds = [issue.kind for issue in model.reply_issues]
        assert kinds == ["reply-before-admit"]

    def test_exception_path_around_the_admit_counts(self, tree):
        # Replying in an except handler that skips the admit is still a
        # reply the journal never heard about — the exception successor
        # edges must be traversed.
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def handle(self, frame, reply):
                    try:
                        payload = dict(frame)
                        reply({"status": "ok", "echo": payload})
                    finally:
                        self.wal.admit(frame)
            """)
        model = model_for(tree)
        assert [issue.kind for issue in model.reply_issues] == [
            "reply-before-admit"]

    def test_admit_first_has_no_issues(self, tree):
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def handle(self, frame, reply):
                    seq = self.wal.admit(frame)
                    reply({"status": "ok", "seq": seq})
            """)
        model = model_for(tree)
        assert model.reply_issues == []

    def test_loop_back_edge_does_not_connect_requests(self, tree):
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def read_loop(self, frames, reply):
                    while True:
                        frame = frames.pop()
                        if frame is None:
                            break
                        if not frame:
                            reply({"status": "error"})
                            continue
                        self.wal.admit(frame)
                        reply({"status": "ok"})
            """)
        model = model_for(tree)
        assert model.reply_issues == []

    def test_reply_without_done_flags_the_bare_branch(self, tree):
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def deliver(self, ok, reply):
                    if ok:
                        reply({"status": "ok"})
                        self.wal.done(1, "ok")
                    else:
                        reply({"status": "error"})
            """)
        model = model_for(tree)
        assert [issue.kind for issue in model.reply_issues] == [
            "reply-without-done"]

    def test_shared_done_tail_satisfies_both_branches(self, tree):
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def deliver(self, ok, reply):
                    if ok:
                        reply({"status": "ok"})
                    else:
                        reply({"status": "error"})
                    self.wal.done(1, "ok")
            """)
        model = model_for(tree)
        assert model.reply_issues == []
