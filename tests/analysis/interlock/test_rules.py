"""Seeded fixtures: every interlock rule fires on its violation and
stays quiet on the disciplined variant."""

from repro.analysis.interlock import InterlockOptions, analyze_interlock

FIXTURE_OPTIONS = InterlockOptions()


def run(tree, options=FIXTURE_OPTIONS, config=None):
    return analyze_interlock([tree.root], config=config, options=options)


def fired(diags):
    return {d.rule for d in diags}


class TestUnguardedSharedField:
    def test_field_written_across_roots_without_lock_fires(self, tree):
        tree.write("service/daemon.py", """
            import threading

            class Daemon:
                def __init__(self):
                    self.count = 0
                    self._lock = threading.Lock()

                def start(self):
                    worker = threading.Thread(target=self._loop)
                    worker.start()

                def _loop(self):
                    self.count += 1

                def snapshot(self):
                    return {"count": self.count}
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-unguarded-shared-field"}
        assert "Daemon.count" in diags[0].message
        assert "thread:Daemon._loop" in diags[0].message

    def test_consistent_lock_on_every_site_is_quiet(self, tree):
        tree.write("service/daemon.py", """
            import threading

            class Daemon:
                def __init__(self):
                    self.count = 0
                    self._lock = threading.Lock()

                def start(self):
                    worker = threading.Thread(target=self._loop)
                    worker.start()

                def _loop(self):
                    with self._lock:
                        self.count += 1

                def snapshot(self):
                    with self._lock:
                        return {"count": self.count}
            """)
        assert run(tree) == []

    def test_single_root_field_is_quiet(self, tree):
        tree.write("service/daemon.py", """
            class Daemon:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1

                def snapshot(self):
                    return {"count": self.count}
            """)
        assert run(tree) == []

    def test_sync_primitive_fields_are_exempt(self, tree):
        tree.write("service/daemon.py", """
            import queue
            import threading

            class Daemon:
                def __init__(self):
                    self.inbox = queue.Queue()
                    self.stop = threading.Event()

                def start(self):
                    worker = threading.Thread(target=self._loop)
                    worker.start()

                def _loop(self):
                    self.inbox.put(1)
                    self.stop.set()

                def offer(self, item):
                    self.inbox.put(item)
            """)
        assert run(tree) == []


class TestLockOrder:
    def test_opposite_acquisition_orders_fire(self, tree):
        tree.write("service/daemon.py", """
            import threading

            class Daemon:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-lock-order"}
        assert "Daemon._a" in diags[0].message
        assert "Daemon._b" in diags[0].message

    def test_cycle_through_a_callee_fires(self, tree):
        tree.write("service/daemon.py", """
            import threading

            class Daemon:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def outer(self):
                    with self._a:
                        self._grab_b()

                def _grab_b(self):
                    with self._b:
                        pass

                def other(self):
                    with self._b:
                        with self._a:
                            pass
            """)
        assert fired(run(tree)) == {"interlock-lock-order"}

    def test_consistent_global_order_is_quiet(self, tree):
        tree.write("service/daemon.py", """
            import threading

            class Daemon:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def also_forward(self):
                    with self._a:
                        with self._b:
                            pass
            """)
        assert run(tree) == []


class TestBlockingUnderLock:
    def test_fsync_inside_critical_section_fires(self, tree):
        tree.write("service/log.py", """
            import os
            import threading

            class Appender:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.fd = 0

                def flush(self):
                    with self._lock:
                        os.fsync(self.fd)
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-blocking-under-lock"}
        assert "os.fsync" in diags[0].message

    def test_transitive_blocking_callee_fires_at_the_call(self, tree):
        tree.write("service/log.py", """
            import time
            import threading

            class Appender:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self):
                    with self._lock:
                        self._settle()

                def _settle(self):
                    time.sleep(0.1)
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-blocking-under-lock"}
        assert "_settle" in diags[0].message

    def test_blocking_outside_the_lock_is_quiet(self, tree):
        tree.write("service/log.py", """
            import os
            import threading

            class Appender:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.fd = 0
                    self.pending = 0

                def flush(self):
                    with self._lock:
                        self.pending = 0
                    os.fsync(self.fd)
            """)
        assert run(tree) == []

    def test_condition_wait_on_its_own_lock_is_quiet(self, tree):
        tree.write("service/queue_.py", """
            import threading

            class Mailbox:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)

                def take(self):
                    with self._ready:
                        self._ready.wait()
            """)
        assert run(tree) == []

    def test_condition_wait_holding_a_foreign_lock_fires(self, tree):
        tree.write("service/queue_.py", """
            import threading

            class Mailbox:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self._other = threading.Lock()

                def take(self):
                    with self._other:
                        with self._ready:
                            self._ready.wait()
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-blocking-under-lock"}
        assert "Mailbox._other" in diags[0].message


class TestSignalHandlerUnsafe:
    def test_handler_acquiring_a_lock_fires(self, tree):
        tree.write("service/daemon.py", """
            import signal
            import threading

            class Daemon:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.stop = threading.Event()

                def install(self):
                    signal.signal(signal.SIGTERM, self._on_term)

                def _on_term(self, signum, frame):
                    with self._lock:
                        self.stop.set()
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-signal-handler-unsafe"}
        assert "acquires Daemon._lock" in diags[0].message

    def test_nested_handler_doing_io_fires(self, tree):
        tree.write("service/daemon.py", """
            import signal

            def install(flag_path):
                def _on_term(signum, frame):
                    open(flag_path, "w")
                signal.signal(signal.SIGTERM, _on_term)
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-signal-handler-unsafe"}
        assert "open" in diags[0].message

    def test_event_set_only_handler_is_quiet(self, tree):
        tree.write("service/daemon.py", """
            import signal
            import threading

            class Daemon:
                def __init__(self):
                    self.stop = threading.Event()

                def install(self):
                    signal.signal(signal.SIGTERM, self._on_term)

                def _on_term(self, signum, frame):
                    self.stop.set()
            """)
        assert run(tree) == []


WAL_MODULE = """
    import os

    class RequestWAL:
        def __init__(self, fd):
            self.fd = fd

        def admit(self, frame):
            os.write(self.fd, frame)
            os.fsync(self.fd)
            return 1

        def done(self, seq, status):
            os.write(self.fd, b"done")
            os.fsync(self.fd)
    """


class TestReplyBeforeFsync:
    def test_reply_preceding_the_admit_append_fires(self, tree):
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def handle(self, frame, reply):
                    reply({"status": "ok"})
                    self.wal.admit(frame)
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-reply-before-fsync"}
        assert "before the WAL admit" in diags[0].message

    def test_admit_dominating_the_reply_is_quiet(self, tree):
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def handle(self, frame, reply):
                    seq = self.wal.admit(frame)
                    reply({"status": "ok", "seq": seq})
            """)
        assert run(tree) == []

    def test_reply_that_cannot_reach_done_fires(self, tree):
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def deliver(self, ok, reply):
                    if ok:
                        reply({"status": "ok"})
                        self.wal.done(1, "ok")
                    else:
                        reply({"status": "error"})
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-reply-before-fsync"}
        assert "cannot reach a WAL done" in diags[0].message
        assert len(diags) == 1  # only the else-branch reply

    def test_next_iterations_admit_is_not_this_reply(self, tree):
        # The reader-loop shape: each iteration replies for *its own*
        # request; the admit reachable only via the loop back edge
        # belongs to the next request and must not fire.
        tree.write("service/wal.py", WAL_MODULE)
        tree.write("service/daemon.py", """
            from repro.service.wal import RequestWAL

            class Daemon:
                def __init__(self):
                    self.wal = RequestWAL(0)

                def read_loop(self, frames, reply):
                    for frame in frames:
                        if not frame:
                            reply({"status": "error"})
                            continue
                        self.wal.admit(frame)
                        reply({"status": "ok"})
            """)
        assert run(tree) == []


class TestNonatomicDurableWrite:
    def test_ad_hoc_replace_fires(self, tree):
        tree.write("service/state.py", """
            import os

            def save(path, text):
                with open(path + ".tmp", "w") as fh:
                    fh.write(text)
                os.replace(path + ".tmp", path)
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-nonatomic-durable-write"}
        assert "os.replace" in diags[0].message

    def test_blessed_atomic_write_helper_is_exempt(self, tree):
        tree.write("runtime/journal.py", """
            import os

            def atomic_write_text(path, text):
                os.replace(str(path) + ".tmp", path)
            """)
        assert run(tree) == []


class TestDaemonThreadDurableIO:
    def test_daemon_thread_reaching_fsync_warns(self, tree):
        tree.write("service/daemon.py", """
            import os
            import threading

            class Daemon:
                def start(self):
                    worker = threading.Thread(target=self._writer,
                                              daemon=True)
                    worker.start()

                def _writer(self):
                    os.fsync(0)
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-daemon-thread-durable-io"}
        assert "_writer" in diags[0].message

    def test_non_daemon_thread_is_quiet(self, tree):
        tree.write("service/daemon.py", """
            import os
            import threading

            class Daemon:
                def start(self):
                    worker = threading.Thread(target=self._writer)
                    worker.start()

                def _writer(self):
                    os.fsync(0)
            """)
        assert run(tree) == []


class TestWaivers:
    def test_pragma_on_the_flagged_line_suppresses(self, tree):
        tree.write("service/log.py", """
            import os
            import threading

            class Appender:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.fd = 0

                def flush(self):
                    with self._lock:
                        os.fsync(self.fd)  # repro: allow=interlock-blocking-under-lock — append order is the critical section
            """)
        assert run(tree) == []

    def test_stale_waiver_is_audited(self, tree):
        tree.write("service/log.py", """
            TOTAL = 0  # repro: allow=interlock-blocking-under-lock — nothing here blocks
            """)
        diags = run(tree)
        assert fired(diags) == {"interlock-unused-waiver"}
        assert "nothing here violates it" in diags[0].message
