"""Shared helpers: write fixture trees laid out like the real repo.

Fixture modules live under ``tmp_path/src/repro/...`` so
:func:`repro.analysis.dataflow.callgraph.module_name_for` resolves them
to ``repro.*`` dotted names exactly like the production tree — which
matters here because the default ``InterlockOptions.entry_prefixes``
roots the collapsed ``caller`` thread at ``repro.service``.
"""

import textwrap

import pytest


class TreeWriter:
    def __init__(self, tmp_path):
        self.root = tmp_path / "src" / "repro"

    def write(self, relpath, code):
        """Write ``src/repro/<relpath>`` and return its path."""
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        return path


@pytest.fixture
def tree(tmp_path):
    return TreeWriter(tmp_path)
