"""Unit tests for the concurrency model: lock discovery, entry-lockset
and acquisition fixpoints, thread-root attribution."""

from repro.analysis.interlock import build_interlock_model


def model_for(tree):
    return build_interlock_model([tree.root])


class TestLockDiscovery:
    def test_instance_module_and_dataclass_locks(self, tree):
        tree.write("service/locks.py", """
            import threading
            from dataclasses import dataclass, field

            GLOBAL_LOCK = threading.Lock()

            class Plain:
                def __init__(self):
                    self._lock = threading.RLock()

            @dataclass
            class Boxed:
                _lock: threading.Lock = field(
                    default_factory=threading.Lock)
            """)
        model = model_for(tree)
        locks = model.tables.locks
        assert "repro.service.locks.GLOBAL_LOCK" in locks
        assert locks["repro.service.locks.Plain._lock"].kind == "RLock"
        assert "repro.service.locks.Boxed._lock" in locks

    def test_condition_canonicalizes_to_its_backing_lock(self, tree):
        tree.write("service/locks.py", """
            import threading

            class Mailbox:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
            """)
        model = model_for(tree)
        cond = model.tables.locks["repro.service.locks.Mailbox._ready"]
        assert cond.kind == "Condition"
        assert cond.backing == "repro.service.locks.Mailbox._lock"


class TestFixpoints:
    def test_entry_lockset_of_a_method_always_called_locked(self, tree):
        tree.write("service/counter.py", """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def also(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):
                    self.total += 1
            """)
        model = model_for(tree)
        entry = model.entry_locksets[
            "repro.service.counter.Counter._bump_locked"]
        assert entry == frozenset(
            {"repro.service.counter.Counter._lock"})

    def test_entry_lockset_meets_to_empty_on_an_unlocked_caller(
            self, tree):
        tree.write("service/counter.py", """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def sloppy(self):
                    self._bump_locked()

                def _bump_locked(self):
                    self.total += 1
            """)
        model = model_for(tree)
        entry = model.entry_locksets[
            "repro.service.counter.Counter._bump_locked"]
        assert entry == frozenset()

    def test_spawn_targets_seed_at_the_empty_lockset(self, tree):
        tree.write("service/daemon.py", """
            import threading

            class Daemon:
                def __init__(self):
                    self._lock = threading.Lock()

                def start(self):
                    with self._lock:
                        worker = threading.Thread(target=self._loop)
                        worker.start()

                def _loop(self):
                    pass
            """)
        model = model_for(tree)
        # Spawned under the lock, but the *thread* starts lock-free.
        assert model.entry_locksets[
            "repro.service.daemon.Daemon._loop"] == frozenset()

    def test_transitive_acquisitions_cross_calls(self, tree):
        tree.write("service/daemon.py", """
            import threading

            class Daemon:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def outer(self):
                    with self._a:
                        pass
                    self._inner()

                def _inner(self):
                    with self._b:
                        pass
            """)
        model = model_for(tree)
        acquired = model.acquired["repro.service.daemon.Daemon.outer"]
        assert acquired == frozenset({
            "repro.service.daemon.Daemon._a",
            "repro.service.daemon.Daemon._b"})

    def test_transitive_blocking_crosses_calls(self, tree):
        tree.write("service/daemon.py", """
            import time

            class Daemon:
                def outer(self):
                    self._inner()

                def _inner(self):
                    time.sleep(1)
            """)
        model = model_for(tree)
        assert "time.sleep" in model.blocking[
            "repro.service.daemon.Daemon.outer"]


class TestThreadRoots:
    def test_roots_split_caller_thread_and_signal(self, tree):
        tree.write("service/daemon.py", """
            import signal
            import threading

            class Daemon:
                def serve(self):
                    worker = threading.Thread(target=self._loop)
                    worker.start()
                    signal.signal(signal.SIGTERM, self._on_term)

                def _loop(self):
                    self._shared()

                def _on_term(self, signum, frame):
                    pass

                def _shared(self):
                    pass
            """)
        model = model_for(tree)
        roots = model.roots
        assert roots["repro.service.daemon.Daemon.serve"] == {"caller"}
        assert roots["repro.service.daemon.Daemon._loop"] == {
            "thread:Daemon._loop"}
        assert roots["repro.service.daemon.Daemon._on_term"] == {
            "signal:Daemon._on_term"}
        # reachable from the thread body only, not from the spawner
        assert roots["repro.service.daemon.Daemon._shared"] == {
            "thread:Daemon._loop"}

    def test_function_outside_entry_prefixes_has_no_caller_root(
            self, tree):
        tree.write("routing/helper.py", """
            def public_helper():
                pass
            """)
        model = model_for(tree)
        assert "repro.routing.helper.public_helper" not in model.roots
