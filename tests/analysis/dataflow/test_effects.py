"""Unit tests for purity and effect inference."""

from repro.analysis.dataflow.callgraph import CallGraph, build_project
from repro.analysis.dataflow.effects import (
    CONTEXTVAR_WRITE,
    ENV_READ,
    FILESYSTEM,
    GLOBAL_WRITE,
    RNG_SEEDED,
    RNG_UNSEEDED,
    SUBPROCESS,
    WALL_CLOCK,
    analyze_effects,
)


def effects_of(tree, qualname):
    project = build_project([tree.root])
    graph = CallGraph(project)
    return analyze_effects(project, graph), project, graph


class TestIntrinsicDetection:
    def test_module_level_random_draw_is_unseeded(self, tree):
        tree.write("core/algo.py", """
            import random

            def run():
                return random.random()
        """)
        analysis, _, _ = effects_of(tree, None)
        assert RNG_UNSEEDED in analysis.intrinsic["repro.core.algo.run"]

    def test_numpy_global_draw_is_unseeded(self, tree):
        tree.write("core/algo.py", """
            import numpy as np

            def run():
                return np.random.rand(3)
        """)
        analysis, _, _ = effects_of(tree, None)
        assert RNG_UNSEEDED in analysis.intrinsic["repro.core.algo.run"]

    def test_seeded_constructor_is_deterministic(self, tree):
        tree.write("core/algo.py", """
            import numpy as np

            def run(seed):
                return np.random.default_rng(seed)
        """)
        analysis, _, _ = effects_of(tree, None)
        intrinsic = analysis.intrinsic["repro.core.algo.run"]
        assert RNG_SEEDED in intrinsic
        assert RNG_UNSEEDED not in intrinsic

    def test_seedless_constructor_is_unseeded(self, tree):
        tree.write("core/algo.py", """
            import numpy as np

            def run():
                return np.random.default_rng()
        """)
        analysis, _, _ = effects_of(tree, None)
        assert RNG_UNSEEDED in analysis.intrinsic["repro.core.algo.run"]

    def test_wall_clock_and_filesystem_and_subprocess(self, tree):
        tree.write("runtime/stuff.py", """
            import subprocess
            import time

            def timed():
                return time.perf_counter()

            def saver(path, text):
                path.write_text(text)

            def shell(cmd):
                return subprocess.run(cmd)
        """)
        analysis, _, _ = effects_of(tree, None)
        assert WALL_CLOCK in analysis.intrinsic["repro.runtime.stuff.timed"]
        assert FILESYSTEM in analysis.intrinsic["repro.runtime.stuff.saver"]
        assert SUBPROCESS in analysis.intrinsic["repro.runtime.stuff.shell"]

    def test_env_reads_via_call_and_subscript(self, tree):
        tree.write("experiments/config.py", """
            import os

            def from_getenv():
                return os.getenv("REPRO_TRIALS")

            def from_subscript():
                return os.environ["REPRO_TRIALS"]
        """)
        analysis, _, _ = effects_of(tree, None)
        assert ENV_READ in analysis.intrinsic[
            "repro.experiments.config.from_getenv"]
        assert ENV_READ in analysis.intrinsic[
            "repro.experiments.config.from_subscript"]


class TestGlobalWrites:
    def test_global_rebind_and_container_writes(self, tree):
        tree.write("core/state.py", """
            CACHE = {}
            COUNT = 0

            def fill(key, value):
                CACHE[key] = value

            def bump():
                global COUNT
                COUNT += 1

            def grow(items):
                CACHE.update(items)
        """)
        analysis, _, _ = effects_of(tree, None)
        for fn in ("fill", "bump", "grow"):
            assert GLOBAL_WRITE in analysis.intrinsic[f"repro.core.state.{fn}"]

    def test_local_shadowing_is_not_a_global_write(self, tree):
        tree.write("core/state.py", """
            CACHE = {}

            def pure():
                CACHE = {}
                CACHE["k"] = 1
                return CACHE
        """)
        analysis, _, _ = effects_of(tree, None)
        assert GLOBAL_WRITE not in analysis.intrinsic["repro.core.state.pure"]

    def test_mutating_method_on_immutable_binding_is_skipped(self, tree):
        tree.write("core/state.py", """
            NAMES = frozenset({"a"})

            def touch(other):
                NAMES.add(other)  # AttributeError at runtime, not a race
        """)
        analysis, _, _ = effects_of(tree, None)
        assert GLOBAL_WRITE not in analysis.intrinsic["repro.core.state.touch"]


class TestContextVarWrites:
    def test_set_on_module_contextvar(self, tree):
        tree.write("guard/policy.py", """
            from contextvars import ContextVar

            _active = ContextVar("active", default=None)

            def activate(policy):
                return _active.set(policy)
        """)
        analysis, _, _ = effects_of(tree, None)
        assert CONTEXTVAR_WRITE in analysis.intrinsic[
            "repro.guard.policy.activate"]

    def test_set_on_imported_contextvar(self, tree):
        tree.write("guard/policy.py", """
            from contextvars import ContextVar

            _active = ContextVar("active", default=None)
        """)
        tree.write("core/algo.py", """
            from repro.guard.policy import _active

            def sneaky(policy):
                _active.set(policy)
        """)
        analysis, _, _ = effects_of(tree, None)
        assert CONTEXTVAR_WRITE in analysis.intrinsic["repro.core.algo.sneaky"]


class TestPropagation:
    def test_effects_flow_through_call_chain(self, tree):
        tree.write("core/algo.py", """
            import random

            def leaf():
                return random.random()

            def mid():
                return leaf()

            def entry():
                return mid()
        """)
        analysis, _, _ = effects_of(tree, None)
        assert RNG_UNSEEDED in analysis.of("repro.core.algo.entry")
        assert RNG_UNSEEDED not in analysis.intrinsic["repro.core.algo.entry"]

    def test_effects_flow_through_reference_edges(self, tree):
        tree.write("core/algo.py", """
            import random

            def trial(net):
                return random.random()

            def sweep(pool):
                return pool.map(trial, range(3))
        """)
        analysis, _, _ = effects_of(tree, None)
        assert RNG_UNSEEDED in analysis.of("repro.core.algo.sweep")

    def test_pure_function_is_pure(self, tree):
        tree.write("core/algo.py", """
            def pure(xs):
                return sorted(xs)
        """)
        analysis, _, _ = effects_of(tree, None)
        assert analysis.is_pure("repro.core.algo.pure")

    def test_sites_carry_file_and_line(self, tree):
        path = tree.write("core/algo.py", """
            import random

            def run():
                return random.random()
        """)
        analysis, _, _ = effects_of(tree, None)
        sites = analysis.sites_in("repro.core.algo.run", RNG_UNSEEDED)
        assert len(sites) == 1
        assert sites[0].path == path
        assert sites[0].lineno == 5
