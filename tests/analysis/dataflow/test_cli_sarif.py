"""CLI UX (--pass/--select/--ignore) and the SARIF reporter."""

import json

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
)
from repro.analysis.reporters import render_sarif
from repro.cli import main as cli_main

UNSEEDED = """
import random

def route(net):
    return random.random()
"""


def fixture_tree(tree):
    tree.write("experiments/algo.py", UNSEEDED)
    return tree.root


class TestAnalysisMain:
    def test_pass_dataflow_finds_the_violation(self, tree, capsys):
        code = analysis_main(["--pass", "dataflow", str(fixture_tree(tree))])
        out = capsys.readouterr().out
        assert code == 1
        assert "dataflow-unseeded-rng" in out

    def test_source_pass_ignores_dataflow_violations(self, tree, capsys):
        code = analysis_main(["--pass", "source", str(fixture_tree(tree))])
        assert code == 0

    def test_pass_all_runs_both(self, tree, capsys):
        tree.write("experiments/algo.py", UNSEEDED)
        tree.write("experiments/bad.py", "def f(a=[]):\n    return a\n")
        code = analysis_main(["--pass", "all", str(tree.root)])
        out = capsys.readouterr().out
        assert code == 1
        assert "dataflow-unseeded-rng" in out
        assert "source-mutable-default" in out

    def test_select_runs_only_named_rules(self, tree, capsys):
        tree.write("experiments/algo.py", UNSEEDED)
        tree.write("experiments/bad.py", "def f(a=[]):\n    return a\n")
        code = analysis_main(["--pass", "all", "--select",
                              "source-mutable-default", str(tree.root)])
        out = capsys.readouterr().out
        assert code == 1
        assert "source-mutable-default" in out
        assert "dataflow-unseeded-rng" not in out

    def test_select_unknown_rule_is_a_usage_error(self, tree, capsys):
        code = analysis_main(["--select", "no-such-rule",
                              str(fixture_tree(tree))])
        assert code == 2
        assert "no-such-rule" in capsys.readouterr().err

    def test_ignore_disables_a_rule(self, tree, capsys):
        code = analysis_main(["--pass", "dataflow", "--ignore",
                              "dataflow-unseeded-rng",
                              str(fixture_tree(tree))])
        assert code == 0

    def test_list_rules_is_sorted_and_covers_both_passes(self, capsys):
        code = analysis_main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        ids = [line.split()[0] for line in out.splitlines()]
        assert ids == sorted(ids)
        assert any(i.startswith("dataflow-") for i in ids)
        assert any(i.startswith("source-") for i in ids)

    def test_sarif_output_is_valid_sarif(self, tree, capsys):
        code = analysis_main(["--pass", "dataflow", "--format", "sarif",
                              str(fixture_tree(tree))])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        results = run["results"]
        assert results and results[0]["ruleId"] == "dataflow-unseeded-rng"
        assert results[0]["level"] == "error"
        rules = run["tool"]["driver"]["rules"]
        assert rules[results[0]["ruleIndex"]]["id"] == "dataflow-unseeded-rng"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5


class TestReproRouteLint:
    def test_lint_pass_dataflow(self, tree, capsys):
        code = cli_main(["lint", "--pass", "dataflow",
                         str(fixture_tree(tree))])
        out = capsys.readouterr().out
        assert code == 1
        assert "dataflow-unseeded-rng" in out

    def test_lint_pass_dataflow_sarif(self, tree, capsys):
        code = cli_main(["lint", "--pass", "dataflow", "--format", "sarif",
                         str(fixture_tree(tree))])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["runs"][0]["results"]

    def test_lint_data_pass_still_requires_inputs(self, capsys):
        assert cli_main(["lint"]) == 2

    def test_lint_missing_source_path_is_usage_error(self, tmp_path, capsys):
        code = cli_main(["lint", "--pass", "dataflow",
                         str(tmp_path / "nope")])
        assert code == 2


class TestRenderSarif:
    def test_unregistered_rule_gets_minimal_descriptor(self):
        diags = [Diagnostic(rule="nets-malformed", severity=Severity.ERROR,
                            message="cannot read",
                            location=Location(file="x.nets"))]
        doc = json.loads(render_sarif(diags))
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rules == [{"id": "nets-malformed"}]

    def test_severity_levels_map_to_sarif_levels(self):
        diags = [
            Diagnostic(rule="a", severity=Severity.ERROR, message="m"),
            Diagnostic(rule="b", severity=Severity.WARNING, message="m"),
            Diagnostic(rule="c", severity=Severity.INFO, message="m"),
        ]
        doc = json.loads(render_sarif(diags))
        levels = [r["level"] for r in doc["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]

    def test_hint_is_appended_to_the_message(self):
        diags = [Diagnostic(rule="a", severity=Severity.ERROR, message="m",
                            hint="do the thing")]
        doc = json.loads(render_sarif(diags))
        text = doc["runs"][0]["results"][0]["message"]["text"]
        assert "do the thing" in text
