"""Unit tests for the project model and call graph."""

from pathlib import Path

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    build_project,
    module_name_for,
)


class TestModuleNames:
    def test_anchors_at_last_repro_directory(self):
        path = Path("/x/src/repro/core/ldrg.py")
        assert module_name_for(path) == "repro.core.ldrg"

    def test_tmp_fixture_layout_resolves_identically(self, tmp_path):
        path = tmp_path / "src" / "repro" / "runtime" / "pool.py"
        assert module_name_for(path) == "repro.runtime.pool"

    def test_init_file_names_the_package(self):
        path = Path("/x/src/repro/delay/__init__.py")
        assert module_name_for(path) == "repro.delay"

    def test_non_repro_path_falls_back_to_stem(self):
        assert module_name_for(Path("/elsewhere/script.py")) == "script"


class TestProjectModel:
    def test_collects_functions_methods_globals(self, tree):
        tree.write("core/algo.py", """
            STATE = {}
            LIMIT = 7

            def run(net):
                return net

            class Helper:
                cacheable = False

                def assist(self):
                    return self
        """)
        project = build_project([tree.root])
        assert "repro.core.algo.run" in project.functions
        assert "repro.core.algo.Helper.assist" in project.functions
        assert project.functions["repro.core.algo.Helper.assist"].cls == "Helper"
        assert "repro.core.algo.STATE" in project.globals
        assert not project.globals["repro.core.algo.STATE"].immutable
        assert project.globals["repro.core.algo.LIMIT"].immutable
        cls = project.classes["repro.core.algo.Helper"]
        assert cls.assigns_name("cacheable")

    def test_contextvar_globals_are_marked(self, tree):
        tree.write("guard/policy.py", """
            from contextvars import ContextVar

            _active = ContextVar("active", default=None)
        """)
        project = build_project([tree.root])
        assert project.globals["repro.guard.policy._active"].is_contextvar

    def test_syntax_errors_are_collected_not_raised(self, tree):
        path = tree.write("broken.py", "def oops(:\n")
        project = build_project([tree.root])
        assert path in project.parse_errors


class TestCallEdges:
    def test_same_module_and_from_import_calls(self, tree):
        tree.write("core/helpers.py", """
            def leaf():
                return 1
        """)
        tree.write("core/algo.py", """
            from repro.core.helpers import leaf

            def local():
                return leaf()

            def run():
                return local()
        """)
        graph = CallGraph(build_project([tree.root]))
        assert "repro.core.algo.local" in graph.callees("repro.core.algo.run")
        assert ("repro.core.helpers.leaf"
                in graph.callees("repro.core.algo.local"))

    def test_dotted_module_alias_calls(self, tree):
        tree.write("core/helpers.py", """
            def leaf():
                return 1
        """)
        tree.write("core/algo.py", """
            import repro.core.helpers as helpers

            def run():
                return helpers.leaf()
        """)
        graph = CallGraph(build_project([tree.root]))
        assert ("repro.core.helpers.leaf"
                in graph.callees("repro.core.algo.run"))

    def test_self_method_dispatch(self, tree):
        tree.write("core/algo.py", """
            class Router:
                def _inner(self):
                    return 1

                def route(self):
                    return self._inner()
        """)
        graph = CallGraph(build_project([tree.root]))
        assert ("repro.core.algo.Router._inner"
                in graph.callees("repro.core.algo.Router.route"))

    def test_reference_edge_for_function_passed_as_value(self, tree):
        tree.write("core/algo.py", """
            def trial(net):
                return net

            def sweep(pool):
                return pool.map(trial, range(3))
        """)
        graph = CallGraph(build_project([tree.root]))
        assert "repro.core.algo.trial" in graph.callees("repro.core.algo.sweep")

    def test_class_reference_links_to_its_methods(self, tree):
        tree.write("delay/models.py", """
            class Oracle:
                def delays(self, graph):
                    return {}
        """)
        tree.write("core/algo.py", """
            from repro.delay.models import Oracle

            def run():
                oracle = Oracle()
                return oracle
        """)
        graph = CallGraph(build_project([tree.root]))
        assert ("repro.delay.models.Oracle.delays"
                in graph.callees("repro.core.algo.run"))

    def test_unresolved_calls_kept_as_externals(self, tree):
        tree.write("core/algo.py", """
            import numpy as np

            def run():
                return np.random.default_rng(7)
        """)
        graph = CallGraph(build_project([tree.root]))
        names = [c.name for c in graph.external["repro.core.algo.run"]]
        assert "numpy.random.default_rng" in names


class TestReachability:
    def test_bfs_parents_and_witness_chain(self, tree):
        tree.write("core/algo.py", """
            def leaf():
                return 1

            def mid():
                return leaf()

            def entry():
                return mid()
        """)
        graph = CallGraph(build_project([tree.root]))
        parents = graph.reachable_from(["repro.core.algo.entry"])
        assert parents["repro.core.algo.entry"] is None
        assert parents["repro.core.algo.leaf"] == "repro.core.algo.mid"
        chain = graph.witness_chain(parents, "repro.core.algo.leaf")
        assert chain == ["repro.core.algo.entry", "repro.core.algo.mid",
                        "repro.core.algo.leaf"]

    def test_unreachable_function_is_absent(self, tree):
        tree.write("core/algo.py", """
            def entry():
                return 1

            def island():
                return 2
        """)
        graph = CallGraph(build_project([tree.root]))
        parents = graph.reachable_from(["repro.core.algo.entry"])
        assert "repro.core.algo.island" not in parents


class TestThreadAndSignalEntryPoints:
    def test_thread_target_becomes_a_spawn_and_a_call_edge(self, tree):
        tree.write("service/daemon.py", """
            import threading

            class Daemon:
                def start(self):
                    worker = threading.Thread(target=self._loop,
                                              daemon=True)
                    worker.start()

                def _loop(self):
                    pass
        """)
        graph = CallGraph(build_project([tree.root]))
        spawner = "repro.service.daemon.Daemon.start"
        target = "repro.service.daemon.Daemon._loop"
        assert target in graph.edges[spawner]
        assert (spawner, target) in graph.spawn_pairs
        (spawn,) = graph.thread_spawns
        assert spawn.spawner == spawner
        assert spawn.target == target
        assert spawn.daemon is True

    def test_timer_function_arg_is_a_spawn_target(self, tree):
        tree.write("service/daemon.py", """
            import threading

            def later():
                pass

            def schedule():
                threading.Timer(1.0, later).start()
        """)
        graph = CallGraph(build_project([tree.root]))
        (spawn,) = graph.thread_spawns
        assert spawn.target == "repro.service.daemon.later"
        assert spawn.daemon is False

    def test_unresolved_target_is_recorded_with_none(self, tree):
        tree.write("service/daemon.py", """
            import threading

            def run(callback):
                threading.Thread(target=callback).start()
        """)
        graph = CallGraph(build_project([tree.root]))
        (spawn,) = graph.thread_spawns
        assert spawn.target is None
        assert graph.spawn_pairs == set()

    def test_signal_registration_resolves_the_handler(self, tree):
        tree.write("service/daemon.py", """
            import signal

            class Daemon:
                def install(self):
                    signal.signal(signal.SIGTERM, self._on_term)

                def _on_term(self, signum, frame):
                    pass
        """)
        graph = CallGraph(build_project([tree.root]))
        (registration,) = graph.signal_registrations
        registrar = "repro.service.daemon.Daemon.install"
        handler = "repro.service.daemon.Daemon._on_term"
        assert registration.registrar == registrar
        assert registration.handler == handler
        # the handler runs on its own async entry, like a thread body
        assert (registrar, handler) in graph.spawn_pairs
        assert handler in graph.edges[registrar]

    def test_nested_handler_def_is_captured(self, tree):
        tree.write("service/daemon.py", """
            import signal

            def install(flag):
                def _on_term(signum, frame):
                    flag.append(1)
                signal.signal(signal.SIGTERM, _on_term)
        """)
        graph = CallGraph(build_project([tree.root]))
        (registration,) = graph.signal_registrations
        assert registration.handler is None
        assert registration.handler_node is not None
        assert registration.handler_node.name == "_on_term"

    def test_sig_ign_registration_is_skipped(self, tree):
        tree.write("service/daemon.py", """
            import signal

            def install():
                signal.signal(signal.SIGPIPE, signal.SIG_IGN)
        """)
        graph = CallGraph(build_project([tree.root]))
        assert graph.signal_registrations == []
