"""Unit tests for the project model and call graph."""

from pathlib import Path

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    build_project,
    module_name_for,
)


class TestModuleNames:
    def test_anchors_at_last_repro_directory(self):
        path = Path("/x/src/repro/core/ldrg.py")
        assert module_name_for(path) == "repro.core.ldrg"

    def test_tmp_fixture_layout_resolves_identically(self, tmp_path):
        path = tmp_path / "src" / "repro" / "runtime" / "pool.py"
        assert module_name_for(path) == "repro.runtime.pool"

    def test_init_file_names_the_package(self):
        path = Path("/x/src/repro/delay/__init__.py")
        assert module_name_for(path) == "repro.delay"

    def test_non_repro_path_falls_back_to_stem(self):
        assert module_name_for(Path("/elsewhere/script.py")) == "script"


class TestProjectModel:
    def test_collects_functions_methods_globals(self, tree):
        tree.write("core/algo.py", """
            STATE = {}
            LIMIT = 7

            def run(net):
                return net

            class Helper:
                cacheable = False

                def assist(self):
                    return self
        """)
        project = build_project([tree.root])
        assert "repro.core.algo.run" in project.functions
        assert "repro.core.algo.Helper.assist" in project.functions
        assert project.functions["repro.core.algo.Helper.assist"].cls == "Helper"
        assert "repro.core.algo.STATE" in project.globals
        assert not project.globals["repro.core.algo.STATE"].immutable
        assert project.globals["repro.core.algo.LIMIT"].immutable
        cls = project.classes["repro.core.algo.Helper"]
        assert cls.assigns_name("cacheable")

    def test_contextvar_globals_are_marked(self, tree):
        tree.write("guard/policy.py", """
            from contextvars import ContextVar

            _active = ContextVar("active", default=None)
        """)
        project = build_project([tree.root])
        assert project.globals["repro.guard.policy._active"].is_contextvar

    def test_syntax_errors_are_collected_not_raised(self, tree):
        path = tree.write("broken.py", "def oops(:\n")
        project = build_project([tree.root])
        assert path in project.parse_errors


class TestCallEdges:
    def test_same_module_and_from_import_calls(self, tree):
        tree.write("core/helpers.py", """
            def leaf():
                return 1
        """)
        tree.write("core/algo.py", """
            from repro.core.helpers import leaf

            def local():
                return leaf()

            def run():
                return local()
        """)
        graph = CallGraph(build_project([tree.root]))
        assert "repro.core.algo.local" in graph.callees("repro.core.algo.run")
        assert ("repro.core.helpers.leaf"
                in graph.callees("repro.core.algo.local"))

    def test_dotted_module_alias_calls(self, tree):
        tree.write("core/helpers.py", """
            def leaf():
                return 1
        """)
        tree.write("core/algo.py", """
            import repro.core.helpers as helpers

            def run():
                return helpers.leaf()
        """)
        graph = CallGraph(build_project([tree.root]))
        assert ("repro.core.helpers.leaf"
                in graph.callees("repro.core.algo.run"))

    def test_self_method_dispatch(self, tree):
        tree.write("core/algo.py", """
            class Router:
                def _inner(self):
                    return 1

                def route(self):
                    return self._inner()
        """)
        graph = CallGraph(build_project([tree.root]))
        assert ("repro.core.algo.Router._inner"
                in graph.callees("repro.core.algo.Router.route"))

    def test_reference_edge_for_function_passed_as_value(self, tree):
        tree.write("core/algo.py", """
            def trial(net):
                return net

            def sweep(pool):
                return pool.map(trial, range(3))
        """)
        graph = CallGraph(build_project([tree.root]))
        assert "repro.core.algo.trial" in graph.callees("repro.core.algo.sweep")

    def test_class_reference_links_to_its_methods(self, tree):
        tree.write("delay/models.py", """
            class Oracle:
                def delays(self, graph):
                    return {}
        """)
        tree.write("core/algo.py", """
            from repro.delay.models import Oracle

            def run():
                oracle = Oracle()
                return oracle
        """)
        graph = CallGraph(build_project([tree.root]))
        assert ("repro.delay.models.Oracle.delays"
                in graph.callees("repro.core.algo.run"))

    def test_unresolved_calls_kept_as_externals(self, tree):
        tree.write("core/algo.py", """
            import numpy as np

            def run():
                return np.random.default_rng(7)
        """)
        graph = CallGraph(build_project([tree.root]))
        names = [c.name for c in graph.external["repro.core.algo.run"]]
        assert "numpy.random.default_rng" in names


class TestReachability:
    def test_bfs_parents_and_witness_chain(self, tree):
        tree.write("core/algo.py", """
            def leaf():
                return 1

            def mid():
                return leaf()

            def entry():
                return mid()
        """)
        graph = CallGraph(build_project([tree.root]))
        parents = graph.reachable_from(["repro.core.algo.entry"])
        assert parents["repro.core.algo.entry"] is None
        assert parents["repro.core.algo.leaf"] == "repro.core.algo.mid"
        chain = graph.witness_chain(parents, "repro.core.algo.leaf")
        assert chain == ["repro.core.algo.entry", "repro.core.algo.mid",
                        "repro.core.algo.leaf"]

    def test_unreachable_function_is_absent(self, tree):
        tree.write("core/algo.py", """
            def entry():
                return 1

            def island():
                return 2
        """)
        graph = CallGraph(build_project([tree.root]))
        parents = graph.reachable_from(["repro.core.algo.entry"])
        assert "repro.core.algo.island" not in parents
