"""The determinism rule pack against seeded negative fixtures.

Each test plants exactly the defect the rule exists for in a fixture
tree shaped like the real repo, and asserts the rule (and only the
expected rule) fires — or stays quiet on the compliant variant.
"""

from pathlib import Path

import repro
from repro.analysis.diagnostics import Severity, has_errors
from repro.analysis.dataflow import DataflowOptions, analyze_dataflow

#: Options pointing the analyzer at fixture conventions (no implicit
#: worker roots beyond what PoolTask detection finds).
FIXTURE_OPTIONS = DataflowOptions(
    entry_prefixes=("repro.core", "repro.experiments"),
    worker_entries=(),
    timing_modules=("repro.runtime",),
    scope_functions=("repro.guard.policy.guard_scope",),
    env_modules=("repro.experiments.harness",),
    subprocess_modules=("repro.circuit.ngspice",),
    fingerprint_function="repro.delay.incremental.graph_fingerprint",
    eval_modules=("repro.delay.incremental",),
    config_class="repro.experiments.harness.ExperimentConfig",
)


def run(tree, options=FIXTURE_OPTIONS, config=None):
    return analyze_dataflow([tree.root], config=config, options=options)


def fired(diags):
    return {d.rule for d in diags}


class TestUnseededRng:
    def test_unseeded_rng_in_core_path_fires(self, tree):
        tree.write("core/algo.py", """
            import random

            def _jitter():
                return random.random()

            def route(net):
                return net, _jitter()
        """)
        diags = run(tree)
        assert fired(diags) == {"dataflow-unseeded-rng"}
        assert "entry point repro.core.algo.route" in diags[0].message

    def test_seeded_rng_is_quiet(self, tree):
        tree.write("core/algo.py", """
            import numpy as np

            def route(net, seed):
                rng = np.random.default_rng(seed)
                return net, rng.random()
        """)
        assert fired(run(tree)) == set()

    def test_unreachable_unseeded_rng_is_quiet(self, tree):
        tree.write("viz/wobble.py", """
            import random

            def jitter():
                return random.random()
        """)
        assert fired(run(tree)) == set()

    def test_waiver_pragma_suppresses_and_is_consumed(self, tree):
        tree.write("core/algo.py", """
            import random

            def route(net):
                return random.random()  # repro: allow=dataflow-unseeded-rng
        """)
        assert fired(run(tree)) == set()


class TestWallClock:
    def test_wall_clock_outside_runtime_fires(self, tree):
        tree.write("core/algo.py", """
            import time

            def route(net):
                return net, time.perf_counter()
        """)
        assert fired(run(tree)) == {"dataflow-wall-clock"}

    def test_wall_clock_inside_runtime_is_sanctioned(self, tree):
        tree.write("runtime/execute.py", """
            import time

            def run_trial(fn, net):
                start = time.perf_counter()
                return fn(net), time.perf_counter() - start
        """)
        tree.write("core/algo.py", """
            from repro.runtime.execute import run_trial

            def route(net):
                return run_trial(len, net)
        """)
        assert fired(run(tree)) == set()


class TestWorkerSharedState:
    def test_global_mutated_in_worker_trial_fn_fires(self, tree):
        tree.write("runtime/execute.py", """
            _SCRATCH = {}

            def run_trial(fn, net):
                _SCRATCH[net] = fn(net)  # racy across pool workers
                return _SCRATCH[net]

            def sweep(tasks, pool):
                jobs = [PoolTask(key=k, fn=run_trial, args=a)
                        for k, a in tasks]
                return pool(jobs)
        """)
        diags = run(tree)
        assert "dataflow-worker-shared-state" in fired(diags)

    def test_explicitly_configured_worker_entry(self, tree):
        tree.write("runtime/execute.py", """
            _SCRATCH = {}

            def run_trial(fn, net):
                _SCRATCH[net] = fn(net)
                return _SCRATCH[net]
        """)
        options = DataflowOptions(
            entry_prefixes=(), worker_entries=(
                "repro.runtime.execute.run_trial",))
        diags = run(tree, options=options)
        assert "dataflow-worker-shared-state" in fired(diags)

    def test_pure_worker_trial_fn_is_quiet(self, tree):
        tree.write("runtime/execute.py", """
            def run_trial(fn, net):
                return fn(net)

            def sweep(tasks, pool):
                jobs = [PoolTask(key=k, fn=run_trial, args=a)
                        for k, a in tasks]
                return pool(jobs)
        """)
        assert fired(run(tree)) == set()


class TestGlobalMutation:
    def test_global_mutation_on_experiment_path_fires(self, tree):
        tree.write("experiments/tables.py", """
            _RESULTS = {}

            def run_table(sizes):
                for size in sizes:
                    _RESULTS[size] = size * 2
                return _RESULTS
        """)
        assert fired(run(tree)) == {"dataflow-global-mutation"}


class TestContextVarDiscipline:
    def test_write_outside_scope_manager_fires(self, tree):
        tree.write("guard/policy.py", """
            from contextvars import ContextVar
            from contextlib import contextmanager

            _active = ContextVar("active", default=None)

            @contextmanager
            def guard_scope(policy):
                token = _active.set(policy)
                try:
                    yield
                finally:
                    _active.reset(token)
        """)
        tree.write("core/algo.py", """
            from repro.guard.policy import _active

            def route(net, policy):
                _active.set(policy)  # leaks: no token restore
                return net
        """)
        diags = run(tree)
        assert fired(diags) == {"dataflow-contextvar-write"}
        assert all("guard_scope" not in (d.location.obj or "")
                   for d in diags)

    def test_scope_manager_itself_is_sanctioned(self, tree):
        tree.write("guard/policy.py", """
            from contextvars import ContextVar
            from contextlib import contextmanager

            _active = ContextVar("active", default=None)

            @contextmanager
            def guard_scope(policy):
                token = _active.set(policy)
                try:
                    yield
                finally:
                    _active.reset(token)
        """)
        assert fired(run(tree)) == set()


class TestEnvRead:
    def test_env_read_outside_boundary_warns(self, tree):
        tree.write("core/algo.py", """
            import os

            def route(net):
                return net, os.getenv("REPRO_FAST")
        """)
        diags = run(tree)
        assert fired(diags) == {"dataflow-env-read"}
        assert diags[0].severity is Severity.WARNING
        assert not has_errors(diags)

    def test_env_read_at_config_boundary_is_quiet(self, tree):
        tree.write("experiments/harness.py", """
            import os

            def from_env():
                return os.getenv("REPRO_TRIALS")
        """)
        assert fired(run(tree)) == set()


class TestUnstableIteration:
    def test_sum_over_set_warns(self, tree):
        tree.write("delay/approx.py", """
            def total(lengths):
                unique = set(lengths)
                return sum(unique)
        """)
        assert fired(run(tree)) == {"dataflow-unstable-iteration"}

    def test_loop_accumulation_over_set_literal_warns(self, tree):
        tree.write("delay/approx.py", """
            def total(a, b, c):
                acc = 0.0
                for v in {a, b, c}:
                    acc += v
                return acc
        """)
        assert fired(run(tree)) == {"dataflow-unstable-iteration"}

    def test_sorted_set_is_quiet(self, tree):
        tree.write("delay/approx.py", """
            def total(lengths):
                return sum(sorted(set(lengths)))
        """)
        assert fired(run(tree)) == set()


class TestUncacheableOracle:
    def test_stateful_rng_oracle_without_declaration_fires(self, tree):
        tree.write("delay/models.py", """
            import random

            class JitterModel:
                def __init__(self, seed):
                    self._rng = random.Random(seed)

                def delays(self, graph):
                    return {0: self._rng.random()}
        """)
        assert fired(run(tree)) == {"dataflow-uncacheable-oracle"}

    def test_explicit_cacheable_false_is_a_decision(self, tree):
        tree.write("delay/models.py", """
            import random

            class JitterModel:
                cacheable = False

                def __init__(self, seed):
                    self._rng = random.Random(seed)

                def delays(self, graph):
                    return {0: self._rng.random()}
        """)
        assert fired(run(tree)) == set()

    def test_pure_oracle_is_quiet(self, tree):
        tree.write("delay/models.py", """
            class ElmoreModel:
                def delays(self, graph):
                    return {0: 1.0}
        """)
        assert fired(run(tree)) == set()


class TestCacheKeyCompleteness:
    def test_attribute_read_missing_from_fingerprint_fires(self, tree):
        tree.write("delay/incremental.py", """
            def graph_fingerprint(graph):
                return (graph.num_pins, tuple(graph.positions))

            def evaluate(graph):
                return sum(len(e) for e in graph.edges)
        """)
        diags = run(tree)
        assert fired(diags) == {"dataflow-cache-key-completeness"}
        assert "graph.edges" in diags[0].message

    def test_covered_reads_are_quiet(self, tree):
        tree.write("delay/incremental.py", """
            def graph_fingerprint(graph):
                return (graph.num_pins, tuple(graph.positions),
                        tuple(graph.edges))

            def evaluate(graph):
                total = 0.0
                for u, v in graph.edges:
                    total += graph.distance(u, v)
                return total + graph.num_pins
        """)
        assert fired(run(tree)) == set()

    def test_config_field_missing_from_fingerprint_fires(self, tree):
        tree.write("experiments/harness.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ExperimentConfig:
                sizes: tuple
                seed: int
                oracle_backend: str = "elmore"

                def fingerprint_data(self):
                    return {"sizes": list(self.sizes), "seed": self.seed}
        """)
        diags = run(tree)
        assert fired(diags) == {"dataflow-cache-key-completeness"}
        assert "oracle_backend" in diags[0].message

    def test_fully_hashed_config_is_quiet(self, tree):
        tree.write("experiments/harness.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ExperimentConfig:
                sizes: tuple
                seed: int

                def fingerprint_data(self):
                    return {"sizes": list(self.sizes), "seed": self.seed}
        """)
        assert fired(run(tree)) == set()


class TestWaiverAudit:
    def test_unused_dataflow_pragma_is_flagged(self, tree):
        tree.write("core/algo.py", """
            def route(net):
                return net  # repro: allow=dataflow-unseeded-rng
        """)
        diags = run(tree)
        assert fired(diags) == {"dataflow-unused-waiver"}

    def test_source_pragmas_are_not_this_passes_business(self, tree):
        tree.write("core/algo.py", """
            def route(net, acc=[]):  # repro: allow=source-mutable-default
                return net
        """)
        assert fired(run(tree)) == set()


class TestRepoIsClean:
    def test_dataflow_pass_is_clean_on_the_real_tree(self):
        src = Path(repro.__file__).resolve().parent
        diags = analyze_dataflow([src])
        assert diags == [], "\n".join(d.render() for d in diags)
