"""Acceptance: ``repro-route lint`` is clean on all six algorithms.

Routes 50 random nets with each of MST, LDRG, SLDRG, H1, H2, H3 (the
Elmore oracle keeps this fast) and asserts the lint pass reports zero
error-severity diagnostics, plus an end-to-end CLI run over saved JSON.
"""

import pytest

from repro.analysis import lint_graph, lint_routing_rc
from repro.analysis.diagnostics import has_errors
from repro.cli import main as cli_main
from repro.core.heuristics import h1, h2, h3
from repro.core.ldrg import ldrg
from repro.core.sldrg import sldrg
from repro.delay.models import ElmoreGraphModel
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.io.routing_json import save_routing

TECH = Technology.cmos08()
ORACLE = ElmoreGraphModel(TECH)

NUM_NETS = 50

ALGORITHMS = {
    "mst": lambda net: prim_mst(net),
    "ldrg": lambda net: ldrg(net, TECH, delay_model=ORACLE).graph,
    "sldrg": lambda net: sldrg(net, TECH, delay_model=ORACLE).graph,
    "h1": lambda net: h1(net, TECH, delay_model=ORACLE).graph,
    "h2": lambda net: h2(net, TECH, evaluation_model=ORACLE).graph,
    "h3": lambda net: h3(net, TECH, evaluation_model=ORACLE).graph,
}


def random_nets():
    return [Net.random(4 + seed % 5, seed=seed, name=f"acc{seed}")
            for seed in range(NUM_NETS)]


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fifty_nets_lint_error_free(algorithm):
    route = ALGORITHMS[algorithm]
    for net in random_nets():
        graph = route(net)
        diags = lint_graph(graph) + lint_routing_rc(graph, TECH)
        assert not has_errors(diags), (
            algorithm, net.name, [d.render() for d in diags])


def test_cli_lint_clean_on_each_algorithm(tmp_path, net10, capsys):
    paths = []
    for algorithm, route in ALGORITHMS.items():
        path = tmp_path / f"{algorithm}.json"
        save_routing(route(net10), path)
        paths.append(str(path))
    assert cli_main(["lint", *paths]) == 0
