"""One passing and one violating fixture for every routing-graph lint rule."""

import pytest

from repro.analysis.graph_rules import lint_graph
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph


def rules_fired(graph):
    return {d.rule for d in lint_graph(graph)}


@pytest.fixture
def square_net():
    return Net.from_points(
        [(0.0, 0.0), (1000.0, 0.0), (1000.0, 1000.0), (0.0, 1000.0)],
        name="square4")


class TestCleanRoutings:
    def test_mst_is_clean(self, net10):
        assert lint_graph(prim_mst(net10)) == []

    def test_tree_with_useful_steiner_is_clean(self, square_net):
        graph = RoutingGraph(square_net)
        hub = graph.add_steiner_point(Point(500.0, 500.0))
        for pin in range(4):
            graph.add_edge(pin, hub)
        assert lint_graph(graph) == []


class TestDisconnected:
    def test_fires_on_unreachable_node(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(1, 2)])
        assert "graph-disconnected" in rules_fired(graph)

    def test_quiet_on_connected(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        assert "graph-disconnected" not in rules_fired(graph)


class TestNonspanning:
    def test_fires_on_floating_pin(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        assert "graph-nonspanning" in rules_fired(graph)

    def test_quiet_when_only_steiner_dangles(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        graph.add_steiner_point(Point(500.0, 0.0))
        fired = rules_fired(graph)
        assert "graph-nonspanning" not in fired
        assert "graph-disconnected" in fired  # still not fully connected


class TestDanglingSteiner:
    def test_fires_on_degree_one_steiner(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        stub = graph.add_steiner_point(Point(500.0, 0.0))
        graph.add_edge(0, stub)
        assert "graph-dangling-steiner" in rules_fired(graph)

    def test_quiet_on_through_steiner(self, line_net):
        graph = RoutingGraph(line_net)
        mid = graph.add_steiner_point(Point(500.0, 0.0))
        graph.add_edge(0, mid)
        graph.add_edge(mid, 1)
        graph.add_edge(1, 2)
        assert "graph-dangling-steiner" not in rules_fired(graph)


class TestZeroLengthEdge:
    def test_fires_on_steiner_stacked_on_pin(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        twin = graph.add_steiner_point(Point(1000.0, 0.0))  # == pin 1
        graph.add_edge(1, twin)
        graph.add_edge(0, twin)
        assert "graph-zero-length-edge" in rules_fired(graph)

    def test_quiet_on_positive_lengths(self, mst10):
        assert "graph-zero-length-edge" not in rules_fired(mst10)


class TestCoincidentNodes:
    def test_fires_on_duplicate_position(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        twin = graph.add_steiner_point(Point(1000.0, 0.0))  # == pin 1
        graph.add_edge(0, twin)
        graph.add_edge(twin, 2)
        assert "graph-coincident-nodes" in rules_fired(graph)

    def test_quiet_on_distinct_positions(self, mst10):
        assert "graph-coincident-nodes" not in rules_fired(mst10)


class TestOutOfBounds:
    def test_fires_on_steiner_outside_pin_bbox(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        out = graph.add_steiner_point(Point(500.0, 900.0))  # pins sit at y=0
        graph.add_edge(0, out)
        graph.add_edge(out, 1)
        assert "graph-out-of-bounds" in rules_fired(graph)

    def test_quiet_inside_bbox(self, square_net):
        graph = RoutingGraph(square_net)
        hub = graph.add_steiner_point(Point(500.0, 500.0))
        for pin in range(4):
            graph.add_edge(pin, hub)
        assert "graph-out-of-bounds" not in rules_fired(graph)


class TestExcessCycles:
    def test_fires_on_complete_graph(self):
        net = Net.from_points(
            [(0.0, 0.0), (1000.0, 0.0), (0.0, 1000.0),
             (1000.0, 1000.0), (500.0, 200.0)], name="k5")
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        graph = RoutingGraph.from_edges(net, edges)  # 6 cycles over 5 pins
        assert "graph-excess-cycles" in rules_fired(graph)

    def test_quiet_on_single_shortcut(self, mst10):
        graph = mst10.with_edge(*mst10.candidate_edges()[0])
        assert "graph-excess-cycles" not in rules_fired(graph)


class TestRedundantParallel:
    def test_fires_on_collinear_chord(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2), (0, 2)])
        assert "graph-redundant-parallel" in rules_fired(graph)

    def test_quiet_on_genuine_shortcut(self):
        # Pin 1 lies off the monotone staircase between 0 and 2, so the
        # direct chord (0, 2) is strictly shorter than the detour via 1.
        net = Net.from_points(
            [(0.0, 0.0), (1000.0, 0.0), (500.0, 800.0)], name="tri")
        graph = RoutingGraph.from_edges(net, [(0, 1), (1, 2), (0, 2)])
        assert "graph-redundant-parallel" not in rules_fired(graph)


class TestSeverities:
    def test_connectivity_problems_are_errors(self, line_net):
        from repro.analysis.diagnostics import Severity

        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        severities = {d.rule: d.severity for d in lint_graph(graph)}
        assert severities["graph-disconnected"] is Severity.ERROR
        assert severities["graph-nonspanning"] is Severity.ERROR
