"""One passing and one violating fixture for every electrical lint rule."""

import numpy as np
import pytest

from repro.analysis.circuit_rules import (
    lint_circuit,
    lint_rc_system,
    lint_routing_rc,
)
from repro.circuit.elements import Capacitor, Inductor, Resistor
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.waveform import Step
from repro.delay.parameters import Technology
from repro.delay.rc_builder import build_interconnect_circuit, build_reduced_rc
from repro.graph.mst import prim_mst


def circuit_rules_fired(circuit):
    return {d.rule for d in lint_circuit(circuit)}


def forge(cls, name, n1, n2, value):
    """Build an element bypassing its constructor validation.

    The element dataclasses reject non-positive values on construction,
    so violating fixtures (as produced by a buggy deserializer or
    builder) have to be forged field by field.
    """
    element = cls.__new__(cls)
    for attr, val in (("name", name), ("n1", n1), ("n2", n2),
                      ("value", value), ("ic", 0.0)):
        object.__setattr__(element, attr, val)
    return element


def rc_rules_fired(G, c, b, **kwargs):
    return {d.rule for d in lint_rc_system(G, c, b, **kwargs)}


@pytest.fixture
def rc_ladder():
    """A well-formed driver + two-section RC ladder."""
    ckt = Circuit("ladder")
    ckt.add_voltage_source("vin", "in", GROUND, Step())
    ckt.add_resistor("rdrv", "in", "a", 100.0)
    ckt.add_resistor("r1", "a", "b", 50.0)
    ckt.add_capacitor("ca", "a", GROUND, 1e-12)
    ckt.add_capacitor("cb", "b", GROUND, 2e-12)
    return ckt


class TestCleanCircuits:
    def test_ladder_is_clean(self, rc_ladder):
        assert lint_circuit(rc_ladder) == []

    def test_built_interconnect_circuit_is_clean(self, net10):
        tech = Technology.cmos08()
        circuit = build_interconnect_circuit(prim_mst(net10), tech,
                                             segments=2)
        assert lint_circuit(circuit) == []

    def test_built_reduced_rc_is_clean(self, net10):
        tech = Technology.cmos08()
        reduced = build_reduced_rc(prim_mst(net10), tech, segments=2)
        assert lint_rc_system(reduced.G, reduced.c, reduced.b,
                              labels=reduced.labels) == []


class TestNonpositiveResistance:
    def test_fires(self, rc_ladder):
        rc_ladder.add(forge(Resistor, "rbad", "b", GROUND, -5.0))
        assert "circuit-nonpositive-resistance" in \
            circuit_rules_fired(rc_ladder)

    def test_quiet(self, rc_ladder):
        assert "circuit-nonpositive-resistance" not in \
            circuit_rules_fired(rc_ladder)


class TestNonpositiveCapacitance:
    def test_fires(self, rc_ladder):
        rc_ladder.add(forge(Capacitor, "cbad", "a", GROUND, 0.0))
        assert "circuit-nonpositive-capacitance" in \
            circuit_rules_fired(rc_ladder)

    def test_quiet(self, rc_ladder):
        assert "circuit-nonpositive-capacitance" not in \
            circuit_rules_fired(rc_ladder)


class TestNonpositiveInductance:
    def test_fires(self, rc_ladder):
        rc_ladder.add(forge(Inductor, "lbad", "b", GROUND, -1e-15))
        assert "circuit-nonpositive-inductance" in \
            circuit_rules_fired(rc_ladder)

    def test_quiet(self, rc_ladder):
        rc_ladder.add_inductor("lok", "b", GROUND, 1e-15)
        assert "circuit-nonpositive-inductance" not in \
            circuit_rules_fired(rc_ladder)


class TestNoSource:
    def test_fires(self):
        ckt = Circuit("dead")
        ckt.add_resistor("r1", "a", GROUND, 10.0)
        assert "circuit-no-source" in circuit_rules_fired(ckt)

    def test_quiet(self, rc_ladder):
        assert "circuit-no-source" not in circuit_rules_fired(rc_ladder)


class TestNoGround:
    def test_fires(self):
        ckt = Circuit("adrift")
        ckt.add_voltage_source("vin", "a", "b", Step())
        ckt.add_resistor("r1", "a", "b", 10.0)
        assert "circuit-no-ground" in circuit_rules_fired(ckt)

    def test_quiet(self, rc_ladder):
        assert "circuit-no-ground" not in circuit_rules_fired(rc_ladder)


class TestFloatingNode:
    def test_fires_on_capacitor_only_node(self, rc_ladder):
        rc_ladder.add_capacitor("cfloat", "b", "island", 1e-12)
        assert "circuit-floating-node" in circuit_rules_fired(rc_ladder)

    def test_quiet_when_all_nodes_reach_ground(self, rc_ladder):
        assert "circuit-floating-node" not in circuit_rules_fired(rc_ladder)


class TestDanglingNode:
    def test_fires_on_single_terminal_node(self, rc_ladder):
        rc_ladder.add_resistor("rstub", "b", "stub", 10.0)
        assert "circuit-dangling-node" in circuit_rules_fired(rc_ladder)

    def test_quiet_on_ladder(self, rc_ladder):
        assert "circuit-dangling-node" not in circuit_rules_fired(rc_ladder)


def healthy_rc():
    """A 2-node reduced RC system with driver on row 0."""
    G = np.array([[0.03, -0.01], [-0.01, 0.01]])
    c = np.array([1e-12, 1e-12])
    b = np.array([0.02, 0.0])
    return G, c, b


class TestAsymmetricConductance:
    def test_fires(self):
        G, c, b = healthy_rc()
        G[0, 1] = -0.02  # one-sided stamp
        assert "rc-asymmetric-conductance" in rc_rules_fired(G, c, b)

    def test_quiet(self):
        assert "rc-asymmetric-conductance" not in rc_rules_fired(*healthy_rc())


class TestPositiveOffdiagonal:
    def test_fires_on_sign_flip(self):
        G, c, b = healthy_rc()
        G[0, 1] = G[1, 0] = +0.01  # sign-flipped resistance
        assert "rc-positive-offdiagonal" in rc_rules_fired(G, c, b)

    def test_quiet(self):
        assert "rc-positive-offdiagonal" not in rc_rules_fired(*healthy_rc())


class TestDiagonalDominance:
    def test_fires_on_undersized_diagonal(self):
        G, c, b = healthy_rc()
        G[1, 1] = 0.001  # smaller than |G[1, 0]|
        assert "rc-not-diagonally-dominant" in rc_rules_fired(G, c, b)

    def test_quiet(self):
        assert "rc-not-diagonally-dominant" not in \
            rc_rules_fired(*healthy_rc())


class TestRCNonpositiveCapacitance:
    def test_fires(self):
        G, c, b = healthy_rc()
        c[1] = -1e-12
        assert "rc-nonpositive-capacitance" in rc_rules_fired(G, c, b)

    def test_quiet(self):
        assert "rc-nonpositive-capacitance" not in \
            rc_rules_fired(*healthy_rc())


class TestUndriven:
    def test_fires_on_zero_excitation(self):
        G, c, b = healthy_rc()
        b[:] = 0.0
        assert "rc-undriven" in rc_rules_fired(G, c, b)

    def test_quiet(self):
        assert "rc-undriven" not in rc_rules_fired(*healthy_rc())


class TestLintRoutingRC:
    def test_clean_on_mst(self, net10):
        assert lint_routing_rc(prim_mst(net10), Technology.cmos08()) == []

    def test_unbuildable_on_nonspanning_graph(self, line_net):
        from repro.graph.routing_graph import RoutingGraph

        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        diags = lint_routing_rc(graph, Technology.cmos08())
        assert [d.rule for d in diags] == ["rc-unbuildable"]
