"""Unit tests for the AST source-discipline rules."""

import textwrap

from repro.analysis.diagnostics import LintConfig
from repro.analysis.source_rules import (
    iter_python_files,
    lint_source,
    lint_source_tree,
)


def write(tmp_path, name, code, subdir=None):
    directory = tmp_path if subdir is None else tmp_path / subdir
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return path


def rules_fired(path, config=None):
    return {d.rule for d in lint_source(path, config)}


class TestFloatEq:
    def test_fires_on_coordinate_equality(self, tmp_path):
        path = write(tmp_path, "bad.py", """
            def same_column(a, b):
                return a.x == b.x
        """)
        assert "source-float-eq" in rules_fired(path)

    def test_fires_on_length_call_equality(self, tmp_path):
        path = write(tmp_path, "bad.py", """
            def is_direct(graph, u, v):
                return graph.distance(u, v) == graph.edge_length(u, v)
        """)
        assert "source-float-eq" in rules_fired(path)

    def test_quiet_on_tolerance_comparison(self, tmp_path):
        path = write(tmp_path, "good.py", """
            def same_column(a, b, tol=1e-9):
                return abs(a.x - b.x) <= tol
        """)
        assert "source-float-eq" not in rules_fired(path)

    def test_quiet_on_non_coordinate_equality(self, tmp_path):
        path = write(tmp_path, "good.py", """
            def is_source(node):
                return node == 0
        """)
        assert "source-float-eq" not in rules_fired(path)

    def test_allow_pragma_waives_line(self, tmp_path):
        path = write(tmp_path, "waived.py", """
            def same_column(a, b):
                return a.x == b.x  # repro: allow=source-float-eq
        """)
        assert "source-float-eq" not in rules_fired(path)


class TestFrozenMutation:
    def test_fires_on_external_setattr(self, tmp_path):
        path = write(tmp_path, "bad.py", """
            def hack(net):
                object.__setattr__(net, "name", "other")
        """)
        assert "source-frozen-mutation" in rules_fired(path)

    def test_quiet_on_self_in_post_init(self, tmp_path):
        path = write(tmp_path, "good.py", """
            class Frozen:
                def __post_init__(self):
                    object.__setattr__(self, "sinks", ())
        """)
        assert "source-frozen-mutation" not in rules_fired(path)

    def test_quiet_on_plain_setattr_builtin(self, tmp_path):
        path = write(tmp_path, "good.py", """
            def label(thing):
                setattr(thing, "label", "x")
        """)
        assert "source-frozen-mutation" not in rules_fired(path)


class TestBoundaryCheck:
    ALGO = """
        def route(net):
            graph = build(net)
            {check}
            return graph
    """

    def test_fires_on_core_module_without_check(self, tmp_path):
        path = write(tmp_path, "algo.py", self.ALGO.format(check="pass"),
                     subdir="core")
        assert "source-missing-boundary-check" in rules_fired(path)

    def test_quiet_with_check_call(self, tmp_path):
        path = write(tmp_path, "algo.py",
                     self.ALGO.format(check="check_spanning(graph)"),
                     subdir="core")
        assert "source-missing-boundary-check" not in rules_fired(path)

    def test_quiet_with_lint_call(self, tmp_path):
        path = write(tmp_path, "algo.py",
                     self.ALGO.format(check="lint_graph(graph)"),
                     subdir="core")
        assert "source-missing-boundary-check" not in rules_fired(path)

    def test_quiet_outside_core(self, tmp_path):
        path = write(tmp_path, "algo.py", self.ALGO.format(check="pass"))
        assert "source-missing-boundary-check" not in rules_fired(path)

    def test_exempt_modules(self, tmp_path):
        path = write(tmp_path, "result.py", "X = 1\n", subdir="core")
        assert "source-missing-boundary-check" not in rules_fired(path)


class TestInvariantAssert:
    BAD = """
        def pick(candidates):
            best = search(candidates)
            assert best is not None
            return best
    """

    def test_fires_on_core_assert(self, tmp_path):
        path = write(tmp_path, "algo.py", self.BAD, subdir="core")
        assert "source-invariant-assert" in rules_fired(path)

    def test_quiet_outside_core(self, tmp_path):
        path = write(tmp_path, "algo.py", self.BAD)
        assert "source-invariant-assert" not in rules_fired(path)

    def test_quiet_in_core_tests(self, tmp_path):
        path = write(tmp_path, "test_algo.py", self.BAD, subdir="core")
        assert "source-invariant-assert" not in rules_fired(path)

    def test_allow_pragma_waives_line(self, tmp_path):
        path = write(tmp_path, "algo.py", """
            def pick(candidates):
                best = search(candidates)
                assert best is not None  # repro: allow=source-invariant-assert
                return best
        """, subdir="core")
        assert "source-invariant-assert" not in rules_fired(path)

    def test_quiet_with_sentinel_helpers(self, tmp_path):
        path = write(tmp_path, "algo.py", """
            from repro.guard.sentinels import ensure_found

            def pick(candidates):
                return ensure_found(search(candidates), "no candidate scored")
        """, subdir="core")
        assert "source-invariant-assert" not in rules_fired(path)


class TestMutableDefault:
    def test_fires_on_list_default(self, tmp_path):
        path = write(tmp_path, "bad.py", """
            def gather(items=[]):
                return items
        """)
        assert "source-mutable-default" in rules_fired(path)

    def test_fires_on_dict_call_default(self, tmp_path):
        path = write(tmp_path, "bad.py", """
            def gather(*, table=dict()):
                return table
        """)
        assert "source-mutable-default" in rules_fired(path)

    def test_quiet_on_none_default(self, tmp_path):
        path = write(tmp_path, "good.py", """
            def gather(items=None):
                return items or []
        """)
        assert "source-mutable-default" not in rules_fired(path)


class TestInfrastructure:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        path = write(tmp_path, "broken.py", "def oops(:\n")
        diags = lint_source(path)
        assert [d.rule for d in diags] == ["source-syntax-error"]
        assert diags[0].location.file == str(path)

    def test_disable_via_config(self, tmp_path):
        path = write(tmp_path, "bad.py", "def f(a=[]):\n    return a\n")
        config = LintConfig(disabled=frozenset({"source-mutable-default"}))
        assert rules_fired(path, config) == set()

    def test_iter_python_files_recurses_and_skips_caches(self, tmp_path):
        write(tmp_path, "a.py", "A = 1\n")
        write(tmp_path, "b.py", "B = 1\n", subdir="pkg")
        write(tmp_path, "ignored.py", "C = 1\n", subdir="__pycache__")
        names = {p.name for p in iter_python_files([tmp_path])}
        assert names == {"a.py", "b.py"}

    def test_lint_source_tree_aggregates(self, tmp_path):
        write(tmp_path, "bad.py", "def f(a=[]):\n    return a\n")
        write(tmp_path, "worse.py", "def g(b={}):\n    return b\n")
        diags = lint_source_tree([tmp_path])
        assert len(diags) == 2

    def test_repo_source_is_clean(self):
        from pathlib import Path

        import repro

        package_root = Path(repro.__file__).parent
        assert lint_source_tree([package_root]) == []


class TestWaivers:
    def test_pragma_anywhere_on_a_multiline_statement(self, tmp_path):
        path = write(tmp_path, "multi.py", """
            def f(a, b):
                return (a.x ==  # repro: allow=source-float-eq
                        b.x)
        """)
        assert rules_fired(path) == set()

    def test_pragma_on_the_last_line_of_the_statement(self, tmp_path):
        path = write(tmp_path, "multi.py", """
            def f(a, b):
                return (a.x ==
                        b.x)  # repro: allow=source-float-eq
        """)
        assert rules_fired(path) == set()

    def test_pragma_on_a_decorator_waives_the_def(self, tmp_path):
        path = write(tmp_path, "deco.py", """
            import functools

            @functools.cache  # repro: allow=source-mutable-default
            def f(a=[]):
                return a
        """)
        assert rules_fired(path) == set()

    def test_pragma_inside_a_def_body_does_not_waive_the_def(self, tmp_path):
        path = write(tmp_path, "deco.py", """
            def f(a=[]):
                return a  # repro: allow=source-mutable-default
        """)
        assert rules_fired(path) == {"source-mutable-default",
                                     "source-unused-waiver"}

    def test_unused_pragma_is_itself_a_diagnostic(self, tmp_path):
        path = write(tmp_path, "stale.py", """
            def f(a, b):
                return a + b  # repro: allow=source-float-eq
        """)
        diags = lint_source(path)
        assert [d.rule for d in diags] == ["source-unused-waiver"]
        assert diags[0].location.line == 3

    def test_unknown_rule_id_in_pragma_is_flagged(self, tmp_path):
        path = write(tmp_path, "typo.py", """
            def f(a, b):
                return a.x == b.x  # repro: allow=source-flaot-eq
        """)
        fired = rules_fired(path)
        assert "source-unused-waiver" in fired
        assert "source-float-eq" in fired  # the typo waives nothing

    def test_used_pragma_is_not_reported_stale(self, tmp_path):
        path = write(tmp_path, "used.py", """
            def f(a, b):
                return a.x == b.x  # repro: allow=source-float-eq
        """)
        assert rules_fired(path) == set()

    def test_allow_all_pragma_is_never_stale(self, tmp_path):
        path = write(tmp_path, "all.py", """
            def f(a, b):
                return a + b  # repro: allow=all
        """)
        assert rules_fired(path) == set()

    def test_docstring_mention_of_the_pragma_is_not_a_pragma(self, tmp_path):
        path = write(tmp_path, "doc.py", '''
            def f():
                """Waive with ``# repro: allow=<rule-id>`` on the line."""
                return 1
        ''')
        assert rules_fired(path) == set()

    def test_waiver_audit_respects_disable(self, tmp_path):
        path = write(tmp_path, "stale.py", """
            def f(a, b):
                return a + b  # repro: allow=source-float-eq
        """)
        config = LintConfig(disabled=frozenset({"source-unused-waiver"}))
        assert rules_fired(path, config) == set()
