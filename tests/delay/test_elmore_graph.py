"""Unit tests for general-graph (first-moment) Elmore delay."""

import pytest

from repro.delay.elmore_graph import graph_elmore_delay, graph_elmore_delays
from repro.delay.elmore_tree import elmore_delays
from repro.geometry.net import Net
from repro.graph.mst import prim_mst


class TestAgreementOnTrees:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equals_tree_formula_on_msts(self, seed, tech):
        net = Net.random(10, seed=seed)
        tree = prim_mst(net)
        via_tree = elmore_delays(tree, tech)
        via_graph = graph_elmore_delays(tree, tech)
        for node in range(net.num_pins):
            assert via_graph[node] == pytest.approx(via_tree[node], rel=1e-9)

    def test_two_pin_hand_value(self, tech):
        net = Net.from_points([(0, 0), (1000, 0)])
        tree = prim_mst(net)
        r_e = tech.wire_resistance * 1000.0
        c_e = tech.wire_capacitance * 1000.0
        expected = (tech.driver_resistance * (c_e + tech.sink_capacitance)
                    + r_e * (c_e / 2.0 + tech.sink_capacitance))
        assert graph_elmore_delays(tree, tech)[1] == pytest.approx(expected)


class TestNonTreeBehavior:
    def test_cycles_are_accepted(self, mst10, tech):
        cyclic = mst10.with_edge(*mst10.candidate_edges()[0])
        delays = graph_elmore_delays(cyclic, tech)
        assert len(delays) == 10
        assert all(d > 0 for d in delays.values())

    def test_source_shortcut_speeds_up_detour_sink(self, tech):
        # A hand-built "C" net: the MST path from the source to the last
        # pin snakes ~19 mm while the direct distance is 5 mm. The
        # shortcut's resistance saving dwarfs its capacitance cost, so
        # the first-moment delay must drop.
        net = Net.from_points([(0, 0), (4000, 0), (8000, 0), (8000, 4000),
                               (4000, 4200), (800, 4200)], name="c_shape")
        tree = prim_mst(net)
        base = graph_elmore_delays(tree, tech)
        assert not tree.has_edge(0, 5)
        shortcut = tree.with_edge(0, 5)
        after = graph_elmore_delays(shortcut, tech)
        assert after[5] < base[5]

    def test_paper_premise_extra_edge_can_cut_max_delay(self, tech):
        """The paper's core claim at the Elmore level: for some net,
        adding one edge reduces the max source-sink delay."""
        improved = 0
        for seed in range(10):
            net = Net.random(10, seed=seed)
            tree = prim_mst(net)
            base = graph_elmore_delay(tree, tech)
            best = min(graph_elmore_delay(tree.with_edge(u, v), tech)
                       for u, v in tree.candidate_edges())
            if best < base:
                improved += 1
        assert improved >= 5  # most nets benefit, per Table 2

    def test_max_delay_helper(self, mst10, tech):
        delays = graph_elmore_delays(mst10, tech)
        expected = max(delays[s] for s in range(1, 10))
        assert graph_elmore_delay(mst10, tech) == pytest.approx(expected)

    def test_widths_thread_through(self, mst10, tech):
        base = graph_elmore_delay(mst10, tech)
        stem = next(iter(mst10.edges()))
        wide = graph_elmore_delay(mst10, tech, widths={stem: 3.0})
        assert wide != pytest.approx(base)
