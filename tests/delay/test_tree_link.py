"""Unit tests for Chan–Karplus tree/link partitioning."""

import numpy as np
import pytest

from repro.delay.elmore_graph import graph_elmore_delays
from repro.delay.elmore_tree import elmore_delays
from repro.delay.tree_link import (
    TreeLinkSystem,
    partition_tree_links,
    tree_link_elmore,
)
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError


class TestTreeSolver:
    def test_matches_dense_solve(self, mst10, tech):
        parents, order, _ = partition_tree_links(mst10)
        index = {node: i for i, node in enumerate(order)}
        g_parent = {
            node: 1.0 / (tech.wire_resistance * mst10.edge_length(node, p))
            for node, p in parents.items() if p is not None}
        tree = TreeLinkSystem(order, parents, g_parent,
                              1.0 / tech.driver_resistance, 0)
        n = len(order)
        G = np.zeros((n, n))
        G[index[0], index[0]] += 1.0 / tech.driver_resistance
        for node, parent in parents.items():
            if parent is None:
                continue
            i, j = index[node], index[parent]
            g = g_parent[node]
            G[i, i] += g
            G[j, j] += g
            G[i, j] -= g
            G[j, i] -= g
        rng = np.random.default_rng(7)
        for _ in range(3):
            b = rng.standard_normal(n)
            assert np.allclose(tree.solve(b), np.linalg.solve(G, b),
                               rtol=1e-9, atol=1e-12)

    def test_rejects_wrong_shape(self, mst10, tech):
        parents, order, _ = partition_tree_links(mst10)
        g_parent = {node: 1.0 for node, p in parents.items()
                    if p is not None}
        tree = TreeLinkSystem(order, parents, g_parent, 1.0, 0)
        with pytest.raises(ValueError, match="shape"):
            tree.solve(np.zeros(3))


class TestPartition:
    def test_tree_has_no_links(self, mst10):
        _, order, links = partition_tree_links(mst10)
        assert links == []
        assert len(order) == 10

    def test_each_extra_edge_is_a_link(self, mst10):
        graph = mst10.copy()
        extras = graph.candidate_edges()[:2]
        for edge in extras:
            graph.add_edge(*edge)
        _, _, links = partition_tree_links(graph)
        assert len(links) == 2

    def test_rejects_non_spanning(self, net10):
        with pytest.raises(RoutingGraphError, match="does not span"):
            partition_tree_links(RoutingGraph(net10))


class TestElmoreAgreement:
    def test_equals_tree_formula_on_trees(self, mst10, tech):
        via_formula = elmore_delays(mst10, tech)
        via_tree_link = tree_link_elmore(mst10, tech)
        for node in range(10):
            assert via_tree_link[node] == pytest.approx(
                via_formula[node], rel=1e-9)

    @pytest.mark.parametrize("num_links", [1, 2, 3])
    def test_equals_dense_solve_with_links(self, num_links, tech):
        for seed in range(3):
            net = Net.random(10, seed=seed)
            graph = prim_mst(net)
            for edge in graph.candidate_edges()[:num_links]:
                graph.add_edge(*edge)
            dense = graph_elmore_delays(graph, tech)
            tree_link = tree_link_elmore(graph, tech)
            for node in dense:
                assert tree_link[node] == pytest.approx(dense[node],
                                                        rel=1e-9)

    def test_widths_supported(self, mst10, tech):
        graph = mst10.with_edge(*mst10.candidate_edges()[0])
        widths = {edge: 2.0 for edge in graph.edges()}
        dense = graph_elmore_delays(graph, tech, widths=widths)
        tree_link = tree_link_elmore(graph, tech, widths=widths)
        for node in dense:
            assert tree_link[node] == pytest.approx(dense[node], rel=1e-9)

    def test_link_correction_reduces_delay_at_shortcut(self, tech):
        """Adding a direct source link must not slow the linked sink by
        the first-moment measure on a long-detour net."""
        net = Net.from_points([(0, 0), (4000, 0), (8000, 0), (8000, 4000),
                               (4000, 4200), (800, 4200)])
        tree = prim_mst(net)
        base = tree_link_elmore(tree, tech)
        linked = tree_link_elmore(tree.with_edge(0, 5), tech)
        assert linked[5] < base[5]
