"""Unit tests for the RPH delay bounds."""

import pytest

from repro.delay.bounds import delay_bounds, rph_quantities
from repro.delay.elmore_tree import elmore_delays
from repro.delay.spice_delay import SpiceOptions, spice_delays
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError


class TestRphQuantities:
    def test_single_rc_collapses(self, tech):
        """Two-pin net: T_R == T_D only if all cap hangs at the sink —
        the wire's own cap splits the path, so T_R ≤ T_D ≤ T_P with
        T_P = T_D (single path)."""
        net = Net.from_points([(0, 0), (2000, 0)])
        tree = prim_mst(net)
        q = rph_quantities(tree, tech)[1]
        assert q.t_r <= q.t_d * (1 + 1e-12)
        assert q.t_d == pytest.approx(elmore_delays(tree, tech)[1])
        # On a path graph every node lies on the single source-sink path,
        # but the interior cap's own path resistance is smaller, so
        # T_P >= T_D still holds with equality only in the lumped limit.
        assert q.t_p >= q.t_d * (1 - 1e-12)

    def test_ordering_t_r_t_d_t_p(self, mst10, tech):
        for q in rph_quantities(mst10, tech).values():
            assert q.t_r <= q.t_d * (1 + 1e-9)
            assert q.t_d <= q.t_p * (1 + 1e-9)

    def test_t_d_is_elmore(self, mst10, tech):
        elmore = elmore_delays(mst10, tech)
        for sink, q in rph_quantities(mst10, tech).items():
            assert q.t_d == pytest.approx(elmore[sink], rel=1e-9)

    def test_t_p_shared_across_sinks(self, mst10, tech):
        values = {q.t_p for q in rph_quantities(mst10, tech).values()}
        assert len(values) == 1

    def test_rejects_cyclic_routing(self, mst10, tech):
        cyclic = mst10.with_edge(*mst10.candidate_edges()[0])
        with pytest.raises(RoutingGraphError):
            rph_quantities(cyclic, tech)


class TestDelayBounds:
    @pytest.mark.parametrize("fraction", [0.3, 0.5, 0.9])
    def test_bounds_sandwich_measured_delay(self, tech, fraction):
        for seed in range(4):
            net = Net.random(9, seed=seed)
            tree = prim_mst(net)
            measured = spice_delays(tree, tech,
                                    SpiceOptions(segments=1,
                                                 threshold=fraction))
            bounds = delay_bounds(tree, tech, fraction=fraction)
            for sink, t in measured.items():
                lo, hi = bounds[sink]
                assert lo <= t * (1 + 1e-9)
                assert t <= hi * (1 + 1e-9)

    def test_lower_bound_clamped_at_zero(self, mst10, tech):
        bounds = delay_bounds(mst10, tech, fraction=0.01)
        assert all(lo >= 0.0 for lo, _ in bounds.values())

    def test_bounds_tighten_with_threshold_consistently(self, mst10, tech):
        low = delay_bounds(mst10, tech, fraction=0.3)
        high = delay_bounds(mst10, tech, fraction=0.9)
        for sink in low:
            assert high[sink][0] >= low[sink][0] - 1e-15  # lower rises
            assert high[sink][1] >= low[sink][1] - 1e-15  # upper rises

    def test_fraction_validation(self, mst10, tech):
        with pytest.raises(ValueError, match="fraction"):
            delay_bounds(mst10, tech, fraction=1.0)

    def test_single_rc_exact_forms(self, tech):
        """On one lumped RC the bounds reduce to u >= 1-e^-u analysis:
        lower = T_D - T_P/2 and upper = 2 T_D - T_R at 50%."""
        net = Net.from_points([(0, 0), (1000, 0)])
        tree = prim_mst(net)
        q = rph_quantities(tree, tech)[1]
        lo, hi = delay_bounds(tree, tech, fraction=0.5)[1]
        assert lo == pytest.approx(max(0.0, q.t_d - 0.5 * q.t_p))
        assert hi == pytest.approx(2.0 * q.t_d - q.t_r)
