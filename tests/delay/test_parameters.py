"""Unit tests for the Technology parameter set (paper Table 1)."""

import pytest

from repro.delay.parameters import Technology


class TestTable1Values:
    def test_cmos08_matches_paper(self):
        tech = Technology.cmos08()
        assert tech.driver_resistance == 100.0
        assert tech.wire_resistance == 0.03
        assert tech.wire_capacitance == 0.352e-15
        assert tech.wire_inductance == 492e-15
        assert tech.sink_capacitance == 15.3e-15
        assert tech.region == 10_000.0

    def test_intrinsic_time_constant(self):
        tech = Technology.cmos08()
        assert tech.intrinsic_time_constant() == pytest.approx(
            0.03 * 0.352e-15)


class TestWidthLaws:
    def test_unit_width_reproduces_table1(self, tech):
        assert tech.resistance_per_um(1.0) == tech.wire_resistance
        assert tech.capacitance_per_um(1.0) == pytest.approx(
            tech.wire_capacitance)

    def test_resistance_halves_at_double_width(self, tech):
        assert tech.resistance_per_um(2.0) == pytest.approx(
            tech.wire_resistance / 2.0)

    def test_capacitance_grows_sublinearly(self, tech):
        c1 = tech.capacitance_per_um(1.0)
        c2 = tech.capacitance_per_um(2.0)
        assert c1 < c2 < 2.0 * c1  # fringe term does not scale

    def test_area_fraction_extremes(self):
        all_area = Technology(cap_area_fraction=1.0)
        assert all_area.capacitance_per_um(3.0) == pytest.approx(
            3.0 * all_area.wire_capacitance)
        all_fringe = Technology(cap_area_fraction=0.0)
        assert all_fringe.capacitance_per_um(3.0) == pytest.approx(
            all_fringe.wire_capacitance)

    def test_edge_totals(self, tech):
        assert tech.edge_resistance(1000.0) == pytest.approx(30.0)
        assert tech.edge_capacitance(1000.0) == pytest.approx(0.352e-12)

    @pytest.mark.parametrize("width", [0.0, -1.0])
    def test_rejects_bad_width(self, tech, width):
        with pytest.raises(ValueError, match="width"):
            tech.resistance_per_um(width)
        with pytest.raises(ValueError, match="width"):
            tech.capacitance_per_um(width)
        with pytest.raises(ValueError, match="width"):
            tech.inductance_per_um(width)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("driver_resistance", 0.0),
        ("wire_resistance", -0.1),
        ("wire_capacitance", 0.0),
        ("sink_capacitance", -1e-15),
        ("region", 0.0),
    ])
    def test_rejects_non_positive(self, field, value):
        with pytest.raises(ValueError, match=field):
            Technology(**{field: value})

    def test_rejects_negative_inductance(self):
        with pytest.raises(ValueError, match="inductance"):
            Technology(wire_inductance=-1e-15)

    def test_rejects_bad_area_fraction(self):
        with pytest.raises(ValueError, match="cap_area_fraction"):
            Technology(cap_area_fraction=1.5)

    def test_zero_inductance_allowed(self):
        assert Technology(wire_inductance=0.0).inductance_per_um() == 0.0

    def test_with_driver(self, tech):
        faster = tech.with_driver(25.0)
        assert faster.driver_resistance == 25.0
        assert faster.wire_resistance == tech.wire_resistance
