"""Unit tests for routing-graph → electrical-model builders."""

import numpy as np
import pytest

from repro.delay.rc_builder import (
    build_interconnect_circuit,
    build_reduced_rc,
    edge_key,
    edge_width,
    node_label,
    segment_count_for,
)
from repro.geometry.net import Net
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError


@pytest.fixture
def two_pin() -> RoutingGraph:
    net = Net.from_points([(0, 0), (1000, 0)], name="wire")
    return RoutingGraph.from_edges(net, [(0, 1)])


class TestHelpers:
    def test_edge_key_sorts(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 3) == (1, 3)

    def test_edge_width_default(self):
        assert edge_width(None, 0, 1) == 1.0
        assert edge_width({(0, 1): 2.0}, 1, 0) == 2.0
        assert edge_width({(0, 1): 2.0}, 0, 2) == 1.0

    def test_node_label(self):
        assert node_label(7) == "n7"

    def test_segment_count(self):
        assert segment_count_for(1000.0, 3) == 3
        assert segment_count_for(0.0, 3) == 1
        with pytest.raises(ValueError):
            segment_count_for(1000.0, 0)


class TestReducedRC:
    def test_single_wire_values(self, two_pin, tech):
        sys = build_reduced_rc(two_pin, tech, segments=1)
        assert sys.size == 2
        g_wire = 1.0 / (tech.wire_resistance * 1000.0)
        g_drv = 1.0 / tech.driver_resistance
        G_expected = np.array([[g_drv + g_wire, -g_wire],
                               [-g_wire, g_wire]])
        assert np.allclose(sys.G, G_expected)
        half_wire_cap = tech.wire_capacitance * 1000.0 / 2.0
        assert sys.c[0] == pytest.approx(half_wire_cap)
        assert sys.c[1] == pytest.approx(half_wire_cap + tech.sink_capacitance)
        assert sys.b[0] == pytest.approx(g_drv)
        assert sys.b[1] == 0.0

    def test_total_capacitance_independent_of_segments(self, two_pin, tech):
        totals = [build_reduced_rc(two_pin, tech, segments=s).c.sum()
                  for s in (1, 2, 5)]
        assert totals[0] == pytest.approx(totals[1])
        assert totals[0] == pytest.approx(totals[2])

    def test_segmentation_adds_internal_nodes(self, two_pin, tech):
        sys = build_reduced_rc(two_pin, tech, segments=4)
        assert sys.size == 2 + 3  # 2 pins + 3 internal nodes

    def test_width_scales_conductance_and_cap(self, two_pin, tech):
        unit = build_reduced_rc(two_pin, tech)
        wide = build_reduced_rc(two_pin, tech, widths={(0, 1): 2.0})
        # Wider wire: conductance up...
        assert wide.G[0, 1] == pytest.approx(2.0 * unit.G[0, 1])
        # ...capacitance up but sublinearly (fringe term).
        assert unit.c[0] < wide.c[0] < 2.0 * unit.c[0]

    def test_final_voltages_are_unity(self, mst10, tech):
        sys = build_reduced_rc(mst10, tech)
        assert np.allclose(sys.final_voltages(), 1.0)

    def test_rejects_non_spanning_graph(self, net10, tech):
        graph = RoutingGraph(net10)  # no edges at all
        with pytest.raises(RoutingGraphError, match="does not span"):
            build_reduced_rc(graph, tech)

    def test_labels_expose_graph_nodes(self, mst10, tech):
        sys = build_reduced_rc(mst10, tech, segments=2)
        graph_rows = [lbl for lbl in sys.labels if isinstance(lbl, int)]
        assert sorted(graph_rows) == list(range(10))

    def test_cycles_supported(self, mst10, tech):
        cyclic = mst10.with_edge(*mst10.candidate_edges()[0])
        sys = build_reduced_rc(cyclic, tech)
        assert np.allclose(sys.final_voltages(), 1.0)


class TestInterconnectCircuit:
    def test_driver_chain(self, two_pin, tech):
        ckt = build_interconnect_circuit(two_pin, tech)
        assert "vin" in ckt and "rdrv" in ckt
        assert ckt.element("rdrv").value == tech.driver_resistance

    def test_sink_loads_present(self, mst10, tech):
        ckt = build_interconnect_circuit(mst10, tech)
        # Total capacitance = wire + 9 sink loads.
        total_cap = sum(c.value for c in ckt.capacitors())
        expected = (tech.wire_capacitance * mst10.cost()
                    + 9 * tech.sink_capacitance)
        assert total_cap == pytest.approx(expected)

    def test_inductance_off_by_default(self, two_pin, tech):
        ckt = build_interconnect_circuit(two_pin, tech)
        assert ckt.inductors() == []

    def test_inductance_on_request(self, two_pin, tech):
        ckt = build_interconnect_circuit(two_pin, tech,
                                         include_inductance=True)
        total_l = sum(l.value for l in ckt.inductors())
        assert total_l == pytest.approx(tech.wire_inductance * 1000.0)

    def test_segment_resistances_sum_to_edge_total(self, two_pin, tech):
        ckt = build_interconnect_circuit(two_pin, tech, segments=5)
        wire_r = sum(r.value for r in ckt.resistors() if r.name != "rdrv")
        assert wire_r == pytest.approx(tech.wire_resistance * 1000.0)

    def test_rejects_non_spanning_graph(self, net10, tech):
        with pytest.raises(RoutingGraphError, match="does not span"):
            build_interconnect_circuit(RoutingGraph(net10), tech)

    def test_matches_reduced_rc_electrically(self, mst10, tech):
        """The two builders describe the same physics: equal Elmore."""
        from repro.circuit.moments import elmore_from_moments, node_moments

        sys = build_reduced_rc(mst10, tech, segments=2)
        elmore_reduced = sys.elmore()
        ckt = build_interconnect_circuit(mst10, tech, segments=2)
        moments = node_moments(ckt, count=2)
        for sink in range(1, 10):
            via_mna = elmore_from_moments(moments[node_label(sink)])
            assert via_mna == pytest.approx(
                elmore_reduced[sys.row(sink)], rel=1e-6)
