"""Tests for the incremental candidate-evaluation engine and delay memo."""

import pytest

from repro.delay.incremental import (
    DelayMemo,
    IncrementalElmoreEvaluator,
    MemoizedDelayModel,
    NaiveCandidateEvaluator,
    ParallelCandidateEvaluator,
    get_candidate_evaluator,
    graph_fingerprint,
    memoize_model,
)
from repro.delay.models import (
    CandidateEvaluator,
    ElmoreGraphModel,
    SpiceDelayModel,
)
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import prim_mst

RELATIVE_TOLERANCE = 1e-9


class CountingElmoreModel(ElmoreGraphModel):
    """An Elmore oracle that counts evaluations (and refuses the memo,
    so the count reflects actual calls through any wrapper)."""

    cacheable = False

    def __init__(self, tech):
        super().__init__(tech)
        self.calls = 0

    def delays(self, graph, widths=None):
        self.calls += 1
        return super().delays(graph, widths)


def cyclic_graph(num_pins=7, seed=11, extra_edges=2):
    """An MST plus a couple of chords — a genuinely cyclic routing."""
    graph = prim_mst(Net.random(num_pins, seed=seed))
    for edge in graph.candidate_edges()[:extra_edges]:
        graph.add_edge(*edge)
    return graph


def assert_scores_match(incremental, naive):
    assert len(incremental) == len(naive)
    for got, want in zip(incremental, naive):
        assert got == pytest.approx(want, rel=RELATIVE_TOLERANCE)


class TestGraphFingerprint:
    def test_equal_graphs_collide(self, net10):
        a, b = prim_mst(net10), prim_mst(net10)
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_edge_set_distinguishes(self, net10):
        base = prim_mst(net10)
        chord = base.candidate_edges()[0]
        assert graph_fingerprint(base) != graph_fingerprint(
            base.with_edge(*chord))

    def test_widths_distinguish(self, net10):
        graph = prim_mst(net10)
        edge = next(iter(graph.edges()))
        assert graph_fingerprint(graph, None) != graph_fingerprint(
            graph, {edge: 2.0})
        assert graph_fingerprint(graph, {edge: 2.0}) == graph_fingerprint(
            graph, {edge: 2.0})

    def test_steiner_position_distinguishes(self, net4):
        a, b = prim_mst(net4), prim_mst(net4)
        sa = a.add_steiner_point(Point(100.0, 100.0))
        sb = b.add_steiner_point(Point(200.0, 100.0))
        a.add_edge(0, sa)
        b.add_edge(0, sb)
        assert graph_fingerprint(a) != graph_fingerprint(b)


class TestDelayMemo:
    def test_hit_and_miss_accounting(self):
        memo = DelayMemo(capacity=4)
        assert memo.get(("k",)) is None
        memo.put(("k",), {1: 1.0})
        assert memo.get(("k",)) == {1: 1.0}
        assert (memo.hits, memo.misses) == (1, 1)

    def test_lru_eviction(self):
        memo = DelayMemo(capacity=2)
        memo.put(("a",), {1: 1.0})
        memo.put(("b",), {1: 2.0})
        memo.get(("a",))  # refresh "a": "b" is now least-recent
        memo.put(("c",), {1: 3.0})
        assert memo.get(("b",)) is None
        assert memo.get(("a",)) is not None
        assert memo.get(("c",)) is not None

    def test_copies_in_and_out(self):
        memo = DelayMemo()
        original = {1: 1.0}
        memo.put(("k",), original)
        original[1] = 99.0
        first = memo.get(("k",))
        first[1] = 42.0
        assert memo.get(("k",)) == {1: 1.0}

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            DelayMemo(capacity=0)


class TestMemoizedDelayModel:
    def test_repeated_evaluations_hit_the_cache(self, net10, tech):
        inner = CountingElmoreModel(tech)
        inner.cacheable = True
        model = MemoizedDelayModel(inner, memo=DelayMemo())
        graph = prim_mst(net10)
        first = model.delays(graph)
        second = model.delays(prim_mst(net10))
        assert inner.calls == 1
        assert first == second

    def test_widths_are_part_of_the_key(self, net10, tech):
        inner = CountingElmoreModel(tech)
        inner.cacheable = True
        model = MemoizedDelayModel(inner, memo=DelayMemo())
        graph = prim_mst(net10)
        edge = next(iter(graph.edges()))
        model.delays(graph)
        model.delays(graph, {edge: 3.0})
        assert inner.calls == 2

    def test_name_is_transparent(self, tech):
        assert MemoizedDelayModel(ElmoreGraphModel(tech)).name == "elmore"

    def test_different_models_do_not_collide(self, net10, tech):
        memo = DelayMemo()
        elmore = MemoizedDelayModel(ElmoreGraphModel(tech), memo=memo)
        spice = MemoizedDelayModel(SpiceDelayModel(tech), memo=memo)
        graph = prim_mst(net10)
        assert elmore.delays(graph) != spice.delays(graph)

    def test_memoize_model_passthrough(self, tech):
        wrapped = memoize_model(ElmoreGraphModel(tech))
        assert isinstance(wrapped, MemoizedDelayModel)
        assert memoize_model(wrapped) is wrapped
        uncacheable = CountingElmoreModel(tech)
        assert memoize_model(uncacheable) is uncacheable


class TestIncrementalAgainstNaive:
    def evaluators(self, tech, weights=None):
        model = ElmoreGraphModel(tech)
        return (IncrementalElmoreEvaluator(tech, weights=weights),
                NaiveCandidateEvaluator(model, weights=weights))

    def test_additions_on_cyclic_graph(self, tech):
        graph = cyclic_graph()
        incremental, naive = self.evaluators(tech)
        candidates = graph.candidate_edges()
        assert candidates
        assert_scores_match(incremental.score_additions(graph, candidates),
                            naive.score_additions(graph, candidates))

    def test_additions_weighted_objective(self, tech):
        graph = cyclic_graph(seed=5)
        weights = {s: float(s) for s in graph.sink_indices()}
        incremental, naive = self.evaluators(tech, weights)
        candidates = graph.candidate_edges()
        assert_scores_match(incremental.score_additions(graph, candidates),
                            naive.score_additions(graph, candidates))

    def test_zero_length_candidate_uses_pseudo_short(self, net4, tech):
        graph = prim_mst(net4)
        # A Steiner point coincident with pin 2: the candidate edge to it
        # has zero length and must be scored as the 1 µΩ pseudo-short.
        steiner = graph.add_steiner_point(graph.position(2))
        graph.add_edge(0, steiner)
        incremental, naive = self.evaluators(tech)
        candidates = [(steiner, 2), (1, steiner)]
        assert graph.distance(steiner, 2) == 0.0
        assert_scores_match(incremental.score_additions(graph, candidates),
                            naive.score_additions(graph, candidates))

    def test_steiner_point_candidates(self, net10, tech):
        graph = prim_mst(net10)
        steiner = graph.add_steiner_point(Point(1500.0, 2500.0))
        graph.add_edge(0, steiner)
        incremental, naive = self.evaluators(tech)
        candidates = [(steiner, s) for s in graph.sink_indices()]
        assert_scores_match(incremental.score_additions(graph, candidates),
                            naive.score_additions(graph, candidates))

    def test_width_upgrades(self, tech):
        graph = cyclic_graph(seed=23)
        widths = {edge: 1.0 for edge in graph.edges()}
        upgrades = [(edge, 2.0) for edge in graph.edges()]
        incremental, naive = self.evaluators(tech)
        assert_scores_match(
            incremental.score_width_upgrades(graph, widths, upgrades),
            naive.score_width_upgrades(graph, widths, upgrades))

    def test_width_upgrade_on_zero_length_edge_is_noop(self, net4, tech):
        graph = prim_mst(net4)
        steiner = graph.add_steiner_point(graph.position(1))
        graph.add_edge(1, steiner)
        graph.add_edge(0, steiner)
        widths = {edge: 1.0 for edge in graph.edges()}
        upgrades = [((1, steiner), 4.0)]
        incremental, naive = self.evaluators(tech)
        assert_scores_match(
            incremental.score_width_upgrades(graph, widths, upgrades),
            naive.score_width_upgrades(graph, widths, upgrades))

    def test_empty_batches(self, net10, tech):
        graph = prim_mst(net10)
        incremental, _ = self.evaluators(tech)
        assert incremental.score_additions(graph, []) == []
        assert incremental.score_width_upgrades(graph, {}, []) == []


class TestParallelEvaluator:
    def test_matches_naive(self, tech):
        graph = cyclic_graph(num_pins=5, seed=2, extra_edges=1)
        model = ElmoreGraphModel(tech)
        parallel = ParallelCandidateEvaluator(model, workers=2)
        naive = NaiveCandidateEvaluator(model)
        candidates = graph.candidate_edges()[:4]
        assert_scores_match(parallel.score_additions(graph, candidates),
                            naive.score_additions(graph, candidates))

    def test_rejects_zero_workers(self, tech):
        with pytest.raises(ValueError):
            ParallelCandidateEvaluator(ElmoreGraphModel(tech), workers=0)


class TestGetCandidateEvaluator:
    def test_auto_picks_incremental_for_elmore(self, tech):
        evaluator = get_candidate_evaluator(ElmoreGraphModel(tech))
        assert isinstance(evaluator, IncrementalElmoreEvaluator)

    def test_auto_unwraps_memoized_models(self, tech):
        memoized = memoize_model(ElmoreGraphModel(tech))
        evaluator = get_candidate_evaluator(memoized)
        assert isinstance(evaluator, IncrementalElmoreEvaluator)

    def test_auto_falls_back_to_naive(self, tech):
        evaluator = get_candidate_evaluator(SpiceDelayModel(tech))
        assert isinstance(evaluator, NaiveCandidateEvaluator)

    def test_incremental_requires_elmore(self, tech):
        with pytest.raises(ValueError, match="graph-Elmore"):
            get_candidate_evaluator(SpiceDelayModel(tech), mode="incremental")

    def test_unknown_mode_raises(self, tech):
        with pytest.raises(ValueError, match="unknown candidate evaluator"):
            get_candidate_evaluator(ElmoreGraphModel(tech), mode="bogus")

    def test_all_evaluators_satisfy_the_protocol(self, tech):
        for mode in ("incremental", "naive", "parallel"):
            evaluator = get_candidate_evaluator(
                ElmoreGraphModel(tech), mode=mode)
            assert isinstance(evaluator, CandidateEvaluator)
