"""Tests for the fleet-scale batched evaluation backend."""

import numpy as np
import pytest

from repro.core.ldrg import ldrg
from repro.delay.incremental import (
    DelayMemo,
    IncrementalElmoreEvaluator,
    MemoizedDelayModel,
    NaiveCandidateEvaluator,
    get_candidate_evaluator,
    graph_fingerprint,
    memoize_model,
)
from repro.delay.models import ElmoreGraphModel, SpiceDelayModel
from repro.delay.multinet import (
    FleetEvaluator,
    _batched_spd_inverse,
    route_fleet,
)
from repro.delay.parameters import Technology
from repro.delay.xp import resolve_backend
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.guard.incidents import KIND_FALLBACK
from repro.runtime import provenance

TECH = Technology.cmos08()
RELATIVE_TOLERANCE = 1e-9


def cyclic_graph(num_pins=7, seed=11, extra_edges=2):
    graph = prim_mst(Net.random(num_pins, seed=seed))
    for edge in graph.candidate_edges()[:extra_edges]:
        graph.add_edge(*edge)
    return graph


def assert_scores_match(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g == pytest.approx(w, rel=RELATIVE_TOLERANCE)


class TestFleetEvaluator:
    def test_single_net_matches_incremental(self):
        graph = cyclic_graph()
        candidates = graph.candidate_edges()
        fleet = FleetEvaluator(TECH)
        incremental = IncrementalElmoreEvaluator(TECH)
        assert_scores_match(fleet.score_additions(graph, candidates),
                            incremental.score_additions(graph, candidates))

    def test_generation_base_delays_match_oracle(self):
        graphs = [cyclic_graph(seed=s) for s in (3, 4, 5)]
        fleet = FleetEvaluator(TECH)
        delays, _ = fleet.evaluate_generation(
            graphs, [g.candidate_edges() for g in graphs])
        oracle = ElmoreGraphModel(TECH)
        for graph, got in zip(graphs, delays):
            want = oracle.delays(graph)
            assert set(got) == set(want)
            for sink in want:
                assert got[sink] == pytest.approx(
                    want[sink], rel=RELATIVE_TOLERANCE)

    def test_batch_composition_invariance(self):
        """A net's numbers are bitwise independent of its batch-mates."""
        graphs = [cyclic_graph(num_pins=5 + (s % 3), seed=s)
                  for s in range(6)]
        batches = [g.candidate_edges() for g in graphs]
        fleet = FleetEvaluator(TECH)
        whole_delays, whole_scores = fleet.evaluate_generation(graphs,
                                                               batches)
        for i, graph in enumerate(graphs):
            alone_delays, alone_scores = FleetEvaluator(
                TECH).evaluate_generation([graph], [batches[i]])
            assert alone_scores[0] == whole_scores[i]
            assert alone_delays[0] == whole_delays[i]

    def test_mixed_shapes_group_without_padding(self):
        graphs = [cyclic_graph(num_pins=p, seed=p) for p in (4, 9, 4, 6)]
        batches = [g.candidate_edges() for g in graphs]
        _, scores = FleetEvaluator(TECH).evaluate_generation(graphs, batches)
        naive = NaiveCandidateEvaluator(ElmoreGraphModel(TECH))
        for graph, batch, got in zip(graphs, batches, scores):
            assert_scores_match(got, naive.score_additions(graph, batch))

    def test_weighted_objective(self):
        graph = cyclic_graph(seed=23)
        weights = {s: 0.5 + (s % 3) for s in graph.sink_indices()}
        candidates = graph.candidate_edges()
        fleet = FleetEvaluator(TECH, weights=weights)
        naive = NaiveCandidateEvaluator(ElmoreGraphModel(TECH),
                                        weights=weights)
        assert_scores_match(fleet.score_additions(graph, candidates),
                            naive.score_additions(graph, candidates))

    def test_width_upgrades_match_incremental(self):
        graph = cyclic_graph(seed=31)
        widths = {edge: 1.0 for edge in graph.edges()}
        upgrades = [(edge, 3.0) for edge in graph.edges()]
        fleet = FleetEvaluator(TECH)
        incremental = IncrementalElmoreEvaluator(TECH)
        assert_scores_match(
            fleet.score_width_upgrades(graph, widths, upgrades),
            incremental.score_width_upgrades(graph, widths, upgrades))

    def test_empty_candidate_batches(self):
        graph = prim_mst(Net.random(4, seed=2))
        delays, scores = FleetEvaluator(TECH).evaluate_generation(
            [graph], [[]])
        assert scores == [[]]
        assert delays[0]
        assert FleetEvaluator(TECH).score_additions(graph, []) == []

    def test_fleet_mismatch_rejected(self):
        graph = prim_mst(Net.random(4, seed=2))
        with pytest.raises(ValueError, match="fleet mismatch"):
            FleetEvaluator(TECH).evaluate_generation([graph], [[], []])

    def test_registered_with_get_candidate_evaluator(self):
        evaluator = get_candidate_evaluator(ElmoreGraphModel(TECH),
                                            mode="multinet")
        graph = cyclic_graph(seed=41)
        candidates = graph.candidate_edges()
        naive = NaiveCandidateEvaluator(ElmoreGraphModel(TECH))
        assert_scores_match(evaluator.score_additions(graph, candidates),
                            naive.score_additions(graph, candidates))


class TestMemoIdentity:
    def test_memo_key_is_per_net_fingerprint_not_batch_position(self):
        """The same graph must hit the memo wherever it sits in a batch."""
        a = cyclic_graph(num_pins=5, seed=1, extra_edges=0)
        b = cyclic_graph(num_pins=5, seed=2, extra_edges=0)
        memo = DelayMemo()
        first = FleetEvaluator(TECH, memo=memo)
        first.evaluate_generation([a, b], [[], []])
        assert memo.misses == 2 and memo.hits == 0
        # Reversed batch order: both members must hit, not miss.
        second = FleetEvaluator(TECH, memo=memo)
        second.evaluate_generation([b, a], [[], []])
        assert memo.hits == 2

    def test_memo_shared_with_sequential_path(self):
        graph = cyclic_graph(num_pins=6, seed=3, extra_edges=1)
        memo = DelayMemo()
        model = MemoizedDelayModel(ElmoreGraphModel(TECH), memo=memo)
        sequential = model.delays(graph)
        hits_before = memo.hits
        fleet_delays, _ = FleetEvaluator(TECH, memo=memo).evaluate_generation(
            [graph], [[]])
        assert memo.hits == hits_before + 1
        # The memo replays the sequential numbers verbatim.
        assert fleet_delays[0] == dict(sequential)
        key = (ElmoreGraphModel(TECH).memo_key(), graph_fingerprint(graph))
        assert memo.get(key) is not None


class TestFactorizationFallback:
    def test_singular_stack_falls_back_with_event(self):
        xp = resolve_backend("numpy")
        stack = np.zeros((2, 3, 3))  # singular: cholesky must reject
        with provenance.collecting() as events:
            with pytest.raises(Exception):
                _batched_spd_inverse(stack, xp, "multinet-base")
        kinds = [(e.kind, e.target) for e in events]
        assert (KIND_FALLBACK, "guarded-factorization") in kinds


class TestFallbackProvenance:
    """The PR's explicit-fallback sweep: silent detours now leave events."""

    def test_memoize_model_uncacheable_records_event(self):
        model = SpiceDelayModel(TECH)
        model.cacheable = False
        with provenance.collecting() as events:
            wrapped = memoize_model(model)
        assert wrapped is model
        assert any(e.kind == KIND_FALLBACK and e.target == "uncached"
                   for e in events)

    def test_auto_evaluator_non_elmore_records_event(self):
        with provenance.collecting() as events:
            evaluator = get_candidate_evaluator(SpiceDelayModel(TECH),
                                                mode="auto")
        assert isinstance(evaluator, NaiveCandidateEvaluator)
        assert any(e.kind == KIND_FALLBACK and e.target == "naive"
                   for e in events)

    def test_auto_evaluator_elmore_records_nothing(self):
        with provenance.collecting() as events:
            get_candidate_evaluator(ElmoreGraphModel(TECH), mode="auto")
        assert not [e for e in events if e.kind == KIND_FALLBACK]


class TestRouteFleet:
    def test_matches_sequential_ldrg(self):
        nets = [Net.random(3 + (i % 5), seed=200 + i, name=f"n{i}")
                for i in range(8)]
        sequential = [ldrg(net, TECH, delay_model="elmore",
                           candidate_evaluator="incremental")
                      for net in nets]
        fleet = route_fleet(nets, TECH)
        for seq, bat in zip(sequential, fleet):
            assert sorted(seq.graph.edges()) == sorted(bat.graph.edges())
            assert seq.num_added_edges == bat.num_added_edges
            for sink, want in seq.delays.items():
                assert bat.delays[sink] == pytest.approx(
                    want, rel=RELATIVE_TOLERANCE)

    def test_fleet_equals_singleton_fleets_bitwise(self):
        nets = [Net.random(4 + (i % 4), seed=300 + i, name=f"s{i}")
                for i in range(6)]
        whole = route_fleet(nets, TECH)
        for net, batched in zip(nets, whole):
            alone = route_fleet([net], TECH)[0]
            assert batched.delays == alone.delays
            assert sorted(batched.graph.edges()) == sorted(
                alone.graph.edges())
            assert batched.history == alone.history

    def test_shuffled_fleet_is_order_invariant(self):
        nets = [Net.random(4 + (i % 3), seed=400 + i, name=f"p{i}")
                for i in range(7)]
        ordered = route_fleet(nets, TECH)
        order = [3, 6, 0, 5, 1, 4, 2]
        shuffled = route_fleet([nets[i] for i in order], TECH)
        for position, index in enumerate(order):
            assert shuffled[position].delays == ordered[index].delays
            assert sorted(shuffled[position].graph.edges()) == sorted(
                ordered[index].graph.edges())

    def test_empty_fleet(self):
        assert route_fleet([], TECH) == []

    def test_max_added_edges_cap(self):
        nets = [Net.random(7, seed=500 + i) for i in range(3)]
        capped = route_fleet(nets, TECH, max_added_edges=1)
        for result in capped:
            assert result.num_added_edges <= 1

    def test_explicit_memo_records_per_net_entries(self):
        nets = [Net.random(5, seed=600 + i) for i in range(3)]
        memo = DelayMemo()
        route_fleet(nets, TECH, memo=memo)
        assert len(memo) > 0

    def test_algorithm_label_stamped(self):
        nets = [Net.random(4, seed=700)]
        result = route_fleet(nets, TECH, algorithm="sldrg")[0]
        assert result.algorithm == "sldrg"
