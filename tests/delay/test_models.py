"""Unit tests for the DelayModel oracle interface."""

import pytest

from repro.delay.models import (
    DelayModel,
    ElmoreGraphModel,
    ElmoreTreeModel,
    SpiceDelayModel,
    TwoPoleModel,
    get_delay_model,
)
from repro.delay.spice_delay import SpiceOptions


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("spice", SpiceDelayModel),
        ("elmore", ElmoreGraphModel),
        ("elmore-graph", ElmoreGraphModel),
        ("elmore-tree", ElmoreTreeModel),
        ("two-pole", TwoPoleModel),
    ])
    def test_string_shortcuts(self, name, cls, tech):
        model = get_delay_model(name, tech)
        assert isinstance(model, cls)
        assert model.tech is tech

    def test_instances_pass_through(self, tech):
        model = ElmoreGraphModel(tech)
        assert get_delay_model(model, tech) is model

    def test_unknown_name_rejected(self, tech):
        with pytest.raises(ValueError, match="unknown delay model"):
            get_delay_model("hspice", tech)


class TestModelBehavior:
    def test_all_models_agree_on_ordering(self, mst10, tech):
        """Different estimators disagree on absolute numbers but must
        agree on which sink is slowest for a clearly-skewed tree."""
        models = [SpiceDelayModel(tech), ElmoreGraphModel(tech),
                  ElmoreTreeModel(tech), TwoPoleModel(tech)]
        worst = {type(m).__name__: max(m.delays(mst10), key=m.delays(mst10).get)
                 for m in models}
        assert len(set(worst.values())) == 1

    def test_max_delay_consistent_with_delays(self, mst10, tech):
        model = ElmoreGraphModel(tech)
        assert model.max_delay(mst10) == pytest.approx(
            max(model.delays(mst10).values()))

    def test_weighted_delay(self, mst10, tech):
        model = ElmoreGraphModel(tech)
        delays = model.delays(mst10)
        weights = {1: 2.0, 3: 1.0}
        expected = 2.0 * delays[1] + delays[3]
        assert model.weighted_delay(mst10, weights) == pytest.approx(expected)

    def test_elmore_upper_bounds_spice(self, mst10, tech):
        """Elmore is a (loose) upper bound for the 50% delay on RC trees
        (Rubinstein-Penfield-Horowitz)."""
        spice = SpiceDelayModel(tech).delays(mst10)
        elmore = ElmoreGraphModel(tech).delays(mst10)
        for sink in spice:
            assert spice[sink] <= elmore[sink] * 1.001

    def test_two_pole_closer_than_elmore(self, mst10, tech):
        spice = SpiceDelayModel(tech, SpiceOptions(segments=1)).delays(mst10)
        elmore = ElmoreGraphModel(tech).delays(mst10)
        two_pole = TwoPoleModel(tech).delays(mst10)
        worst = max(spice, key=spice.get)
        assert (abs(two_pole[worst] - spice[worst])
                < abs(elmore[worst] - spice[worst]))

    def test_elmore_tree_rejects_cycles(self, mst10, tech):
        from repro.graph.routing_graph import RoutingGraphError

        cyclic = mst10.with_edge(*mst10.candidate_edges()[0])
        with pytest.raises(RoutingGraphError):
            ElmoreTreeModel(tech).delays(cyclic)
        # while the graph model accepts them:
        assert ElmoreGraphModel(tech).delays(cyclic)

    def test_two_pole_threshold_validation(self, tech):
        with pytest.raises(ValueError, match="threshold"):
            TwoPoleModel(tech, threshold=1.5)

    def test_spice_model_honors_options(self, mst10, tech):
        coarse = SpiceDelayModel(tech, SpiceOptions(segments=1))
        fine = SpiceDelayModel(tech, SpiceOptions(segments=8))
        worst = max(fine.delays(mst10).values())
        assert max(coarse.delays(mst10).values()) == pytest.approx(
            worst, rel=0.05)

    def test_repr(self, tech):
        assert "spice" in repr(SpiceDelayModel(tech))
