"""Unit tests for the O(k) Elmore tree formula (paper equation (1))."""

import pytest

from repro.delay.elmore_tree import (
    elmore_delays,
    elmore_delays_component,
    elmore_tree_delay,
)
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError


class TestHandComputedChain:
    def test_two_pin_net(self, tech):
        net = Net.from_points([(0, 0), (1000, 0)])
        tree = RoutingGraph.from_edges(net, [(0, 1)])
        delays = elmore_delays(tree, tech)
        r_e = tech.wire_resistance * 1000.0
        c_e = tech.wire_capacitance * 1000.0
        c_total = c_e + tech.sink_capacitance
        expected_root = tech.driver_resistance * c_total
        expected_sink = expected_root + r_e * (c_e / 2.0 + tech.sink_capacitance)
        assert delays[0] == pytest.approx(expected_root)
        assert delays[1] == pytest.approx(expected_sink)

    def test_three_pin_chain(self, tech, line_net):
        tree = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        delays = elmore_delays(tree, tech)
        r = tech.wire_resistance * 1000.0
        c = tech.wire_capacitance * 1000.0
        cs = tech.sink_capacitance
        total = 2 * c + 2 * cs
        t0 = tech.driver_resistance * total
        t1 = t0 + r * (c / 2.0 + (cs + c + cs))
        t2 = t1 + r * (c / 2.0 + cs)
        assert delays[1] == pytest.approx(t1)
        assert delays[2] == pytest.approx(t2)

    def test_max_delay_helper(self, tech, line_net):
        tree = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        delays = elmore_delays(tree, tech)
        assert elmore_tree_delay(tree, tech) == pytest.approx(delays[2])


class TestStructuralBehavior:
    def test_delay_increases_along_paths(self, mst10, tech):
        delays = elmore_delays(mst10, tech)
        parents = mst10.rooted_parents()
        for node, parent in parents.items():
            if parent is not None:
                assert delays[node] > delays[parent]

    def test_steiner_nodes_add_no_sink_load(self, tech):
        # Same geometry, once with a pin and once with a Steiner point at
        # the junction: the Steiner version must be strictly faster.
        net_pin = Net.from_points([(0, 0), (500, 0), (1000, 0)])
        tree_pin = RoutingGraph.from_edges(net_pin, [(0, 1), (1, 2)])
        net_st = Net.from_points([(0, 0), (1000, 0)])
        tree_st = RoutingGraph(net_st)
        mid = tree_st.add_steiner_point(Point(500, 0))
        tree_st.add_edge(0, mid)
        tree_st.add_edge(mid, 1)
        end_with_pin = elmore_delays(tree_pin, tech)[2]
        end_with_steiner = elmore_delays(tree_st, tech)[1]
        assert end_with_steiner < end_with_pin

    def test_rejects_cyclic_routing(self, mst10, tech):
        cyclic = mst10.with_edge(*mst10.candidate_edges()[0])
        with pytest.raises(RoutingGraphError):
            elmore_delays(cyclic, tech)

    def test_width_tradeoff_depends_on_driver(self, tech):
        # Widening the stem trades its resistance against extra driver-
        # visible capacitance. With the paper's 100-ohm driver and short
        # wires the capacitance side wins; with a strong driver and long
        # wires the resistance side wins. Both directions are physics the
        # model must reproduce.
        long_net = Net.from_points([(0, 0), (5000, 0), (10000, 0)])
        tree = RoutingGraph.from_edges(long_net, [(0, 1), (1, 2)])
        widths = {(0, 1): 4.0}

        weak_driver = tech  # 100 ohm, wire R per edge = 150 ohm
        base = elmore_delays(tree, weak_driver)
        wide = elmore_delays(tree, weak_driver, widths=widths)
        strong_driver = tech.with_driver(5.0)
        base_strong = elmore_delays(tree, strong_driver)
        wide_strong = elmore_delays(tree, strong_driver, widths=widths)

        assert wide_strong[2] < base_strong[2]  # widening pays off
        # Relative benefit must shrink as the driver weakens.
        assert (wide[2] / base[2]) > (wide_strong[2] / base_strong[2])


class TestComponentVariant:
    def test_matches_full_on_complete_tree(self, mst10, tech):
        full = elmore_delays(mst10, tech)
        component = elmore_delays_component(mst10, tech)
        assert component == pytest.approx(full)

    def test_partial_tree(self, tech, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1)])  # pin 2 isolated
        delays = elmore_delays_component(graph, tech)
        assert set(delays) == {0, 1}
        # The isolated pin contributes neither load nor delay.
        solo_net = Net.from_points([(0, 0), (1000, 0)])
        solo = RoutingGraph.from_edges(solo_net, [(0, 1)])
        assert delays[1] == pytest.approx(elmore_delays(solo, tech)[1])

    def test_cycle_in_component_rejected(self, tech):
        net = Net.from_points([(0, 0), (10, 0), (10, 10), (5000, 5000)])
        graph = RoutingGraph.from_edges(net, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(RoutingGraphError, match="cycle"):
            elmore_delays_component(graph, tech)
