"""Unit tests for the SPICE-level delay oracle."""

import pytest

from repro.delay.elmore_graph import graph_elmore_delays
from repro.delay.spice_delay import SpiceOptions, spice_delay, spice_delays
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph


class TestSpiceOptions:
    def test_defaults(self):
        opts = SpiceOptions()
        assert opts.segments == 3
        assert opts.threshold == 0.5
        assert opts.engine == "analytic"

    @pytest.mark.parametrize("kwargs", [
        {"segments": 0},
        {"threshold": 0.0},
        {"threshold": 1.0},
        {"engine": "hspice"},
        {"include_inductance": True},  # analytic engine is RC-only
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SpiceOptions(**kwargs)

    def test_inductance_allowed_with_transient(self):
        opts = SpiceOptions(engine="transient", include_inductance=True)
        assert opts.include_inductance

    def test_with_segments(self):
        assert SpiceOptions().with_segments(7).segments == 7


class TestSingleWirePhysics:
    def test_two_pin_delay_between_bounds(self, tech):
        """50% delay of an RC wire lies below its Elmore delay (the first
        moment over-weights the tail) and above ln2 x the driver-only
        estimate."""
        net = Net.from_points([(0, 0), (5000, 0)])
        tree = prim_mst(net)
        measured = spice_delay(tree, tech)
        elmore = graph_elmore_delays(tree, tech)[1]
        assert 0.3 * elmore < measured < elmore

    def test_longer_wire_is_slower(self, tech):
        short = prim_mst(Net.from_points([(0, 0), (2000, 0)]))
        long = prim_mst(Net.from_points([(0, 0), (8000, 0)]))
        assert spice_delay(long, tech) > spice_delay(short, tech)

    def test_threshold_monotonicity(self, tech):
        tree = prim_mst(Net.from_points([(0, 0), (5000, 0)]))
        d30 = spice_delay(tree, tech, SpiceOptions(threshold=0.3))
        d50 = spice_delay(tree, tech, SpiceOptions(threshold=0.5))
        d90 = spice_delay(tree, tech, SpiceOptions(threshold=0.9))
        assert d30 < d50 < d90


class TestEngineAgreement:
    def test_analytic_vs_transient_on_mst(self, mst10, tech):
        analytic = spice_delays(mst10, tech, SpiceOptions(segments=2))
        numeric = spice_delays(mst10, tech, SpiceOptions(
            engine="transient", segments=2, num_steps=4000))
        for sink in analytic:
            assert numeric[sink] == pytest.approx(analytic[sink], rel=0.02)

    def test_analytic_vs_transient_on_cyclic_graph(self, mst10, tech):
        cyclic = mst10.with_edge(*mst10.candidate_edges()[0])
        analytic = spice_delays(cyclic, tech, SpiceOptions(segments=2))
        numeric = spice_delays(cyclic, tech, SpiceOptions(
            engine="transient", segments=2, num_steps=4000))
        worst = max(analytic, key=analytic.get)
        assert numeric[worst] == pytest.approx(analytic[worst], rel=0.02)


class TestAPI:
    def test_delays_cover_exactly_the_sinks(self, mst10, tech):
        delays = spice_delays(mst10, tech)
        assert set(delays) == set(range(1, 10))

    def test_spice_delay_is_max(self, mst10, tech):
        delays = spice_delays(mst10, tech)
        assert spice_delay(mst10, tech) == pytest.approx(max(delays.values()))

    def test_steiner_nodes_not_reported(self, net10, tech):
        from repro.graph.steiner import iterated_one_steiner

        tree = iterated_one_steiner(net10)
        delays = spice_delays(tree, tech)
        assert set(delays) == set(range(1, 10))

    def test_non_spanning_graph_rejected(self, net10, tech):
        from repro.graph.routing_graph import RoutingGraphError

        with pytest.raises(RoutingGraphError):
            spice_delays(RoutingGraph(net10), tech)

    def test_deterministic(self, mst10, tech):
        assert spice_delays(mst10, tech) == spice_delays(mst10, tech)
