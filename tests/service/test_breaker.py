"""Per-engine circuit breakers: state machine, probes, attribution."""

from __future__ import annotations

import pytest

from repro.runtime.provenance import KIND_DEGRADE, ProvenanceEvent
from repro.runtime.trial import TrialFailure, TrialResult
from repro.service.breaker import (
    BREAKER_SOURCE_PREFIX,
    BreakerBoard,
    BreakerPolicy,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)

ENGINES = ("ngspice", "transient", "analytic")


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def board(threshold=3, cooldown=10.0):
    clock = FakeClock()
    return BreakerBoard(ENGINES,
                        BreakerPolicy(failure_threshold=threshold,
                                      cooldown=cooldown),
                        clock=clock), clock


def result(provenance=()):
    return TrialResult(algorithm="ldrg", model="resilient(spice-ngspice)",
                       delay=1.0, cost=1.0, base_delay=1.0, base_cost=1.0,
                       provenance=tuple(provenance))


def degrade(source, target):
    return ProvenanceEvent(kind=KIND_DEGRADE, source=source, target=target)


class TestStateMachine:
    def test_threshold_consecutive_failures_open(self):
        brd, _ = board(threshold=3)
        for _ in range(2):
            brd.record_failure("ngspice")
        assert brd.state_of("ngspice") == STATE_CLOSED
        brd.record_failure("ngspice")
        assert brd.state_of("ngspice") == STATE_OPEN
        assert brd.open_engines() == frozenset({"ngspice"})

    def test_success_resets_the_consecutive_count(self):
        brd, _ = board(threshold=2)
        brd.record_failure("ngspice")
        brd.record_success("ngspice")
        brd.record_failure("ngspice")
        assert brd.state_of("ngspice") == STATE_CLOSED

    def test_cooldown_elapses_into_half_open_with_one_probe(self):
        brd, clock = board(threshold=1, cooldown=10.0)
        brd.record_failure("ngspice")
        assert brd.open_engines() == frozenset({"ngspice"})
        clock.now += 10.0
        # the first dispatch after cooldown is the probe: not skipped
        assert brd.open_engines() == frozenset()
        assert brd.state_of("ngspice") == STATE_HALF_OPEN
        # everyone else keeps skipping while the probe is in flight
        assert brd.open_engines() == frozenset({"ngspice"})

    def test_probe_success_closes(self):
        brd, clock = board(threshold=1, cooldown=1.0)
        brd.record_failure("ngspice")
        clock.now += 1.0
        brd.open_engines()  # dispatches the probe
        brd.record_success("ngspice")
        assert brd.state_of("ngspice") == STATE_CLOSED
        assert brd.open_engines() == frozenset()

    def test_probe_failure_reopens_for_another_cooldown(self):
        brd, clock = board(threshold=3, cooldown=1.0)
        for _ in range(3):
            brd.record_failure("ngspice")
        clock.now += 1.0
        brd.open_engines()
        brd.record_failure("ngspice")  # one probe failure re-trips
        assert brd.state_of("ngspice") == STATE_OPEN
        assert brd.open_engines() == frozenset({"ngspice"})

    def test_engine_of_record_follows_the_skip_set(self):
        brd, _ = board()
        assert brd.engine_of_record(frozenset()) == "ngspice"
        assert brd.engine_of_record(frozenset({"ngspice"})) == "transient"
        assert brd.engine_of_record(
            frozenset(ENGINES)) == "analytic"  # last resort stays


class TestOutcomeAttribution:
    def test_clean_result_credits_the_engine_of_record(self):
        brd, _ = board(threshold=1)
        brd.record_failure("ngspice")
        brd._breakers["ngspice"].state = STATE_HALF_OPEN
        brd.observe(result(), "ngspice")
        assert brd.state_of("ngspice") == STATE_CLOSED

    def test_degrade_event_debits_source_credits_target(self):
        brd, _ = board(threshold=1)
        brd.observe(result([degrade("spice-ngspice", "spice-transient")]),
                    "ngspice")
        assert brd.state_of("ngspice") == STATE_OPEN
        assert brd.state_of("transient") == STATE_CLOSED

    def test_breaker_originated_skip_is_not_a_failure(self):
        brd, _ = board(threshold=1)
        brd.observe(result([degrade(f"{BREAKER_SOURCE_PREFIX}ngspice",
                                    "spice-transient")]),
                    "ngspice")
        assert brd.state_of("ngspice") == STATE_CLOSED

    def test_terminal_failure_kinds_debit_engine_of_record(self):
        brd, _ = board(threshold=1)
        brd.observe(TrialFailure(kind="timeout", error_type="TrialTimeout",
                                 message="budget"), "transient")
        assert brd.state_of("transient") == STATE_OPEN

    def test_plain_exception_failures_do_not_trip(self):
        brd, _ = board(threshold=1)
        brd.observe(TrialFailure(kind="exception", error_type="ValueError",
                                 message="bad input"), "transient")
        assert brd.state_of("transient") == STATE_CLOSED

    def test_unknown_engine_names_are_ignored(self):
        brd, _ = board(threshold=1)
        brd.record_failure("warp-drive")  # no such rung: no crash
        assert brd.to_json_dict().keys() == set(ENGINES)


class TestReporting:
    def test_json_dict_shape(self):
        brd, _ = board(threshold=1)
        brd.record_failure("ngspice")
        state = brd.to_json_dict()["ngspice"]
        assert state["state"] == STATE_OPEN
        assert state["opened_total"] == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown=0.0)
