"""The deterministic service-fault stream."""

from __future__ import annotations

import json

import pytest

from repro.geometry.random_nets import random_net
from repro.service import ServiceFaultPlan, build_fault_stream
from repro.service.session import INJECT_KILL


def nets(n, pins=3):
    return [random_net(pins, seed=100 + i) for i in range(n)]


class TestPlanValidation:
    def test_rates_must_be_fractions(self):
        with pytest.raises(ValueError):
            ServiceFaultPlan(kill_rate=1.5)
        with pytest.raises(ValueError):
            ServiceFaultPlan(malformed_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError, match="sum"):
            ServiceFaultPlan(kill_rate=0.5, malformed_rate=0.6)

    def test_fault_rate_totals(self):
        plan = ServiceFaultPlan(kill_rate=0.1, storm_rate=0.2)
        assert plan.fault_rate == pytest.approx(0.3)


class TestStream:
    def test_deterministic(self):
        plan = ServiceFaultPlan(seed=7, kill_rate=0.05,
                                malformed_rate=0.05, storm_rate=0.05,
                                chaos_rate=0.05)
        batch = nets(50)
        assert (build_fault_stream(plan, batch)
                == build_fault_stream(plan, batch))

    def test_seed_changes_stream(self):
        batch = nets(50)
        plan = ServiceFaultPlan(seed=1, malformed_rate=0.3)
        other = ServiceFaultPlan(seed=2, malformed_rate=0.3)
        assert (build_fault_stream(plan, batch)
                != build_fault_stream(other, batch))

    def test_no_faults_means_clean_frames(self):
        lines = build_fault_stream(ServiceFaultPlan(), nets(10),
                                   algorithm="h1", deadline=5.0)
        assert len(lines) == 10
        for line in lines:
            frame = json.loads(line)
            assert frame["op"] == "route"
            assert frame["algorithm"] == "h1"
            assert frame["deadline"] == 5.0
            assert "inject" not in frame

    def test_fault_mix_lands_roughly_at_rates(self):
        plan = ServiceFaultPlan(seed=3, kill_rate=0.1, malformed_rate=0.1,
                                storm_rate=0.1, chaos_rate=0.1)
        lines = build_fault_stream(plan, nets(300))
        kills = storms = chaos = malformed = 0
        for line in lines:
            try:
                frame = json.loads(line)
            except ValueError:
                malformed += 1
                continue
            if not isinstance(frame, dict) or "net" not in frame:
                malformed += 1
            elif frame.get("inject") == INJECT_KILL:
                kills += 1
            elif frame.get("inject") in ("raise", "nan"):
                chaos += 1
            elif frame.get("deadline") == plan.storm_deadline:
                storms += 1
        for count in (kills, malformed, storms, chaos):
            assert 10 <= count <= 60  # ~30 expected of 300

    def test_duplicates_reuse_frame_with_fresh_id(self):
        lines = build_fault_stream(ServiceFaultPlan(), nets(6),
                                   duplicate_every=2)
        frames = [json.loads(line) for line in lines]
        assert len(frames) == 9  # 6 originals + 3 duplicates
        dups = [f for f in frames if str(f["id"]).endswith("-dup")]
        assert len(dups) == 3
        by_id = {f["id"]: f for f in frames}
        for dup in dups:
            original = by_id[str(dup["id"]).removesuffix("-dup")]
            assert dup["net"] == original["net"]
