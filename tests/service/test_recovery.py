"""Acceptance: kill-recover invariant over a real supervised daemon.

Drives ``scripts/chaos_campaign.py`` in-process: a supervised daemon is
loaded with a queued backlog, SIGKILLed mid-flight, and every admitted
request must still be answered exactly once across the restart — no
drops, no divergent duplicates, no pending WAL entries left behind.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from chaos_campaign import CampaignOptions, run_campaign  # noqa: E402

pytestmark = pytest.mark.slow


class TestKillRecover:
    def test_backlogged_daemon_survives_sigkill_exactly_once(self, tmp_path):
        options = CampaignOptions(
            requests=80,
            kills=1,
            seed=7,
            kill_backlog=50,  # acceptance: >= 50 queued at kill time
            malformed_rate=0.0,
            duplicate_every=0,
            run_dir=tmp_path / "run",
            out=tmp_path / "BENCH_recovery.json",
        )
        report = run_campaign(options)
        # run_campaign fails hard (SystemExit) on any invariant breach;
        # reaching here means exactly-once held. Spot-check the report.
        assert report["requests"] == 80
        assert report["answered_ids"] == 80
        assert report["kills"], "campaign never got to kill the daemon"
        assert report["kills"][0]["backlog_at_kill"] >= 50
        assert report["supervisor_exit"] == 0
        assert report["daemon_generations"] >= 2

    def test_wal_fault_injection_does_not_break_service(self, tmp_path):
        # a disk-full WAL append mid-stream must degrade durability, not
        # availability: every request is still answered
        options = CampaignOptions(
            requests=30,
            kills=0,
            seed=11,
            kill_backlog=10,
            malformed_rate=0.0,
            duplicate_every=0,
            wal_fault_after=5,
            run_dir=tmp_path / "run",
            out=tmp_path / "BENCH_recovery.json",
        )
        report = run_campaign(options)
        assert report["answered_ids"] == 30
        assert report["supervisor_exit"] == 0
