"""The routing daemon: serve loops, coalescing, drain, both front ends."""

from __future__ import annotations

import io
import json
import socket
import threading
import time

import pytest

from repro.service import RoutingDaemon, ServiceConfig, SessionConfig

NET = {"source": [0, 0], "sinks": [[400, 300], [700, 100]]}


def frame(i="r1", net=NET, **overrides):
    data = {"op": "route", "id": i, "algorithm": "ldrg", "net": net}
    data.update(overrides)
    return json.dumps(data)


def serve_lines(lines, config=None):
    """Run one stdio session to EOF; responses keyed by id."""
    daemon = RoutingDaemon(config)
    out = io.StringIO()
    rc = daemon.serve(io.StringIO("\n".join(lines) + "\n"), out)
    assert rc == 0
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    return daemon, responses


def by_id(responses):
    return {r["id"]: r for r in responses}


class TestStdioServe:
    def test_route_ok(self):
        _, responses = serve_lines([frame()])
        (response,) = responses
        assert response["status"] == "ok"
        assert response["result"]["delay"] > 0
        assert response["cached"] is False

    def test_ping_and_stats(self):
        _, responses = serve_lines(['{"op": "ping", "id": "p"}',
                                    '{"op": "stats", "id": "s"}'])
        answers = by_id(responses)
        assert answers["p"]["version"] == 1
        assert answers["p"]["draining"] is False
        assert "admission" in answers["s"] and "cache" in answers["s"]

    def test_malformed_line_gets_protocol_error(self):
        _, responses = serve_lines(["{broken", frame(i="ok1")])
        answers = by_id(responses)
        assert answers[None]["error"]["kind"] == "protocol"
        assert answers["ok1"]["status"] == "ok"

    def test_unknown_algorithm_rejected_at_admission(self):
        _, responses = serve_lines([frame(algorithm="warp")])
        (response,) = responses
        assert response["error"]["kind"] == "protocol"
        assert "unknown algorithm" in response["error"]["message"]

    def test_inject_rejected_unless_enabled(self):
        _, responses = serve_lines([frame(inject="raise")])
        (response,) = responses
        assert response["error"]["kind"] == "protocol"
        assert "fault injection" in response["error"]["message"]

    def test_blank_lines_ignored(self):
        daemon = RoutingDaemon()
        out = io.StringIO()
        daemon.serve(io.StringIO("\n\n" + frame() + "\n\n"), out)
        assert len(out.getvalue().splitlines()) == 1


class TestCoalescingAndCache:
    def test_identical_requests_coalesce(self):
        daemon, responses = serve_lines([frame(i="a"), frame(i="b")])
        answers = by_id(responses)
        assert answers["a"]["status"] == answers["b"]["status"] == "ok"
        assert answers["a"]["result"] == answers["b"]["result"]
        # exactly one of the two actually routed
        assert daemon.stats.coalesced + daemon.stats.cache_hits == 1

    def test_sequential_repeat_hits_warm_cache(self, tmp_path):
        config = ServiceConfig(cache_dir=tmp_path)
        daemon, _ = serve_lines([frame(i="a")], config)
        daemon2, responses = serve_lines([frame(i="b")], config)
        (response,) = responses
        assert response["cached"] is True
        assert daemon2.stats.cache_hits == 1

    def test_different_nets_do_not_coalesce(self):
        other = {"source": [0, 0], "sinks": [[5, 5]]}
        daemon, responses = serve_lines([frame(i="a"),
                                         frame(i="b", net=other)])
        answers = by_id(responses)
        assert answers["a"]["fingerprint"] != answers["b"]["fingerprint"]
        assert daemon.stats.coalesced == 0


class TestOverload:
    def test_flood_sheds_with_structured_errors(self):
        config = ServiceConfig(queue_capacity=1)
        lines = [frame(i=f"q{i}",
                       net={"source": [0, 0],
                            "sinks": [[10 + i, 20 + 2 * i]]})
                 for i in range(12)]
        daemon, responses = serve_lines(lines, config)
        assert len(responses) == 12
        kinds = [r["error"]["kind"] for r in responses
                 if r["status"] == "error"]
        assert kinds and set(kinds) == {"overload"}
        assert daemon.queue.stats.shed == len(kinds)


class TestDrain:
    def test_request_drain_fails_backlog_as_drained(self):
        config = ServiceConfig(drain_grace=0.0,
                               queue_capacity=16)
        daemon = RoutingDaemon(config)
        lines = [frame(i=f"d{i}",
                       net={"source": [0, 0], "sinks": [[7 + i, 9 + i]]})
                 for i in range(6)]
        out = io.StringIO()
        # drain almost immediately: backlog can't finish in 0s grace
        threading.Timer(0.05, daemon.request_drain).start()
        rc = daemon.serve(io.StringIO("\n".join(lines) + "\n"), out)
        assert rc == 0
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert len(responses) == 6
        statuses = {r["status"] for r in responses}
        for r in responses:
            if r["status"] == "error":
                assert r["error"]["kind"] in ("drained", "draining")
        # with zero grace at least the tail must have been abandoned
        assert "error" in statuses

    def test_offers_after_drain_are_rejected_as_draining(self):
        daemon = RoutingDaemon()
        daemon.request_drain()
        replies = []
        daemon.handle_line(frame(), replies.append)
        (response,) = replies
        assert response["error"]["kind"] == "draining"


class TestPoolMode:
    def test_routes_and_real_worker_kill(self):
        config = ServiceConfig(
            session=SessionConfig(enable_fault_injection=True),
            workers=2)
        lines = [frame(i="k", inject="kill-worker"), frame(i="ok")]
        daemon, responses = serve_lines(lines, config)
        answers = by_id(responses)
        assert answers["ok"]["status"] == "ok"
        assert answers["k"]["error"]["kind"] == "crash"
        assert daemon.stats.worker_crashes == 1


class TestSocketServe:
    def test_round_trip_and_drain(self):
        daemon = RoutingDaemon()
        address = {}
        ready = threading.Event()

        def on_ready(host, port):
            address["hp"] = (host, port)
            ready.set()

        server = threading.Thread(
            target=daemon.serve_socket,
            kwargs={"port": 0, "ready": on_ready}, daemon=True)
        server.start()
        assert ready.wait(timeout=10.0)
        with socket.create_connection(address["hp"], timeout=10.0) as conn:
            stream = conn.makefile("rw", encoding="utf-8", newline="\n")
            stream.write(frame(i="s1") + "\n")
            stream.write('{"op": "ping", "id": "p1"}\n')
            stream.flush()
            answers = {}
            while len(answers) < 2:
                response = json.loads(stream.readline())
                answers[response["id"]] = response
        assert answers["s1"]["status"] == "ok"
        assert answers["p1"]["status"] == "ok"
        daemon.request_drain()
        server.join(timeout=15.0)
        assert not server.is_alive()
