"""Session execution: fingerprints, oracles, deadlines, warm caching."""

from __future__ import annotations

import json

import pytest

from repro.delay.models import SpiceDelayModel
from repro.runtime import ChaosPolicy, ResilientDelayModel, ResultCache
from repro.runtime.trial import TrialFailure, TrialResult
from repro.service import Request, parse_frame
from repro.service.session import (
    ALGORITHMS,
    SessionConfig,
    build_model,
    execute_request,
    request_fingerprint,
    route_outcome,
)


def route_request(**overrides):
    frame = {"op": "route", "id": "r1",
             "net": {"source": [0, 0], "sinks": [[400, 300], [700, 100]]}}
    frame.update(overrides)
    return parse_frame(json.dumps(frame))


class TestFingerprint:
    def test_id_and_deadline_excluded(self):
        config = SessionConfig()
        base = request_fingerprint(route_request(), config)
        assert request_fingerprint(
            route_request(id="other", deadline=1.0), config) == base

    def test_answer_determinants_included(self):
        config = SessionConfig()
        base = request_fingerprint(route_request(), config)
        assert request_fingerprint(
            route_request(algorithm="h1"), config) != base
        assert request_fingerprint(
            route_request(segments=4), config) != base
        assert request_fingerprint(route_request(
            net={"source": [0, 0], "sinks": [[400, 301], [700, 100]]}),
            config) != base

    def test_config_included(self):
        request = route_request()
        base = request_fingerprint(request, SessionConfig())
        assert request_fingerprint(
            request, SessionConfig(segments=2)) != base
        assert request_fingerprint(
            request, SessionConfig(engines=("analytic",))) != base


class TestBuildModel:
    def test_single_pure_engine_is_unwrapped(self):
        model = build_model(SessionConfig(engines=("transient",)),
                            route_request())
        assert isinstance(model, SpiceDelayModel)
        assert model.cacheable  # PR-3 delay memo stays applicable

    def test_multi_engine_ladder_is_resilient(self):
        model = build_model(SessionConfig(), route_request())
        assert isinstance(model, ResilientDelayModel)

    def test_chaos_forces_ladder(self):
        config = SessionConfig(engines=("transient",),
                               chaos=ChaosPolicy(seed=1, raise_rate=0.5))
        model = build_model(config, route_request())
        assert isinstance(model, ResilientDelayModel)
        assert "chaos" in model.ladder[0].name

    def test_request_segments_override(self):
        model = build_model(SessionConfig(engines=("transient",)),
                            route_request(segments=5))
        assert model.options.segments == 5


class TestDeadlines:
    def test_default_and_clamp(self):
        config = SessionConfig(default_deadline=10.0, max_deadline=20.0)
        assert config.deadline_for(route_request()) == 10.0
        assert config.deadline_for(route_request(deadline=5.0)) == 5.0
        assert config.deadline_for(route_request(deadline=500.0)) == 20.0


class TestRouteOutcome:
    def test_success_has_provenance_fields(self):
        outcome = route_outcome(route_request(), SessionConfig(), 30.0)
        assert isinstance(outcome, TrialResult)
        assert outcome.delay > 0
        assert not outcome.degraded

    def test_every_algorithm_routes(self):
        config = SessionConfig(engines=("analytic",))
        for name in ALGORITHMS:
            outcome = route_outcome(route_request(algorithm=name),
                                    config, 60.0)
            assert isinstance(outcome, TrialResult), (name, outcome)

    def test_injected_chaos_degrades_with_provenance(self):
        config = SessionConfig(enable_fault_injection=True)
        outcome = route_outcome(route_request(inject="raise"),
                                config, 60.0)
        assert isinstance(outcome, TrialResult)
        assert outcome.degraded
        assert any(e.kind == "degrade" for e in outcome.provenance)

    def test_kill_directive_is_simulated_crash_in_serial(self):
        config = SessionConfig(enable_fault_injection=True)
        outcome = route_outcome(route_request(inject="kill-worker"),
                                config, 60.0)
        assert isinstance(outcome, TrialFailure)
        assert outcome.kind == "crash"

    def test_inject_ignored_without_enablement(self):
        outcome = route_outcome(route_request(inject="kill-worker"),
                                SessionConfig(), 60.0)
        assert isinstance(outcome, TrialResult)


class TestExecuteRequest:
    def test_ok_frame_shape(self):
        response = execute_request(route_request(), SessionConfig())
        assert response["status"] == "ok"
        assert response["cached"] is False
        assert response["result"]["delay"] > 0
        assert "fingerprint" in response

    def test_cache_fill_and_hit(self):
        cache = ResultCache()
        config = SessionConfig()
        first = execute_request(route_request(), config, cache=cache)
        second = execute_request(route_request(id="r2"), config,
                                 cache=cache)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["id"] == "r2"
        assert second["result"] == first["result"]

    def test_degraded_results_not_cached(self):
        cache = ResultCache()
        config = SessionConfig(enable_fault_injection=True)
        first = execute_request(route_request(inject="raise"), config,
                                cache=cache)
        assert first["status"] == "ok" and first["degraded"]
        assert len(cache) == 0
        second = execute_request(route_request(id="r2", inject="raise"),
                                 config, cache=cache)
        assert second["cached"] is False

    def test_expired_budget_is_timeout_error(self):
        response = execute_request(route_request(), SessionConfig(),
                                   budget=1e-6)
        assert response["status"] == "error"
        assert response["error"]["kind"] == "timeout"

    def test_unknown_algorithm_is_structured(self):
        request = Request(op="route", id="r1",
                          net=route_request().net, algorithm="bogus")
        response = execute_request(request, SessionConfig())
        assert response["status"] == "error"
        assert "unknown algorithm" in response["error"]["message"]
