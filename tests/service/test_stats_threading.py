"""Regression tests for the shared-counter fixes the interlock pass
drove: every stats frame is assembled from consistent, locked
snapshots, never from torn mid-update reads.

Each test hammers one counter surface from several threads while a
snapshot thread asserts the cross-field invariants that only hold if
reads and writes share the owning lock.
"""

import threading

import pytest

from repro.runtime.journal import ResultCache
from repro.service.admission import AdmissionQueue
from repro.service.daemon import ServiceStats

HAMMER_THREADS = 4
ITERATIONS = 400


def hammer(worker, n_threads=HAMMER_THREADS):
    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    return threads


class TestServiceStats:
    def test_failed_always_equals_errors_by_kind_sum(self):
        stats = ServiceStats()
        stop = threading.Event()
        torn: list[dict] = []

        def writer():
            for i in range(ITERATIONS):
                stats.count_error(f"kind{i % 3}")
                stats.count_protocol_error("protocol")
                stats.count_ok(cached=i % 2 == 0, degraded=i % 5 == 0)

        def reader():
            while not stop.is_set():
                snap = stats.to_json_dict()
                if snap["requests_failed"] != sum(
                        snap["errors_by_kind"].values()):
                    torn.append(snap)

        writers = hammer(writer)
        readers = hammer(reader, n_threads=2)
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert torn == []
        final = stats.to_json_dict()
        total = HAMMER_THREADS * ITERATIONS
        assert final["requests_failed"] == 2 * total
        assert final["protocol_errors"] == total
        assert final["requests_ok"] == total
        assert final["cache_hits"] == HAMMER_THREADS * (ITERATIONS // 2)

    def test_simple_counters_do_not_drop_increments(self):
        stats = ServiceStats()

        def worker():
            for _ in range(ITERATIONS):
                stats.record_worker_crash()
                stats.record_replayed()
                stats.record_coalesced()
                stats.record_wal_error()

        for thread in hammer(worker):
            thread.join()
        snap = stats.to_json_dict()
        total = HAMMER_THREADS * ITERATIONS
        assert snap["worker_crashes"] == total
        assert snap["replayed"] == total
        assert snap["coalesced"] == total
        assert snap["wal_errors"] == total

    def test_snapshot_is_detached_from_live_state(self):
        stats = ServiceStats()
        stats.count_error("boom")
        snap = stats.to_json_dict()
        snap["errors_by_kind"]["boom"] = 99
        assert stats.to_json_dict()["errors_by_kind"] == {"boom": 1}


class TestAdmissionQueueSnapshot:
    def test_snapshot_reports_counters_and_live_depth(self):
        queue: AdmissionQueue[int] = AdmissionQueue(capacity=8)
        queue.offer(1)
        queue.offer(2)
        snap = queue.stats_snapshot()
        assert snap["admitted"] == 2
        assert snap["depth"] == 2
        assert snap["depth_high_water"] == 2
        queue.take(timeout=0)
        assert queue.stats_snapshot()["depth"] == 1
        assert queue.stats_snapshot()["served"] == 1

    def test_served_never_exceeds_admitted_under_concurrency(self):
        queue: AdmissionQueue[int] = AdmissionQueue(capacity=10_000)
        stop = threading.Event()
        torn: list[dict] = []

        def producer():
            for i in range(ITERATIONS):
                queue.offer(i)

        def consumer():
            for _ in range(ITERATIONS):
                queue.take(timeout=1.0)

        def reader():
            while not stop.is_set():
                snap = queue.stats_snapshot()
                if snap["served"] > snap["admitted"]:
                    torn.append(snap)

        threads = hammer(producer, 2) + hammer(consumer, 2)
        readers = hammer(reader, 2)
        for thread in threads:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert torn == []
        snap = queue.stats_snapshot()
        assert snap["admitted"] == snap["served"] == 2 * ITERATIONS
        assert snap["depth"] == 0

    def test_closed_flag_reads_under_the_lock(self):
        queue: AdmissionQueue[int] = AdmissionQueue(capacity=2)
        assert queue.closed is False
        queue.close()
        assert queue.closed is True


class TestResultCacheCounters:
    def test_hits_plus_misses_account_for_every_lookup(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", capacity=64)
        for i in range(8):
            cache.store(f"fp{i}", {"value": i})

        def worker():
            for i in range(ITERATIONS):
                cache.lookup_cached(f"fp{i % 16}")  # half hit, half miss

        for thread in hammer(worker):
            thread.join()
        snap = cache.stats_snapshot()
        total = HAMMER_THREADS * ITERATIONS
        assert snap["hits"] + snap["misses"] == total
        assert snap["hits"] == total // 2
        assert snap["entries"] == 8

    def test_concurrent_stores_keep_the_tier_bounded(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", capacity=16)

        def worker():
            for i in range(ITERATIONS):
                cache.store(f"fp{i}", {"value": i})

        for thread in hammer(worker):
            thread.join()
        assert len(cache) <= 16
        assert cache.stats_snapshot()["entries"] <= 16

    def test_corrupt_disk_record_counts_once_per_lookup(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", capacity=4)
        (tmp_path / "cache" / "result_bad.json").write_text(
            "{torn", encoding="utf-8")
        assert cache.lookup_cached("bad") is None
        snap = cache.stats_snapshot()
        assert snap["corrupt_records"] == 1
        assert snap["misses"] == 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
