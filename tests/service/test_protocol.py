"""Wire-protocol parsing: every malformed frame is a typed rejection."""

from __future__ import annotations

import json

import pytest

from repro.service import ProtocolError, parse_frame
from repro.service.faults import MALFORMED_FRAMES
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    MAX_PINS,
    encode_frame,
    error_response,
    ok_response,
)


def route_frame(**overrides):
    frame = {"op": "route", "id": "r1",
             "net": {"source": [0, 0], "sinks": [[100, 200], [300, 50]]}}
    frame.update(overrides)
    return json.dumps(frame)


class TestParseValid:
    def test_minimal_route(self):
        request = parse_frame(route_frame())
        assert request.op == "route"
        assert request.id == "r1"
        assert request.net is not None
        assert request.net.num_sinks == 2
        assert request.algorithm == "ldrg"
        assert request.deadline is None

    def test_full_route(self):
        request = parse_frame(route_frame(
            algorithm="sert", deadline=2.5, segments=3, inject="raise",
            net={"name": "clk", "source": [1.5, 2.5],
                 "sinks": [[10, 20]]}))
        assert request.algorithm == "sert"
        assert request.deadline == 2.5
        assert request.segments == 3
        assert request.inject == "raise"
        assert request.net.name == "clk"

    def test_ping_and_stats(self):
        assert parse_frame('{"op": "ping"}').op == "ping"
        request = parse_frame('{"op": "stats", "id": 7}')
        assert (request.op, request.id) == ("stats", 7)

    def test_integer_id_allowed(self):
        assert parse_frame(route_frame(id=12)).id == 12


class TestParseRejects:
    @pytest.mark.parametrize("line", MALFORMED_FRAMES)
    def test_malformed_corpus(self, line):
        with pytest.raises(ProtocolError):
            parse_frame(line)

    def test_oversized_frame(self):
        padding = "x" * MAX_FRAME_BYTES
        with pytest.raises(ProtocolError, match="exceeds"):
            parse_frame(route_frame(padding=padding))

    def test_too_many_pins(self):
        sinks = [[i, i + 0.5] for i in range(MAX_PINS)]
        with pytest.raises(ProtocolError, match="pins"):
            parse_frame(route_frame(net={"source": [0, 0], "sinks": sinks}))

    def test_nonfinite_coordinates(self):
        # json.loads accepts Infinity/NaN; the protocol must not
        with pytest.raises(ProtocolError, match="finite"):
            parse_frame('{"op": "route", "net": {"source": [0, 0], '
                        '"sinks": [[Infinity, 1]]}}')
        with pytest.raises(ProtocolError, match="finite"):
            parse_frame(route_frame(net={"source": [0, 0],
                                         "sinks": [[float("nan"), 1]]}))

    def test_bool_is_not_a_number(self):
        with pytest.raises(ProtocolError):
            parse_frame(route_frame(deadline=True))
        with pytest.raises(ProtocolError):
            parse_frame(route_frame(segments=True))

    def test_segments_out_of_range(self):
        with pytest.raises(ProtocolError, match="1, 32"):
            parse_frame(route_frame(segments=0))
        with pytest.raises(ProtocolError, match="1, 32"):
            parse_frame(route_frame(segments=33))

    def test_error_carries_frame_id_when_recoverable(self):
        try:
            parse_frame(route_frame(id="keepme", deadline=-1))
        except ProtocolError as exc:
            assert exc.frame_id == "keepme"
        else:  # pragma: no cover
            pytest.fail("expected ProtocolError")


class TestResponses:
    def test_ok_shape(self):
        frame = ok_response("r1", "route", {"cached": False})
        assert frame == {"id": "r1", "status": "ok", "op": "route",
                        "cached": False}

    def test_error_shape(self):
        frame = error_response("r1", "timeout", "TrialTimeout", "late",
                               extra={"elapsed": 1.25})
        assert frame["status"] == "error"
        assert frame["error"] == {"kind": "timeout",
                                  "error_type": "TrialTimeout",
                                  "message": "late"}
        assert frame["elapsed"] == 1.25

    def test_encode_is_single_sorted_line(self):
        line = encode_frame({"b": 1, "a": {"z": [1, 2]}})
        assert "\n" not in line
        assert line == '{"a":{"z":[1,2]},"b":1}'
