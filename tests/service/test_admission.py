"""Bounded admission: FIFO under capacity, typed shed beyond it."""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    AdmissionQueue,
    ServiceDraining,
    ServiceOverload,
)


class TestOfferTake:
    def test_fifo_order(self):
        queue = AdmissionQueue(capacity=4)
        for item in "abcd":
            queue.offer(item)
        assert [queue.take(timeout=0) for _ in range(4)] == list("abcd")

    def test_take_times_out_empty(self):
        assert AdmissionQueue(capacity=1).take(timeout=0.01) is None

    def test_take_wakes_on_offer(self):
        queue = AdmissionQueue(capacity=1)
        got = []

        def taker():
            got.append(queue.take(timeout=5.0))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.offer("x")
        thread.join(timeout=5.0)
        assert got == ["x"]


class TestOverload:
    def test_shed_beyond_capacity(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer("a")
        queue.offer("b")
        with pytest.raises(ServiceOverload) as info:
            queue.offer("c")
        assert info.value.capacity == 2
        assert info.value.shed_total == 1

    def test_capacity_frees_after_take(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer("a")
        queue.take(timeout=0)
        queue.offer("b")  # no raise

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


class TestDraining:
    def test_close_rejects_new_offers(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer("a")
        queue.close()
        with pytest.raises(ServiceDraining):
            queue.offer("b")
        assert queue.closed

    def test_backlog_still_served_after_close(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer("a")
        queue.close()
        assert queue.take(timeout=0) == "a"
        assert queue.take(timeout=0) is None  # closed + empty

    def test_close_wakes_blocked_takers(self):
        queue = AdmissionQueue(capacity=1)
        got = []

        def taker():
            got.append(queue.take(timeout=10.0))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got == [None]

    def test_drain_backlog_empties_queue(self):
        queue = AdmissionQueue(capacity=4)
        for item in "abc":
            queue.offer(item)
        assert queue.drain_backlog() == list("abc")
        assert len(queue) == 0


class TestStats:
    def test_counters(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer("a")
        queue.offer("b")
        with pytest.raises(ServiceOverload):
            queue.offer("c")
        queue.take(timeout=0)
        queue.close()
        with pytest.raises(ServiceDraining):
            queue.offer("d")
        stats = queue.stats.to_json_dict()
        assert stats == {"admitted": 2, "shed": 1,
                         "rejected_draining": 1, "served": 1,
                         "depth_high_water": 2}
