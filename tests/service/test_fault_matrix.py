"""The fault-matrix acceptance run (the ISSUE's bar for this service).

A 200-request load with a 0.2 composite fault rate — worker kills,
malformed frames, deadline storms, oracle chaos — plus coalescing
duplicates, driven through the real CLI daemon over a pipe. The
contract: *every* failure surfaces as a typed, structured error frame
(no tracebacks anywhere, no hangs), duplicates are served warm, and a
mid-stream SIGTERM drains cleanly with the cache journal flushed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.geometry.random_nets import random_net
from repro.service import ServiceFaultPlan, build_fault_stream

TYPED_KINDS = {"protocol", "overload", "draining", "drained", "timeout",
               "crash", "exception"}

PLAN = ServiceFaultPlan(seed=1994, kill_rate=0.05, malformed_rate=0.05,
                        storm_rate=0.05, chaos_rate=0.05)


def spawn_daemon(*flags):
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *flags],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=env)


def request_stream(count, duplicate_every=5):
    nets = [random_net(3, seed=2000 + i) for i in range(count)]
    return build_fault_stream(PLAN, nets, algorithm="ldrg",
                              deadline=30.0,
                              duplicate_every=duplicate_every)


@pytest.mark.slow
class TestFaultMatrix:
    def test_200_requests_all_structured(self, tmp_path):
        lines = request_stream(200)
        proc = spawn_daemon("--fault-injection", "--queue-capacity", "512",
                            "--cache-dir", str(tmp_path / "cache"))
        out, err = proc.communicate("\n".join(lines) + "\n", timeout=600)
        assert proc.returncode == 0
        assert "Traceback" not in err, err

        responses = [json.loads(line) for line in out.splitlines()]
        # every frame answered, well-formed or not
        assert len(responses) == len(lines)
        kinds = {}
        coalesced = cached = 0
        for response in responses:
            assert response["status"] in ("ok", "error")
            if response["status"] == "error":
                kind = response["error"]["kind"]
                assert kind in TYPED_KINDS, response
                assert "message" in response["error"]
                kinds[kind] = kinds.get(kind, 0) + 1
            else:
                coalesced += bool(response.get("coalesced"))
                cached += bool(response.get("cached"))
        # at 0.05 each over 200 requests, every fault class must appear
        assert kinds.get("protocol", 0) > 0       # malformed frames
        assert kinds.get("crash", 0) > 0          # worker kills
        assert kinds.get("timeout", 0) > 0        # deadline storms
        # duplicates were served warm, not recomputed
        assert coalesced + cached > 0
        # the warm cache journal was flushed to disk
        assert list((tmp_path / "cache").glob("result_*.json"))

    def test_sigterm_mid_stream_drains_cleanly(self, tmp_path):
        lines = request_stream(60, duplicate_every=0)
        proc = spawn_daemon("--fault-injection", "--queue-capacity", "512",
                            "--drain-timeout", "5",
                            "--cache-dir", str(tmp_path / "cache"))
        assert proc.stdin is not None
        proc.stdin.write("\n".join(lines) + "\n")
        proc.stdin.flush()
        time.sleep(1.0)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0
        assert "Traceback" not in err, err
        responses = [json.loads(line) for line in out.splitlines()]
        assert responses  # progress was made before the signal
        for response in responses:
            assert response["status"] in ("ok", "error")
            if response["status"] == "error":
                assert response["error"]["kind"] in TYPED_KINDS

    def test_pool_mode_survives_real_kills(self, tmp_path):
        lines = request_stream(30, duplicate_every=0)
        proc = spawn_daemon("--fault-injection", "--workers", "2",
                            "--queue-capacity", "512",
                            "--cache-dir", str(tmp_path / "cache"))
        out, err = proc.communicate("\n".join(lines) + "\n", timeout=600)
        assert proc.returncode == 0
        assert "Traceback" not in err, err
        responses = [json.loads(line) for line in out.splitlines()]
        assert len(responses) == len(lines)
        assert all(r["status"] in ("ok", "error") for r in responses)
        oks = [r for r in responses if r["status"] == "ok"]
        kinds = {}
        for r in responses:
            if r["status"] == "error":
                kind = r["error"]["kind"]
                kinds[kind] = kinds.get(kind, 0) + 1
        # killed workers were replaced and work continued
        assert oks, (kinds, err[-2000:])
