"""The supervisor: restart-on-crash, hang detection, crash-loop give-up."""

from __future__ import annotations

import json
import sys

from repro.service.supervisor import (
    EXIT_GIVE_UP,
    GIVEUP_FILENAME,
    HEARTBEAT_FILENAME,
    LOG_FILENAME,
    Supervisor,
    SupervisorPolicy,
)


def child(code):
    return [sys.executable, "-c", f"import sys; sys.exit({code})"]


def fast_policy(**overrides):
    defaults = dict(restart_budget=2, restart_window=60.0,
                    heartbeat_timeout=0.0, poll_interval=0.01)
    defaults.update(overrides)
    return SupervisorPolicy(**defaults)


def supervise(argv, run_dir, **policy_overrides):
    return Supervisor(argv, run_dir, fast_policy(**policy_overrides),
                      sleep=lambda seconds: None)


class TestCleanExit:
    def test_clean_child_exit_ends_supervision_with_zero(self, tmp_path):
        sup = supervise(child(0), tmp_path)
        assert sup.run() == 0
        assert sup.restarts_total == 0

    def test_lifecycle_is_logged(self, tmp_path):
        supervise(child(0), tmp_path).run()
        events = [json.loads(line)["event"]
                  for line in (tmp_path / LOG_FILENAME)
                  .read_text().splitlines()]
        assert events == ["spawn", "clean-exit"]


class TestCrashLoop:
    def test_crashes_restart_until_budget_then_exit_3(self, tmp_path):
        sup = supervise(child(1), tmp_path, restart_budget=2)
        assert sup.run() == EXIT_GIVE_UP
        assert sup.restarts_total == 2  # two restarts, third crash gives up

    def test_give_up_writes_a_structured_artifact(self, tmp_path, capsys):
        supervise(child(7), tmp_path, restart_budget=1).run()
        record = json.loads((tmp_path / GIVEUP_FILENAME).read_text())
        assert record["event"] == "give-up"
        assert record["last_exit_code"] == 7
        assert record["last_failure"] == "crash"
        assert record["exit_code"] == EXIT_GIVE_UP
        stderr = capsys.readouterr().err.strip().splitlines()[-1]
        assert json.loads(stderr)["event"] == "give-up"

    def test_backoff_delays_come_from_the_seeded_policy(self, tmp_path):
        # the injected sleep also receives _watch poll ticks; backoff
        # delays are the non-poll-interval values
        def backoffs(sleeps):
            return [s for s in sleeps if s != 0.01]

        slept = []
        sup = Supervisor(child(1), tmp_path,
                         fast_policy(restart_budget=3),
                         sleep=slept.append)
        sup.run()
        assert len(backoffs(slept)) == 3
        assert backoffs(slept) == sorted(backoffs(slept))  # nondecreasing
        # seeded: a rerun draws the identical delays
        slept_again = []
        Supervisor(child(1), tmp_path, fast_policy(restart_budget=3),
                   sleep=slept_again.append).run()
        assert backoffs(slept_again) == backoffs(slept)


class TestHangDetection:
    def test_stale_heartbeat_is_killed_and_counts_as_crash(self, tmp_path):
        # a child that never beats: sleeps far past the heartbeat timeout
        argv = [sys.executable, "-c", "import time; time.sleep(60)"]
        sup = Supervisor(
            argv, tmp_path,
            SupervisorPolicy(restart_budget=1, restart_window=60.0,
                             heartbeat_timeout=0.3, poll_interval=0.02),
            sleep=lambda seconds: None)
        assert sup.run() == EXIT_GIVE_UP
        record = json.loads((tmp_path / GIVEUP_FILENAME).read_text())
        assert record["last_failure"] == "hang"

    def test_fresh_spawn_is_never_stale_at_birth(self, tmp_path):
        # heartbeat file predates the child; staleness must be measured
        # from spawn time, or every generation dies at age zero
        (tmp_path / HEARTBEAT_FILENAME).touch()
        sup = Supervisor(
            child(0), tmp_path,
            SupervisorPolicy(restart_budget=1, restart_window=60.0,
                             heartbeat_timeout=30.0, poll_interval=0.01),
            sleep=lambda seconds: None)
        assert sup.run() == 0
