"""The daemon's --multinet batch path: eligibility, batching, fallback."""

from __future__ import annotations

import io
import json

import pytest

from repro.runtime import ChaosPolicy
from repro.runtime.trial import TrialResult
from repro.service import (
    Request,
    RoutingDaemon,
    ServiceConfig,
    SessionConfig,
    multinet_eligible,
    parse_frame,
    request_fingerprint,
    route_fleet_outcomes,
)
from repro.service.session import route_outcome


def route_request(i=0, algorithm="ldrg", seed=0, **overrides):
    import random
    rng = random.Random(seed)
    pts = [[rng.uniform(0, 1000), rng.uniform(0, 1000)] for _ in range(6)]
    frame = {"op": "route", "id": f"r{i}", "algorithm": algorithm,
             "net": {"name": f"n{i}", "source": pts[0], "sinks": pts[1:]}}
    frame.update(overrides)
    return parse_frame(json.dumps(frame))


def serve_frames(requests, workers=0, **session_overrides):
    session = SessionConfig(multinet=True, **session_overrides)
    daemon = RoutingDaemon(ServiceConfig(session=session, workers=workers))
    lines = "".join(json.dumps({"op": "route", "id": r.id,
                                "algorithm": r.algorithm,
                                "net": {"name": r.net.name,
                                        "source": [r.net.source.x,
                                                   r.net.source.y],
                                        "sinks": [[s.x, s.y]
                                                  for s in r.net.sinks]}})
                    + "\n" for r in requests)
    out = io.StringIO()
    daemon.serve(io.StringIO(lines), out)
    return {r["id"]: r
            for r in map(json.loads, out.getvalue().splitlines())}


class TestEligibility:
    def test_greedy_algorithms_eligible(self):
        config = SessionConfig(multinet=True)
        assert multinet_eligible(route_request(), config)
        assert multinet_eligible(route_request(algorithm="sldrg"), config)

    def test_requires_multinet_flag(self):
        assert not multinet_eligible(route_request(), SessionConfig())

    def test_non_greedy_algorithms_ineligible(self):
        config = SessionConfig(multinet=True)
        for algorithm in ("h1", "h2", "h3", "ert", "sert"):
            assert not multinet_eligible(
                route_request(algorithm=algorithm), config)

    def test_chaos_forces_per_net_path(self):
        config = SessionConfig(multinet=True,
                               chaos=ChaosPolicy(seed=1, raise_rate=0.5))
        assert not multinet_eligible(route_request(), config)

    def test_inject_forces_per_net_path(self):
        config = SessionConfig(multinet=True, enable_fault_injection=True)
        assert not multinet_eligible(route_request(inject="raise"), config)


class TestFingerprint:
    def test_multinet_changes_the_fingerprint(self):
        request = route_request()
        plain = request_fingerprint(request, SessionConfig())
        batched = request_fingerprint(request,
                                      SessionConfig(multinet=True))
        assert plain != batched


class TestRouteFleetOutcomes:
    def test_batch_of_mixed_algorithms(self):
        config = SessionConfig(multinet=True)
        requests = [route_request(0, "ldrg", seed=0),
                    route_request(1, "sldrg", seed=1),
                    route_request(2, "ldrg", seed=2)]
        outcomes = route_fleet_outcomes(requests, config, budget=30.0)
        assert len(outcomes) == 3
        for request, outcome in zip(requests, outcomes):
            assert isinstance(outcome, TrialResult)
            assert outcome.algorithm == request.algorithm
            assert outcome.model == "elmore"

    def test_fleet_of_one_matches_batch_member(self):
        config = SessionConfig(multinet=True)
        request = route_request(0, seed=5)
        alone = route_fleet_outcomes([request], config, budget=30.0)[0]
        batch = route_fleet_outcomes(
            [route_request(1, seed=6), request, route_request(2, seed=7)],
            config, budget=30.0)[1]
        assert isinstance(alone, TrialResult)
        assert isinstance(batch, TrialResult)
        assert alone.delay == batch.delay
        assert alone.cost == batch.cost

    def test_ineligible_request_on_per_net_path_records_fallback(self):
        config = SessionConfig(multinet=True)
        outcome = route_outcome(route_request(0, "h1"), config, budget=30.0)
        assert isinstance(outcome, TrialResult)
        assert any(e.kind == "fallback" and e.target == "per-net"
                   for e in outcome.provenance)

    def test_eligible_request_has_no_fallback_event(self):
        config = SessionConfig(multinet=True)
        outcomes = route_fleet_outcomes([route_request(0)], config,
                                        budget=30.0)
        assert not any(e.kind == "fallback"
                       for e in outcomes[0].provenance)


class TestDaemonBatchPath:
    def test_serial_and_pooled_agree_bitwise(self):
        requests = [route_request(i, seed=i) for i in range(4)]
        serial = serve_frames(requests, workers=0)
        pooled = serve_frames(requests, workers=2)
        for request in requests:
            s, p = serial[request.id], pooled[request.id]
            assert s["status"] == p["status"] == "ok"
            assert s["engine"] == p["engine"] == "elmore"
            assert s["result"]["delay"] == p["result"]["delay"]
            assert s["result"]["cost"] == p["result"]["cost"]

    def test_ineligible_request_served_on_spice_path(self):
        responses = serve_frames([route_request(0, "h1")], workers=0)
        response = responses["r0"]
        assert response["status"] == "ok"
        assert response["engine"] != "elmore"
        assert any(e["kind"] == "fallback"
                   for e in response["provenance"])


class TestDrainMidBatch:
    def test_drain_arriving_mid_batch_loses_nothing(self, monkeypatch):
        # SIGTERM lands while a stacked fleet batch is executing: the
        # members already in route_fleet_outcomes must finish and be
        # answered; anything still queued drains; no id goes dark
        import repro.service.daemon as daemon_module
        real = daemon_module.route_fleet_outcomes
        drained_via: list[RoutingDaemon] = []

        def drain_then_route(requests, config, budget):
            if drained_via:
                drained_via[0].request_drain()
            return real(requests, config, budget)

        monkeypatch.setattr(daemon_module, "route_fleet_outcomes",
                            drain_then_route)

        requests = [route_request(i, seed=i) for i in range(6)]
        session = SessionConfig(multinet=True)
        daemon = RoutingDaemon(ServiceConfig(session=session, workers=1))
        drained_via.append(daemon)
        lines = "".join(json.dumps({"op": "route", "id": r.id,
                                    "algorithm": r.algorithm,
                                    "net": {"name": r.net.name,
                                            "source": [r.net.source.x,
                                                       r.net.source.y],
                                            "sinks": [[s.x, s.y]
                                                      for s in
                                                      r.net.sinks]}})
                        + "\n" for r in requests)
        out = io.StringIO()
        daemon.serve(io.StringIO(lines), out)
        responses = {r["id"]: r
                     for r in map(json.loads,
                                  out.getvalue().splitlines())}
        assert set(responses) == {r.id for r in requests}
        executed = [r for r in responses.values() if r["status"] == "ok"]
        drained = [r for r in responses.values() if r["status"] == "error"]
        assert executed, "the in-flight batch must finish its work"
        assert all(r["error"]["kind"] == "draining" for r in drained)
