"""Concurrent-connection framing: interleaved large replies must never
tear.

Two clients hold sockets open while the daemon's executor and
per-connection reader threads interleave replies. Every line each
client reads back must be one complete JSON object (a torn frame fails
``json.loads``), and must carry an id that client sent — a frame
leaking across connections or split mid-line is a transport bug the
interlock discipline exists to prevent.

The protocol echoes ``id`` verbatim, so each request carries a
multi-kilobyte id: replies span many TCP segments and a write that is
not serialized per connection would interleave visibly.
"""

from __future__ import annotations

import json
import socket
import threading

from repro.service import RoutingDaemon, ServiceConfig

REQUESTS_PER_CLIENT = 12

#: id padding: makes every reply ~20 kB, far beyond one TCP segment.
ID_PADDING = "x" * 20_000


def start_daemon():
    daemon = RoutingDaemon(ServiceConfig(workers=2))
    address = {}
    ready = threading.Event()

    def on_ready(host, port):
        address["hp"] = (host, port)
        ready.set()

    server = threading.Thread(target=daemon.serve_socket,
                              kwargs={"port": 0, "ready": on_ready},
                              daemon=True)
    server.start()
    assert ready.wait(timeout=10.0)
    return daemon, server, address["hp"]


def client_session(address, prefix, results, errors):
    try:
        sent_ids = []
        with socket.create_connection(address, timeout=60.0) as conn:
            stream = conn.makefile("rw", encoding="utf-8", newline="\n")
            for i in range(REQUESTS_PER_CLIENT):
                request_id = f"{prefix}{i}:{ID_PADDING}"
                sent_ids.append(request_id)
                net = {"source": [0, i],
                       "sinks": [[400 + i, 300], [700, 100 + i]]}
                stream.write(json.dumps(
                    {"op": "route", "id": request_id,
                     "algorithm": "ldrg", "net": net}) + "\n")
            stream.flush()
            raw_lines = [stream.readline()
                         for _ in range(REQUESTS_PER_CLIENT)]
        results[prefix] = (sent_ids, raw_lines)
    except Exception as exc:  # surfaced by the main thread's assert
        errors.append((prefix, exc))


def test_interleaved_large_replies_never_tear():
    daemon, server, address = start_daemon()
    results: dict[str, tuple[list[str], list[str]]] = {}
    errors: list[tuple[str, Exception]] = []
    clients = [threading.Thread(target=client_session,
                                args=(address, prefix, results, errors))
               for prefix in ("a", "b")]
    try:
        for client in clients:
            client.start()
        for client in clients:
            client.join(timeout=120.0)
        assert errors == []
        assert set(results) == {"a", "b"}
        for prefix, (sent_ids, raw_lines) in results.items():
            parsed = []
            for raw in raw_lines:
                assert raw.endswith("\n"), f"torn frame: {raw[-80:]!r}"
                parsed.append(json.loads(raw))  # complete JSON or bust
            got_ids = [response["id"] for response in parsed]
            # every reply answers a request from *this* connection,
            # exactly once, with its multi-kB id intact byte for byte
            assert sorted(got_ids) == sorted(sent_ids)
            for response in parsed:
                assert response["status"] == "ok"
                assert response["result"]["delay"] > 0
    finally:
        daemon.request_drain()
        server.join(timeout=30.0)
    assert not server.is_alive()
