"""The write-ahead request log: durability, torn tails, compaction."""

from __future__ import annotations

import json

import pytest

from repro.service.wal import (
    RequestWAL,
    WAL_VERSION,
    compact,
    load_pending,
    wal_path,
)

FRAME = {"op": "route", "id": "r1", "algorithm": "ldrg",
         "net": {"source": [0, 0], "sinks": [[100, 100]]}}


class TestAppendAndLoad:
    def test_admit_then_done_leaves_nothing_pending(self, tmp_path):
        wal = RequestWAL(tmp_path)
        seq = wal.admit(FRAME, "fp-a")
        wal.done(seq, "ok")
        replay = load_pending(tmp_path)
        assert replay.pending == ()
        assert replay.completed == 1
        assert replay.records == 2
        assert replay.next_seq == seq + 1

    def test_unanswered_admits_come_back_in_order(self, tmp_path):
        wal = RequestWAL(tmp_path)
        seqs = [wal.admit(dict(FRAME, id=f"r{i}"), f"fp-{i}")
                for i in range(4)]
        wal.done(seqs[1], "ok")
        replay = load_pending(tmp_path)
        assert [entry.seq for entry in replay.pending] == [
            seqs[0], seqs[2], seqs[3]]
        assert [entry.frame["id"] for entry in replay.pending] == [
            "r0", "r2", "r3"]
        assert replay.pending[0].fingerprint == "fp-0"

    def test_missing_log_is_an_empty_replay(self, tmp_path):
        replay = load_pending(tmp_path / "nowhere")
        assert replay.pending == ()
        assert replay.next_seq == 0
        assert replay.corrupt_lines == 0

    def test_sequence_numbers_resume_across_generations(self, tmp_path):
        first = RequestWAL(tmp_path)
        first.admit(FRAME, "fp-a")
        replay = load_pending(tmp_path)
        second = RequestWAL(tmp_path, next_seq=replay.next_seq)
        assert second.admit(FRAME, "fp-b") == replay.next_seq

    def test_records_are_reparseable_json(self, tmp_path):
        wal = RequestWAL(tmp_path)
        wal.admit(FRAME, "fp-a")
        (line,) = wal_path(tmp_path).read_text().splitlines()
        record = json.loads(line)
        assert record["v"] == WAL_VERSION
        assert record["type"] == "admitted"
        assert record["frame"]["net"]["source"] == [0, 0]


class TestTornTails:
    def test_torn_final_line_is_skipped_and_counted(self, tmp_path):
        wal = RequestWAL(tmp_path)
        wal.admit(FRAME, "fp-a")
        with open(wal_path(tmp_path), "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "type": "admitted", "seq": 9')  # torn
        replay = load_pending(tmp_path)
        assert replay.corrupt_lines == 1
        assert [e.fingerprint for e in replay.pending] == ["fp-a"]

    def test_garbage_lines_never_raise(self, tmp_path):
        wal_path(tmp_path).parent.mkdir(parents=True, exist_ok=True)
        wal_path(tmp_path).write_text(
            "not json\n[1,2]\n"
            '{"v":1,"type":"warp","seq":0}\n'
            '{"v":1,"type":"admitted","seq":"x"}\n')
        replay = load_pending(tmp_path)
        assert replay.pending == ()
        assert replay.corrupt_lines == 4


class TestCompaction:
    def test_compact_keeps_only_pending_with_original_seqs(self, tmp_path):
        wal = RequestWAL(tmp_path)
        done_seq = wal.admit(dict(FRAME, id="done"), "fp-done")
        wal.done(done_seq, "ok")
        open_seq = wal.admit(dict(FRAME, id="open"), "fp-open")
        compact(tmp_path, load_pending(tmp_path))
        lines = wal_path(tmp_path).read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["seq"] == open_seq
        assert record["fp"] == "fp-open"
        # a done written after compaction still pairs up by seq
        RequestWAL(tmp_path, next_seq=open_seq + 1).done(open_seq, "ok")
        assert load_pending(tmp_path).pending == ()


class TestFaultInjection:
    def test_fail_after_raises_once_and_counts(self, tmp_path):
        wal = RequestWAL(tmp_path, fail_after=1)
        wal.admit(FRAME, "fp-0")
        with pytest.raises(OSError):
            wal.admit(FRAME, "fp-1")
        assert wal.errors == 1
        # the injected failure consumed its append index; life goes on
        wal.admit(FRAME, "fp-2")
        replay = load_pending(tmp_path)
        assert [e.fingerprint for e in replay.pending] == ["fp-0", "fp-2"]
