"""Unit tests for the net-list text format."""

import pytest

from repro.geometry.net import Net
from repro.io.nets_file import (
    NetsFileError,
    format_nets,
    parse_nets,
    read_nets,
    write_nets,
)

SAMPLE = """
# two nets
net alpha
  source 0 0
  sink 100 200
  sink 300.5 400

net beta
  sink 10 20        # sinks may precede the source
  source 5 5
"""


class TestParse:
    def test_two_nets(self):
        nets = parse_nets(SAMPLE)
        assert [n.name for n in nets] == ["alpha", "beta"]
        assert nets[0].num_sinks == 2
        assert nets[0].sinks[1].x == 300.5

    def test_source_position_independent(self):
        nets = parse_nets(SAMPLE)
        assert nets[1].source.as_tuple() == (5.0, 5.0)

    def test_comments_and_blanks_ignored(self):
        nets = parse_nets("# c\n\nnet n\n source 0 0 # inline\n sink 1 1\n")
        assert nets[0].name == "n"

    @pytest.mark.parametrize("text,msg", [
        ("net n\n sink 1 1\n", "no source"),
        ("net n\n source 0 0\n", "no sinks"),
        ("net n\n source 0 0\n source 1 1\n sink 2 2\n", "two sources"),
        ("source 0 0\n", "outside a net"),
        ("net n\n source 0 zero\n sink 1 1\n", "bad coordinates"),
        ("net n\n source 0\n sink 1 1\n", "expected 'source"),
        ("net\n", "expected 'net"),
        ("net n\n wire 0 0\n", "unknown keyword"),
        ("", "no nets"),
    ])
    def test_malformed_inputs(self, text, msg):
        with pytest.raises(NetsFileError, match=msg):
            parse_nets(text)


class TestRoundTrip:
    def test_format_then_parse(self):
        nets = [Net.from_points([(0, 0), (1.25, 9), (88, 3)], name="x"),
                Net.from_points([(5, 5), (6, 6)], name="y")]
        recovered = parse_nets(format_nets(nets))
        assert [n.name for n in recovered] == ["x", "y"]
        assert recovered[0].pins == nets[0].pins

    def test_file_round_trip(self, tmp_path):
        nets = [Net.random(6, seed=1, name="demo")]
        path = tmp_path / "demo.nets"
        write_nets(nets, path)
        recovered = read_nets(path)
        assert recovered[0].name == "demo"
        for original, parsed in zip(nets[0].pins, recovered[0].pins):
            assert parsed.x == pytest.approx(original.x, rel=1e-6)
            assert parsed.y == pytest.approx(original.y, rel=1e-6)
