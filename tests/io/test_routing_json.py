"""Unit tests for routing-graph JSON serialization."""

import pytest

from repro.geometry.point import Point
from repro.graph.steiner import iterated_one_steiner
from repro.io.routing_json import (
    load_routing,
    routing_from_dict,
    routing_to_dict,
    save_routing,
)


class TestRoundTrip:
    def test_tree_round_trip(self, mst10):
        recovered = routing_from_dict(routing_to_dict(mst10))
        assert sorted(recovered.edges()) == sorted(mst10.edges())
        assert recovered.cost() == pytest.approx(mst10.cost())
        assert recovered.net.pins == mst10.net.pins

    def test_nontree_round_trip(self, mst10):
        graph = mst10.with_edge(*mst10.candidate_edges()[0])
        recovered = routing_from_dict(routing_to_dict(graph))
        assert recovered.num_edges == graph.num_edges
        assert not recovered.is_tree()

    def test_steiner_round_trip(self, net10):
        tree = iterated_one_steiner(net10)
        recovered = routing_from_dict(routing_to_dict(tree))
        assert len(recovered.steiner) == len(tree.steiner)
        assert recovered.cost() == pytest.approx(tree.cost())
        original = sorted(tree.position(s) for s in tree.steiner)
        round_tripped = sorted(recovered.position(s)
                               for s in recovered.steiner)
        assert round_tripped == original

    def test_file_round_trip(self, mst10, tmp_path):
        path = tmp_path / "route.json"
        save_routing(mst10, path)
        recovered = load_routing(path)
        assert recovered.cost() == pytest.approx(mst10.cost())

    def test_net_name_preserved(self, mst10):
        assert routing_from_dict(
            routing_to_dict(mst10)).net.name == mst10.net.name


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-routing"):
            routing_from_dict({"format": "something-else"})

    def test_gapped_steiner_indices_remapped(self, line_net):
        from repro.graph.mst import prim_mst

        graph = prim_mst(line_net)
        a = graph.add_steiner_point(Point(100, 100))
        b = graph.add_steiner_point(Point(200, 200))
        graph.add_edge(0, a)
        graph.add_edge(a, b)
        graph.remove_edge(0, a)
        graph.remove_edge(a, b)
        graph.remove_node(a)  # leaves a gap before b
        graph.add_edge(0, b)
        recovered = routing_from_dict(routing_to_dict(graph))
        assert len(recovered.steiner) == 1
        steiner_node = next(iter(recovered.steiner))
        assert recovered.position(steiner_node) == Point(200, 200)
        assert recovered.has_edge(0, steiner_node)
