"""Unit tests for bounding boxes and the Hanan grid."""

import pytest

from repro.geometry.hanan import BoundingBox, bounding_box, hanan_points
from repro.geometry.point import Point


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.half_perimeter == 7

    def test_contains(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains(Point(1, 1))
        assert box.contains(Point(0, 2))  # boundary counts
        assert not box.contains(Point(3, 1))

    def test_corners(self):
        corners = BoundingBox(0, 0, 1, 2).corners()
        assert set(corners) == {Point(0, 0), Point(1, 0),
                                Point(1, 2), Point(0, 2)}

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="degenerate"):
            BoundingBox(5, 0, 0, 1)

    def test_degenerate_line_box_allowed(self):
        box = BoundingBox(0, 1, 5, 1)
        assert box.height == 0


class TestBoundingBoxOfPoints:
    def test_of_points(self):
        box = bounding_box([Point(1, 5), Point(-2, 0), Point(3, 3)])
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (-2, 0, 3, 5)

    def test_single_point(self):
        box = bounding_box([Point(2, 2)])
        assert box.half_perimeter == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            bounding_box([])


class TestHananPoints:
    def test_l_shape_yields_two_candidates(self):
        # Two pins not axis-aligned: grid has 4 points, 2 are the pins.
        pins = [Point(0, 0), Point(2, 3)]
        grid = hanan_points(pins)
        assert set(grid) == {Point(0, 3), Point(2, 0)}

    def test_collinear_pins_have_no_candidates(self):
        pins = [Point(0, 0), Point(1, 0), Point(5, 0)]
        assert hanan_points(pins) == []

    def test_grid_size_bound(self):
        pins = [Point(x, y) for x, y in [(0, 0), (1, 2), (3, 1), (4, 4)]]
        grid = hanan_points(pins)
        assert len(grid) == 4 * 4 - 4  # |X| * |Y| minus the pins

    def test_include_pins_flag(self):
        pins = [Point(0, 0), Point(2, 3)]
        grid = hanan_points(pins, exclude_pins=False)
        assert set(pins) <= set(grid)
        assert len(grid) == 4

    def test_empty_input(self):
        assert hanan_points([]) == []

    def test_candidates_lie_inside_bounding_box(self):
        pins = [Point(0, 0), Point(7, 2), Point(3, 9)]
        box = bounding_box(pins)
        assert all(box.contains(p) for p in hanan_points(pins))
