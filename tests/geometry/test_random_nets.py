"""Unit tests for the seeded random-net generator."""

import pytest

from repro.geometry.random_nets import random_net, random_nets


class TestRandomNet:
    def test_pin_count_and_region(self):
        net = random_net(12, seed=0, region=500.0)
        assert net.num_pins == 12
        for pin in net.pins:
            assert 0 <= pin.x <= 500.0
            assert 0 <= pin.y <= 500.0

    def test_deterministic_for_seed(self):
        assert random_net(6, seed=9).pins == random_net(6, seed=9).pins

    def test_rejects_tiny_nets(self):
        with pytest.raises(ValueError, match="num_pins"):
            random_net(1, seed=0)

    def test_rejects_bad_region(self):
        with pytest.raises(ValueError, match="region"):
            random_net(5, seed=0, region=0.0)

    def test_default_name_encodes_size_and_seed(self):
        assert random_net(5, seed=3).name == "rand5_s3"

    def test_explicit_name(self):
        assert random_net(5, seed=3, name="x").name == "x"


class TestRandomNets:
    def test_yields_requested_count(self):
        nets = list(random_nets(5, count=7, seed=1))
        assert len(nets) == 7
        assert all(net.num_pins == 5 for net in nets)

    def test_trials_are_distinct(self):
        nets = list(random_nets(5, count=5, seed=1))
        pin_sets = {net.pins for net in nets}
        assert len(pin_sets) == 5

    def test_prefix_stability(self):
        """Asking for more trials must not reshuffle earlier ones."""
        short = [net.pins for net in random_nets(8, count=3, seed=2)]
        long = [net.pins for net in random_nets(8, count=10, seed=2)]
        assert long[:3] == short

    def test_master_seed_changes_everything(self):
        a = [net.pins for net in random_nets(8, count=3, seed=2)]
        b = [net.pins for net in random_nets(8, count=3, seed=3)]
        assert a != b

    def test_size_is_part_of_the_seed(self):
        """Different sizes draw independent streams, not prefixes."""
        small = next(iter(random_nets(5, count=1, seed=2)))
        large = next(iter(random_nets(6, count=1, seed=2)))
        assert small.pins != large.pins[: small.num_pins]

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError, match="count"):
            list(random_nets(5, count=0))

    def test_trial_names(self):
        nets = list(random_nets(5, count=2, seed=1))
        assert nets[0].name == "rand5_t0"
        assert nets[1].name == "rand5_t1"
