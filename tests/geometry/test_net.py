"""Unit tests for the Net container."""

import pytest

from repro.geometry.net import DEFAULT_REGION_UM, Net
from repro.geometry.point import Point


class TestConstruction:
    def test_pins_puts_source_first(self):
        net = Net(source=Point(0, 0), sinks=(Point(1, 1), Point(2, 2)))
        assert net.pins[0] == net.source
        assert net.pins[1:] == net.sinks

    def test_counts(self):
        net = Net(source=Point(0, 0), sinks=(Point(1, 1), Point(2, 2)))
        assert net.num_pins == 3
        assert net.num_sinks == 2
        assert len(net) == 3

    def test_sink_indices_skip_source(self):
        net = Net(source=Point(0, 0), sinks=(Point(1, 1), Point(2, 2)))
        assert list(net.sink_indices()) == [1, 2]

    def test_rejects_empty_sinks(self):
        with pytest.raises(ValueError, match="at least one sink"):
            Net(source=Point(0, 0), sinks=())

    def test_rejects_duplicate_pins(self):
        with pytest.raises(ValueError, match="duplicate pin"):
            Net(source=Point(0, 0), sinks=(Point(1, 1), Point(0, 0)))

    def test_rejects_duplicate_sinks(self):
        with pytest.raises(ValueError, match="duplicate pin"):
            Net(source=Point(0, 0), sinks=(Point(1, 1), Point(1, 1)))

    def test_list_sinks_coerced_to_tuple(self):
        net = Net(source=Point(0, 0), sinks=[Point(1, 1)])  # type: ignore
        assert isinstance(net.sinks, tuple)

    def test_iteration_yields_pins(self):
        net = Net(source=Point(0, 0), sinks=(Point(1, 1),))
        assert list(net) == [Point(0, 0), Point(1, 1)]


class TestFromPoints:
    def test_accepts_tuples(self):
        net = Net.from_points([(0, 0), (1, 1), (2, 0)])
        assert net.source == Point(0, 0)
        assert net.num_sinks == 2

    def test_accepts_points(self):
        net = Net.from_points([Point(0, 0), Point(5, 5)])
        assert net.sinks == (Point(5, 5),)

    def test_needs_two_points(self):
        with pytest.raises(ValueError, match="source and at least one sink"):
            Net.from_points([(0, 0)])


class TestRandom:
    def test_respects_num_pins(self):
        assert Net.random(8, seed=1).num_pins == 8

    def test_stays_in_region(self):
        net = Net.random(30, seed=3)
        for pin in net.pins:
            assert 0 <= pin.x <= DEFAULT_REGION_UM
            assert 0 <= pin.y <= DEFAULT_REGION_UM

    def test_seeded_reproducibility(self):
        assert Net.random(10, seed=5).pins == Net.random(10, seed=5).pins

    def test_different_seeds_differ(self):
        assert Net.random(10, seed=5).pins != Net.random(10, seed=6).pins


class TestRenamed:
    def test_changes_only_name(self):
        net = Net.from_points([(0, 0), (1, 1)], name="a")
        other = net.renamed("b")
        assert other.name == "b"
        assert other.pins == net.pins
