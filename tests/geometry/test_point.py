"""Unit tests for the Manhattan-plane Point."""

import math

import pytest

from repro.geometry.point import Point, euclidean, manhattan


class TestManhattanDistance:
    def test_axis_aligned(self):
        assert Point(0, 0).manhattan(Point(5, 0)) == 5
        assert Point(0, 0).manhattan(Point(0, 7)) == 7

    def test_diagonal_sums_components(self):
        assert Point(1, 2).manhattan(Point(4, 6)) == 3 + 4

    def test_self_distance_zero(self):
        p = Point(3.5, -2.25)
        assert p.manhattan(p) == 0.0

    def test_symmetry(self):
        a, b = Point(1.5, 2.5), Point(-3.0, 9.0)
        assert a.manhattan(b) == b.manhattan(a)

    def test_module_level_helper_matches_method(self):
        a, b = Point(1, 2), Point(3, 5)
        assert manhattan(a, b) == a.manhattan(b)

    def test_dominates_euclidean(self):
        a, b = Point(0, 0), Point(3, 4)
        assert a.manhattan(b) >= a.euclidean(b)


class TestEuclideanDistance:
    def test_pythagorean_triple(self):
        assert Point(0, 0).euclidean(Point(3, 4)) == pytest.approx(5.0)

    def test_module_level_helper(self):
        assert euclidean(Point(0, 0), Point(1, 1)) == pytest.approx(math.sqrt(2))


class TestPointOps:
    def test_midpoint(self):
        mid = Point(0, 0).midpoint(Point(4, 6))
        assert (mid.x, mid.y) == (2, 3)

    def test_translated(self):
        moved = Point(1, 2).translated(10, -5)
        assert (moved.x, moved.y) == (11, -3)

    def test_translated_returns_new_point(self):
        p = Point(1, 2)
        p.translated(1, 1)
        assert (p.x, p.y) == (1, 2)

    def test_as_tuple_and_iter(self):
        p = Point(2.5, 7.0)
        assert p.as_tuple() == (2.5, 7.0)
        x, y = p
        assert (x, y) == (2.5, 7.0)

    def test_immutability(self):
        p = Point(0, 0)
        with pytest.raises(AttributeError):
            p.x = 5.0

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1, 2)
        assert Point(1, 2) != Point(2, 1)
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_ordering_is_lexicographic(self):
        assert Point(1, 9) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)
