"""Unit tests for the A* maze router."""

import pytest

from repro.route.astar import astar_route, path_length
from repro.route.grid import GridError, RoutingGrid


@pytest.fixture
def grid() -> RoutingGrid:
    return RoutingGrid(region=1000.0, pitch=100.0)


class TestShortestPaths:
    def test_straight_line(self, grid):
        path = astar_route(grid, (0, 0), (5, 0))
        assert path[0] == (0, 0) and path[-1] == (5, 0)
        assert len(path) == 6
        assert path_length(grid, path) == pytest.approx(500.0)

    def test_l_path_has_manhattan_length(self, grid):
        path = astar_route(grid, (0, 0), (4, 7))
        assert path_length(grid, path) == pytest.approx(100.0 * 11)

    def test_trivial_path(self, grid):
        assert astar_route(grid, (3, 3), (3, 3)) == [(3, 3)]

    def test_path_is_4_connected_and_unblocked(self, grid):
        grid.block_rect(200.0, 0.0, 250.0, 700.0)
        path = astar_route(grid, (0, 0), (9, 0))
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
            assert not grid.is_blocked(b)

    def test_detour_around_wall(self, grid):
        # A vertical wall with a gap at the top forces a measured detour.
        grid.block_rect(450.0, 0.0, 450.0, 800.0)  # cells x=4, y=0..7
        path = astar_route(grid, (0, 0), (9, 0))
        direct = 9
        assert len(path) - 1 > direct
        assert path_length(grid, path) == pytest.approx(100.0 * (9 + 2 * 8))

    def test_no_route_raises(self, grid):
        grid.block_rect(450.0, 0.0, 450.0, 1000.0)  # full wall
        with pytest.raises(GridError, match="no route"):
            astar_route(grid, (0, 0), (9, 0))

    def test_blocked_endpoint_raises(self, grid):
        grid.block_cell((5, 5))
        with pytest.raises(GridError, match="blocked"):
            astar_route(grid, (5, 5), (0, 0))
        with pytest.raises(GridError, match="blocked"):
            astar_route(grid, (0, 0), (5, 5))

    def test_matches_bfs_distance_on_random_mazes(self):
        """A* with unit congestion-free costs equals BFS shortest paths."""
        import numpy as np
        from collections import deque

        rng = np.random.default_rng(5)
        for _ in range(5):
            grid = RoutingGrid(region=1200.0, pitch=100.0)
            for _ in range(40):
                cell = (int(rng.integers(12)), int(rng.integers(12)))
                if cell not in ((0, 0), (11, 11)):
                    grid.block_cell(cell)
            # BFS reference
            dist = {(0, 0): 0}
            queue = deque([(0, 0)])
            while queue:
                current = queue.popleft()
                for nxt in grid.neighbors(current):
                    if nxt not in dist:
                        dist[nxt] = dist[current] + 1
                        queue.append(nxt)
            if (11, 11) not in dist:
                continue
            path = astar_route(grid, (0, 0), (11, 11))
            assert len(path) - 1 == dist[(11, 11)]


class TestCongestionAwareness:
    def test_congestion_pushes_path_aside(self, grid):
        # Pre-load the straight row with usage; with a positive weight
        # the router must prefer a same-length parallel row.
        grid.add_usage([(x, 0) for x in range(10)])
        path = astar_route(grid, (0, 0), (9, 0), congestion_weight=2.0)
        interior = path[1:-1]
        assert any(cell[1] != 0 for cell in interior)

    def test_zero_weight_ignores_usage(self, grid):
        grid.add_usage([(x, 0) for x in range(10)] * 3)
        path = astar_route(grid, (0, 0), (9, 0), congestion_weight=0.0)
        assert all(cell[1] == 0 for cell in path)

    def test_negative_weight_rejected(self, grid):
        with pytest.raises(GridError, match="non-negative"):
            astar_route(grid, (0, 0), (1, 0), congestion_weight=-1.0)

    def test_deterministic(self, grid):
        grid.block_rect(300.0, 0.0, 350.0, 500.0)
        a = astar_route(grid, (0, 0), (9, 9))
        b = astar_route(grid, (0, 0), (9, 9))
        assert a == b
