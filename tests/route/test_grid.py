"""Unit tests for the routing grid."""

import pytest

from repro.geometry.point import Point
from repro.route.grid import GridError, RoutingGrid


@pytest.fixture
def grid() -> RoutingGrid:
    return RoutingGrid(region=1000.0, pitch=100.0)


class TestGeometry:
    def test_dimensions(self, grid):
        assert grid.cols == 10 and grid.rows == 10

    def test_cell_of_and_center_roundtrip(self, grid):
        cell = grid.cell_of(Point(250.0, 730.0))
        assert cell == (2, 7)
        center = grid.center_of(cell)
        assert (center.x, center.y) == (250.0, 750.0)

    def test_cell_of_clamps_to_grid(self, grid):
        assert grid.cell_of(Point(-50.0, 2000.0)) == (0, 9)

    def test_in_bounds(self, grid):
        assert grid.in_bounds((0, 0)) and grid.in_bounds((9, 9))
        assert not grid.in_bounds((10, 0))
        assert not grid.in_bounds((0, -1))

    def test_neighbors_corner(self, grid):
        assert sorted(grid.neighbors((0, 0))) == [(0, 1), (1, 0)]

    def test_validation(self):
        with pytest.raises(GridError):
            RoutingGrid(region=0.0)
        with pytest.raises(GridError):
            RoutingGrid(region=100.0, pitch=200.0)


class TestObstacles:
    def test_block_cell(self, grid):
        grid.block_cell((3, 3))
        assert grid.is_blocked((3, 3))
        assert (3, 3) not in grid.neighbors((3, 4))

    def test_block_rect_counts(self, grid):
        count = grid.block_rect(100.0, 100.0, 350.0, 350.0)
        assert count == 9  # centers at 150, 250, 350 in each axis
        assert grid.blockage_fraction() == pytest.approx(0.09)

    def test_degenerate_rect_rejected(self, grid):
        with pytest.raises(GridError, match="degenerate"):
            grid.block_rect(500.0, 0.0, 100.0, 100.0)

    def test_nearest_free_cell(self, grid):
        grid.block_rect(100.0, 100.0, 350.0, 350.0)
        assert grid.nearest_free_cell((0, 0)) == (0, 0)  # already free
        free = grid.nearest_free_cell((2, 2))
        assert not grid.is_blocked(free)
        assert abs(free[0] - 2) + abs(free[1] - 2) <= 2

    def test_out_of_range_rejected(self, grid):
        with pytest.raises(GridError, match="outside"):
            grid.block_cell((99, 0))


class TestUsage:
    def test_usage_accumulates(self, grid):
        grid.add_usage([(1, 1), (1, 2)])
        grid.add_usage([(1, 1)])
        assert grid.usage((1, 1)) == 2
        assert grid.usage((1, 2)) == 1
        assert grid.max_usage() == 2

    def test_overflow_metric(self, grid):
        grid.add_usage([(0, 0)] * 3)
        grid.add_usage([(0, 1)])
        assert grid.total_overflow(capacity=1) == 2
        assert grid.total_overflow(capacity=3) == 0
        with pytest.raises(GridError):
            grid.total_overflow(capacity=0)

    def test_clear_usage(self, grid):
        grid.add_usage([(0, 0)])
        grid.clear_usage()
        assert grid.max_usage() == 0
