"""Unit tests for design-level embedding (the full physical flow)."""

import pytest

from repro.graph.mst import prim_mst
from repro.route.design_embed import embed_design
from repro.route.grid import RoutingGrid
from repro.timing.design import random_design
from repro.timing.sta import analyze


@pytest.fixture(scope="module")
def design():
    return random_design(num_stages=4, stage_width=4, seed=6,
                         max_fanout=4)


class TestEmbedDesign:
    def test_every_net_embedded(self, design):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        result = embed_design(design, grid)
        assert set(result.embedded) == set(design.nets)
        for graph in result.embedded.values():
            assert graph.spans_net()

    def test_detour_factor_reasonable_on_open_grid(self, design):
        grid = RoutingGrid(region=10_000.0, pitch=200.0)
        result = embed_design(design, grid)
        assert 1.0 - 1e-9 <= result.detour_factor < 1.3

    def test_shared_grid_accumulates_usage(self, design):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        embed_design(design, grid)
        assert grid.max_usage() >= 1

    def test_congestion_weight_reduces_overflow(self, design):
        blind = RoutingGrid(region=10_000.0, pitch=400.0)
        embed_design(design, blind, congestion_weight=0.0)
        aware = RoutingGrid(region=10_000.0, pitch=400.0)
        embed_design(design, aware, congestion_weight=2.0)
        assert (aware.total_overflow(capacity=2)
                <= blind.total_overflow(capacity=2))

    def test_pre_routed_topologies_respected(self, design):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        name = next(iter(design.nets))
        custom = prim_mst(design.geometry_of(name))
        extra = custom.candidate_edges()
        if extra:
            custom.add_edge(*extra[0])
        result = embed_design(design, grid, routings={name: custom})
        embedded = result.embedded[name]
        # A cyclic abstract topology stays cyclic after embedding.
        if extra:
            assert not embedded.is_tree()

    def test_sta_accepts_embedded_routings(self, design, tech):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        result = embed_design(design, grid)
        abstract_report = analyze(design, tech, router=prim_mst)
        embedded_report = analyze(design, tech, router=prim_mst,
                                  routings=result.embedded)
        # Embedded geometry is never shorter, so timing never improves.
        assert (embedded_report.max_arrival
                >= abstract_report.max_arrival * 0.999)

    def test_blockage_inflates_design_wirelength(self, design):
        open_grid = RoutingGrid(region=10_000.0, pitch=250.0)
        open_result = embed_design(design, open_grid)
        walled = RoutingGrid(region=10_000.0, pitch=250.0)
        walled.block_rect(4000.0, 1000.0, 6000.0, 9000.0)
        walled_result = embed_design(design, walled)
        assert (walled_result.embedded_length
                >= open_result.embedded_length * 0.999)
