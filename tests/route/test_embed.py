"""Unit tests for routing-graph embedding."""

import pytest

from repro.delay.spice_delay import spice_delay
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError
from repro.graph.steiner import iterated_one_steiner
from repro.route.embed import embed_routing
from repro.route.grid import GridError, RoutingGrid


@pytest.fixture
def tree():
    return prim_mst(Net.random(8, seed=3))


class TestEmbedding:
    def test_every_edge_gets_a_path(self, tree):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        embedding = embed_routing(tree, grid)
        assert set(embedding.paths) == set(tree.edges())

    def test_open_grid_detour_factor_near_one(self, tree):
        grid = RoutingGrid(region=10_000.0, pitch=100.0)
        embedding = embed_routing(tree, grid)
        # Quantization to a 100 um pitch costs a few percent, no more.
        assert 1.0 - 1e-9 <= embedding.detour_factor() < 1.15

    def test_blockage_inflates_length(self):
        net = Net.from_points([(500, 5000), (9500, 5000)], name="cross")
        tree = prim_mst(net)
        open_grid = RoutingGrid(region=10_000.0, pitch=250.0)
        open_len = embed_routing(tree, open_grid).total_length()
        walled = RoutingGrid(region=10_000.0, pitch=250.0)
        walled.block_rect(4500.0, 0.0, 5500.0, 9000.0)  # wall with top gap
        detour_len = embed_routing(tree, walled).total_length()
        assert detour_len > open_len * 1.5

    def test_usage_charged(self, tree):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        embed_routing(tree, grid)
        assert grid.max_usage() >= 1

    def test_congestion_weight_spreads_wires(self):
        # Two parallel long edges between the same rows: with congestion
        # awareness their overlap must not exceed the no-awareness case.
        net = Net.from_points([(500, 5000), (9500, 5000), (500, 5200),
                               (9500, 5200)], name="bus")
        graph = RoutingGraph.from_edges(net, [(0, 1), (0, 2), (2, 3)])
        grid_blind = RoutingGrid(region=10_000.0, pitch=250.0)
        embed_routing(graph, grid_blind, congestion_weight=0.0)
        grid_aware = RoutingGrid(region=10_000.0, pitch=250.0)
        embed_routing(graph, grid_aware, congestion_weight=2.0)
        assert (grid_aware.total_overflow(capacity=1)
                <= grid_blind.total_overflow(capacity=1))

    def test_non_spanning_rejected(self):
        net = Net.random(5, seed=0)
        with pytest.raises(RoutingGraphError):
            embed_routing(RoutingGraph(net), RoutingGrid())

    def test_blocked_pin_strict_vs_snapped(self, tree):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        pin_cell = grid.cell_of(tree.position(0))
        grid.block_cell(pin_cell)
        with pytest.raises(GridError, match="blocked"):
            embed_routing(tree, grid)
        relaxed = RoutingGrid(region=10_000.0, pitch=250.0)
        relaxed.block_cell(pin_cell)
        embedding = embed_routing(tree, relaxed, snap_blocked_pins=True)
        assert embedding.total_length() > 0


class TestBackToRoutingGraph:
    def test_embedded_graph_spans_and_costs_match(self, tree):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        embedding = embed_routing(tree, grid)
        embedded = embedding.to_routing_graph()
        assert embedded.spans_net()
        assert embedded.cost() == pytest.approx(embedding.total_length(),
                                                rel=1e-9)

    def test_bend_nodes_are_steiner(self, tree):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        embedded = embed_routing(tree, grid).to_routing_graph()
        assert len(embedded.steiner) > 0
        for node in embedded.steiner:
            assert embedded.degree(node) >= 1

    def test_delay_models_accept_embedded_graph(self, tree, tech):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        embedded = embed_routing(tree, grid).to_routing_graph()
        abstract_delay = spice_delay(tree, tech)
        embedded_delay = spice_delay(embedded, tech)
        # Real geometry is never shorter, so never faster (same topology).
        assert embedded_delay >= abstract_delay * 0.98

    def test_abstract_steiner_nodes_survive(self, tech):
        net = Net.random(9, seed=11)
        steiner_tree = iterated_one_steiner(net)
        if not steiner_tree.steiner:
            pytest.skip("no Steiner points on this net")
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        embedded = embed_routing(steiner_tree, grid).to_routing_graph()
        assert embedded.spans_net()
        assert len(embedded.steiner) >= len(steiner_tree.steiner)

    def test_edge_accessor_validates(self, tree):
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        embedding = embed_routing(tree, grid)
        with pytest.raises(RoutingGraphError, match="not embedded"):
            embedding.embedded_length(0, 99)
