"""Public-API surface checks: everything advertised is importable and real."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.circuit",
    "repro.core",
    "repro.delay",
    "repro.experiments",
    "repro.geometry",
    "repro.graph",
    "repro.io",
    "repro.route",
    "repro.timing",
    "repro.viz",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_is_sorted_for_discoverability(self, package):
        module = importlib.import_module(package)
        exported = list(module.__all__)
        assert exported == sorted(exported), f"{package}.__all__ unsorted"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_top_level_quickstart_names(self):
        """The names the README quickstart uses are top-level exports."""
        import repro

        for name in ("Net", "Technology", "ldrg", "sldrg", "h1", "h2",
                     "h3", "ert", "ert_ldrg", "prim_mst", "spice_delay",
                     "csorg_ldrg", "wsorg", "horg"):
            assert hasattr(repro, name)

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstrings_present(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 40


class TestPublicDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_every_export_documented(self, package):
        import typing

        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name)
            if typing.get_origin(obj) is not None:
                continue  # typing aliases (Unions) cannot carry docstrings
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"
