"""End-to-end tests of the guard layer through the real pipeline.

These are the acceptance checks of the self-verification layer:

* a full-rate shadow audit of the |N| = 30 Elmore LDRG run reports
  **zero** fast/naive divergences at 1e-9 relative tolerance;
* an injected fast-path perturbation (the ``inject_error`` test hook)
  is detected, quarantines the fast path, and the run completes with
  the naive fallback producing the exact clean-run routing;
* audit/divergence counts flow through the sweep runtime into
  journaled trials, :class:`~repro.runtime.TrialResult`, table rows,
  and the rendered ``[audited N, diverged M]`` annotation;
* the CLI ``--guard`` flag reaches the experiment config.
"""

import json
from functools import partial

import pytest

from repro.core.ldrg import ldrg
from repro.delay.parameters import Technology
from repro.experiments.harness import ExperimentConfig, run_size_sweep
from repro.experiments.reporting import format_rows
from repro.geometry.net import Net
from repro.guard.incidents import KIND_AUDIT, KIND_DIVERGE, KIND_QUARANTINE
from repro.guard.policy import GuardPolicy, guard_scope
from repro.runtime import RuntimePolicy
from repro.runtime.provenance import collecting

TECH = Technology.cmos08()
RELATIVE_TOLERANCE = 1e-9
ACCEPTANCE_PINS = 30
SEED = 7


def counts(events, kind):
    return sum(e.count for e in events if e.kind == kind)


class TestAuditAcceptance:
    def test_30_pin_elmore_ldrg_audits_clean(self):
        """The headline claim: full-rate audit, zero divergences."""
        net = Net.random(ACCEPTANCE_PINS, seed=SEED)
        policy = GuardPolicy(mode="audit", audit_rate=1.0,
                             tolerance=RELATIVE_TOLERANCE)
        with guard_scope(policy), collecting() as events:
            result = ldrg(net, TECH, delay_model="elmore")
        audited = counts(events, KIND_AUDIT)
        assert audited > 0, "audit mode never engaged the shadow path"
        assert counts(events, KIND_DIVERGE) == 0
        assert counts(events, KIND_QUARANTINE) == 0
        # And the audited run is the plain run — auditing observes, it
        # does not steer.
        plain = ldrg(net, TECH, delay_model="elmore")
        assert [r.edge for r in result.history] \
            == [r.edge for r in plain.history]
        assert result.delay == pytest.approx(plain.delay,
                                             rel=RELATIVE_TOLERANCE)

    def test_injected_perturbation_is_caught_and_survived(self):
        """A drifting fast path is quarantined; the run still finishes
        with the exact naive-fallback routing."""
        net = Net.random(12, seed=SEED)
        clean = ldrg(net, TECH, delay_model="elmore",
                     candidate_evaluator="naive")
        policy = GuardPolicy(mode="audit", audit_rate=1.0,
                             inject_error=1e-4)
        with guard_scope(policy), collecting() as events:
            result = ldrg(net, TECH, delay_model="elmore")
        assert counts(events, KIND_DIVERGE) > 0
        assert counts(events, KIND_QUARANTINE) == 1
        # The first audited batch diverges, so every greedy choice was
        # made on reference scores: identical to the all-naive run.
        assert [r.edge for r in result.history] \
            == [r.edge for r in clean.history]
        assert result.delay == pytest.approx(clean.delay,
                                             rel=RELATIVE_TOLERANCE)

    def test_sentinel_mode_does_not_change_the_routing(self):
        net = Net.random(10, seed=SEED)
        plain = ldrg(net, TECH, delay_model="elmore")
        with guard_scope(GuardPolicy(mode="sentinel")):
            guarded = ldrg(net, TECH, delay_model="elmore")
        assert [r.edge for r in guarded.history] \
            == [r.edge for r in plain.history]
        assert guarded.delay == plain.delay


# --- sweep plumbing -------------------------------------------------------

def run_elmore_ldrg(config: ExperimentConfig, net: Net):
    """Module-level (picklable) elmore-oracle trial runner.

    The stock table runners search with the SPICE oracle, whose
    candidate path is the naive evaluator — the shadow audit only
    engages on the incremental Elmore engine, so the sweep tests drive
    an Elmore-oracle LDRG.
    """
    with config.guard_scope():
        return ldrg(net, config.tech, delay_model="elmore")


def sweep_config(**guard_kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        sizes=(10,), trials=3, seed=1994,
        guard=GuardPolicy(mode="audit", audit_rate=1.0, **guard_kwargs))


class TestSweepPlumbing:
    def test_rows_carry_audit_counts_and_render_annotation(self, tmp_path):
        config = sweep_config()
        rows = run_size_sweep(config, partial(run_elmore_ldrg, config),
                              runtime=RuntimePolicy(run_root=tmp_path))
        (row,) = rows
        assert row.audited > 0
        assert row.diverged == 0
        rendered = format_rows(rows)
        assert f"[audited {row.audited}, diverged 0]" in rendered

    def test_divergence_reaches_rows_and_journal(self, tmp_path):
        config = sweep_config(inject_error=1e-4)
        rows = run_size_sweep(config, partial(run_elmore_ldrg, config),
                              runtime=RuntimePolicy(run_root=tmp_path))
        (row,) = rows
        assert row.diverged > 0
        assert f"diverged {row.diverged}]" in format_rows(rows)

        # The journaled trials carry the provenance, counts included.
        trial_files = sorted(tmp_path.glob("*/trial_*.json"))
        assert trial_files, "sweep did not journal any trials"
        journaled = []
        for path in trial_files:
            data = json.loads(path.read_text(encoding="utf-8"))
            journaled.extend(data["result"]["provenance"])
        kinds = {event["kind"] for event in journaled}
        assert {KIND_AUDIT, KIND_DIVERGE, KIND_QUARANTINE} <= kinds
        assert sum(e["count"] for e in journaled
                   if e["kind"] == KIND_DIVERGE) == row.diverged

        # The manifest records which guard policy produced these numbers.
        (manifest_path,) = tmp_path.glob("*/manifest.json")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        guard = manifest["config"]["config"]["guard"]
        assert guard["mode"] == "audit"
        assert guard["inject_error"] == 1e-4

    def test_fingerprint_distinguishes_guard_policies(self):
        base = ExperimentConfig(sizes=(5,), trials=1)
        audited = ExperimentConfig(sizes=(5,), trials=1,
                                   guard=GuardPolicy(mode="audit"))
        assert base.fingerprint_data()["guard"] is None
        assert audited.fingerprint_data()["guard"]["mode"] == "audit"
        assert base.fingerprint_data() != audited.fingerprint_data()


class TestCliFlag:
    def test_guard_flag_lands_in_the_config(self):
        from repro.cli import _table_config, build_parser

        args = build_parser().parse_args(
            ["table", "6", "--trials", "2", "--sizes", "5",
             "--guard", "audit=0.25"])
        config = _table_config(args)
        assert config.guard == GuardPolicy(mode="audit", audit_rate=0.25)

    def test_guard_flag_defaults_to_none(self):
        from repro.cli import _table_config, build_parser

        args = build_parser().parse_args(
            ["table", "6", "--trials", "2", "--sizes", "5"])
        assert _table_config(args).guard is None

    def test_bad_guard_spec_is_a_config_error(self):
        from repro.cli import _table_config, build_parser
        from repro.runtime import ConfigError

        args = build_parser().parse_args(
            ["table", "6", "--trials", "2", "--sizes", "5",
             "--guard", "audit=lots"])
        with pytest.raises(ConfigError, match="audit rate"):
            _table_config(args)
