"""Unit tests for the shadow-audited candidate evaluator.

These use duck-typed fake evaluators (the audit wrapper only calls
``score_additions``/``score_width_upgrades``), so every sampling and
quarantine path can be exercised without building routing graphs.
The integration with the real incremental/naive pair lives in
``test_plumbing.py``.
"""

import pytest

from repro.guard.audit import ShadowAuditedEvaluator
from repro.guard.incidents import (
    KIND_AUDIT,
    KIND_DIVERGE,
    KIND_QUARANTINE,
)
from repro.guard.policy import GuardPolicy
from repro.runtime.provenance import collecting

AUDIT_ALL = GuardPolicy(mode="audit", audit_rate=1.0)


class FakeEvaluator:
    """Scores each candidate via ``score_of``; counts batch calls."""

    def __init__(self, score_of):
        self.score_of = score_of
        self.calls = 0

    def score_additions(self, graph, candidates):
        self.calls += 1
        return [self.score_of(c) for c in candidates]

    def score_width_upgrades(self, graph, widths, upgrades):
        self.calls += 1
        return [self.score_of(u) for u in upgrades]


def agreeing_pair():
    return FakeEvaluator(float), FakeEvaluator(float)


class TestCleanAudit:
    def test_agreeing_scores_pass_and_are_counted(self):
        fast, reference = agreeing_pair()
        auditor = ShadowAuditedEvaluator(fast, reference, AUDIT_ALL)
        with collecting() as events:
            scores = auditor.score_additions(None, [1, 2, 3])
        assert scores == [1.0, 2.0, 3.0]
        assert auditor.audited == 3
        assert auditor.diverged == 0
        assert not auditor.quarantined
        assert [e.kind for e in events] == [KIND_AUDIT]
        assert events[0].count == 3

    def test_width_upgrade_path_is_audited_too(self):
        fast, reference = agreeing_pair()
        auditor = ShadowAuditedEvaluator(fast, reference, AUDIT_ALL)
        scores = auditor.score_width_upgrades(None, {}, [4, 5])
        assert scores == [4.0, 5.0]
        assert auditor.audited == 2

    def test_empty_batch_is_not_counted(self):
        fast, reference = agreeing_pair()
        auditor = ShadowAuditedEvaluator(fast, reference, AUDIT_ALL)
        assert auditor.score_additions(None, []) == []
        assert auditor.audited == 0
        assert reference.calls == 0


class TestDivergence:
    def test_divergence_quarantines_and_serves_reference(self):
        fast = FakeEvaluator(lambda c: float(c) * 1.001)  # drifting
        reference = FakeEvaluator(float)
        auditor = ShadowAuditedEvaluator(fast, reference, AUDIT_ALL,
                                         source="unit-audit")
        with collecting() as events:
            scores = auditor.score_additions(None, [1, 2])
        # The divergent batch is replaced by the reference scores.
        assert scores == [1.0, 2.0]
        assert auditor.quarantined
        assert auditor.diverged == 2
        kinds = [e.kind for e in events]
        assert kinds == [KIND_AUDIT, KIND_DIVERGE, KIND_QUARANTINE]
        diverge = events[kinds.index(KIND_DIVERGE)]
        assert diverge.count == 2
        assert diverge.source == "unit-audit"
        quarantine = events[kinds.index(KIND_QUARANTINE)]
        assert quarantine.target == "naive"

    def test_quarantine_is_sticky(self):
        fast = FakeEvaluator(lambda c: float(c) * 2.0)
        reference = FakeEvaluator(float)
        auditor = ShadowAuditedEvaluator(fast, reference, AUDIT_ALL)
        auditor.score_additions(None, [1])
        assert auditor.quarantined
        fast_calls_before = fast.calls
        with collecting() as events:
            scores = auditor.score_additions(None, [7, 8])
        # The fast path is never consulted again; no new quarantine event.
        assert scores == [7.0, 8.0]
        assert fast.calls == fast_calls_before
        assert [e.kind for e in events] == []

    def test_tolerance_is_relative(self):
        # 1e-12 relative drift is inside the default 1e-9 tolerance.
        fast = FakeEvaluator(lambda c: float(c) * (1.0 + 1e-12))
        reference = FakeEvaluator(float)
        auditor = ShadowAuditedEvaluator(fast, reference, AUDIT_ALL)
        scores = auditor.score_additions(None, [1e6, 2e6])
        assert not auditor.quarantined
        assert scores == [1e6 * (1.0 + 1e-12), 2e6 * (1.0 + 1e-12)]


class TestSampling:
    def test_rate_zero_never_audits(self):
        fast, reference = agreeing_pair()
        policy = GuardPolicy(mode="audit", audit_rate=0.0)
        auditor = ShadowAuditedEvaluator(fast, reference, policy)
        for _ in range(20):
            auditor.score_additions(None, [1, 2])
        assert auditor.audited == 0
        assert reference.calls == 0

    def test_sampling_is_seed_deterministic(self):
        def audited_batches(seed):
            fast, reference = agreeing_pair()
            policy = GuardPolicy(mode="audit", audit_rate=0.5, seed=seed)
            auditor = ShadowAuditedEvaluator(fast, reference, policy)
            picked = []
            for batch in range(30):
                before = auditor.audited
                auditor.score_additions(None, [batch])
                picked.append(auditor.audited > before)
            return picked

        first = audited_batches(seed=11)
        assert first == audited_batches(seed=11)
        assert first != audited_batches(seed=12)
        assert any(first) and not all(first)

    def test_empty_batches_do_not_shift_the_sample(self):
        """The sampled subset depends on seed + sequence position only."""
        def picks(batches):
            fast, reference = agreeing_pair()
            policy = GuardPolicy(mode="audit", audit_rate=0.5, seed=5)
            auditor = ShadowAuditedEvaluator(fast, reference, policy)
            out = []
            for batch in batches:
                before = auditor.audited
                auditor.score_additions(None, batch)
                out.append(auditor.audited > before)
            return out

        plain = picks([[1], [2], [3]])
        with_empty = picks([[1], [], [3]])
        # Position 1 can never be audited when empty, but position 2's
        # draw must be unaffected by position 1's emptiness.
        assert plain[0] == with_empty[0]
        assert plain[2] == with_empty[2]


class TestInjectError:
    def test_inject_error_hook_triggers_detection(self):
        fast, reference = agreeing_pair()
        policy = GuardPolicy(mode="audit", audit_rate=1.0,
                             inject_error=1e-4)
        auditor = ShadowAuditedEvaluator(fast, reference, policy)
        scores = auditor.score_additions(None, [1, 2, 3])
        assert auditor.quarantined
        assert auditor.diverged == 3
        # The reference answer — not the perturbed one — is served.
        assert scores == [1.0, 2.0, 3.0]

    def test_inject_error_within_tolerance_is_invisible(self):
        fast, reference = agreeing_pair()
        policy = GuardPolicy(mode="audit", audit_rate=1.0,
                             tolerance=1e-3, inject_error=1e-6)
        auditor = ShadowAuditedEvaluator(fast, reference, policy)
        scores = auditor.score_additions(None, [2.0])
        assert not auditor.quarantined
        assert scores == pytest.approx([2.0 * (1.0 + 1e-6)])
