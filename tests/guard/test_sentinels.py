"""Unit tests for the invariant sentinels (repro.guard.sentinels)."""

import math

import pytest

from repro.guard.incidents import InvariantViolation
from repro.guard.policy import GuardPolicy, guard_scope
from repro.guard.sentinels import (
    ensure,
    ensure_found,
    sentinel_connected,
    sentinel_delay_non_increase,
    sentinel_finite_delays,
    sentinel_monotone_cost,
)

SENTINEL = GuardPolicy(mode="sentinel")


class FakeGraph:
    def __init__(self, connected):
        self._connected = connected

    def is_connected(self):
        return self._connected


class TestUnconditionalHelpers:
    def test_ensure_passes_and_raises(self):
        ensure(True, "fine")
        with pytest.raises(InvariantViolation, match="broken"):
            ensure(False, "broken")

    def test_ensure_found_narrows(self):
        assert ensure_found(42, "missing") == 42
        assert ensure_found(0, "falsy zero is still found") == 0
        assert ensure_found((), "empty tuple is still found") == ()

    def test_ensure_found_raises_on_none(self):
        with pytest.raises(InvariantViolation, match="no best edge"):
            ensure_found(None, "no best edge")

    def test_helpers_ignore_guard_mode(self):
        # ensure/ensure_found replace load-bearing asserts: always on.
        with guard_scope(GuardPolicy(mode="off")):
            with pytest.raises(InvariantViolation):
                ensure_found(None, "still raises in off mode")


class TestFiniteDelays:
    def test_noop_when_off(self):
        sentinel_finite_delays({1: math.nan, 2: -1.0}, source="t")

    def test_raises_on_nan(self):
        with guard_scope(SENTINEL):
            with pytest.raises(InvariantViolation, match="non-finite"):
                sentinel_finite_delays({1: math.nan}, source="t")

    def test_raises_on_negative(self):
        with guard_scope(SENTINEL):
            with pytest.raises(InvariantViolation, match="negative"):
                sentinel_finite_delays({1: -2.5e-9}, source="t")

    def test_passes_clean_delays(self):
        with guard_scope(SENTINEL):
            sentinel_finite_delays({1: 0.0, 2: 3.2e-9}, source="t")


class TestDelayNonIncrease:
    def test_noop_when_off(self):
        sentinel_delay_non_increase(1.0, 2.0, source="t")

    def test_passes_decrease_and_noise(self):
        with guard_scope(SENTINEL):
            sentinel_delay_non_increase(2.0e-9, 1.5e-9, source="t")
            sentinel_delay_non_increase(2.0e-9, 2.0e-9 * (1 + 1e-9),
                                        source="t")

    def test_raises_on_real_increase(self):
        with guard_scope(SENTINEL):
            with pytest.raises(InvariantViolation, match="increased"):
                sentinel_delay_non_increase(2.0e-9, 2.1e-9, source="t")


class TestConnected:
    def test_noop_when_off(self):
        sentinel_connected(FakeGraph(connected=False), source="t")

    def test_raises_on_disconnect(self):
        with guard_scope(SENTINEL):
            with pytest.raises(InvariantViolation, match="connectivity"):
                sentinel_connected(FakeGraph(connected=False), source="t")
            sentinel_connected(FakeGraph(connected=True), source="t")


class TestMonotoneCost:
    def test_noop_when_off(self):
        sentinel_monotone_cost(10.0, 1.0, source="t")

    def test_passes_increase_and_noise(self):
        with guard_scope(SENTINEL):
            sentinel_monotone_cost(10.0, 12.0, source="t")
            sentinel_monotone_cost(10.0, 10.0 * (1 - 1e-9), source="t")

    def test_raises_on_decrease(self):
        with guard_scope(SENTINEL):
            with pytest.raises(InvariantViolation, match="decreased"):
                sentinel_monotone_cost(10.0, 9.0, source="t")

    def test_raises_on_non_finite(self):
        with guard_scope(SENTINEL):
            with pytest.raises(InvariantViolation, match="non-finite"):
                sentinel_monotone_cost(10.0, math.inf, source="t")
