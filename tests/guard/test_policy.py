"""Unit tests for guard policies, scoping, and the --guard grammar."""

import pytest

from repro.guard.policy import (
    DEFAULT_AUDIT_TOLERANCE,
    GuardPolicy,
    OFF,
    active_guard,
    guard_scope,
    parse_guard,
)


class TestGuardPolicy:
    def test_defaults(self):
        policy = GuardPolicy()
        assert policy.mode == "off"
        assert policy.audit_rate == 1.0
        assert policy.tolerance == DEFAULT_AUDIT_TOLERANCE
        assert policy.inject_error == 0.0

    def test_mode_gating(self):
        assert not GuardPolicy(mode="off").sentinels_enabled
        assert not GuardPolicy(mode="off").audit_enabled
        assert GuardPolicy(mode="sentinel").sentinels_enabled
        assert not GuardPolicy(mode="sentinel").audit_enabled
        assert GuardPolicy(mode="audit").sentinels_enabled
        assert GuardPolicy(mode="audit").audit_enabled
        assert not GuardPolicy(mode="audit", audit_rate=0.0).audit_enabled

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown guard mode"):
            GuardPolicy(mode="paranoid")

    def test_rejects_bad_rate_and_tolerance(self):
        with pytest.raises(ValueError, match="audit rate"):
            GuardPolicy(mode="audit", audit_rate=1.5)
        with pytest.raises(ValueError, match="tolerance"):
            GuardPolicy(mode="audit", tolerance=0.0)

    def test_json_round_trip(self):
        policy = GuardPolicy(mode="audit", audit_rate=0.25, tolerance=1e-8,
                             seed=7, inject_error=1e-4)
        assert GuardPolicy.from_json_dict(policy.to_json_dict()) == policy

    def test_from_json_dict_defaults(self):
        assert GuardPolicy.from_json_dict({}) == GuardPolicy()


class TestGuardScope:
    def test_default_is_off(self):
        assert active_guard() is OFF

    def test_scope_activates_and_restores(self):
        policy = GuardPolicy(mode="sentinel")
        with guard_scope(policy) as active:
            assert active is policy
            assert active_guard() is policy
        assert active_guard() is OFF

    def test_scopes_nest_innermost_wins(self):
        outer = GuardPolicy(mode="sentinel")
        inner = GuardPolicy(mode="audit", audit_rate=0.5)
        with guard_scope(outer):
            with guard_scope(inner):
                assert active_guard() is inner
            assert active_guard() is outer

    def test_scope_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with guard_scope(GuardPolicy(mode="audit")):
                raise RuntimeError("boom")
        assert active_guard() is OFF


class TestParseGuard:
    def test_plain_modes(self):
        assert parse_guard("off") == GuardPolicy(mode="off")
        assert parse_guard("sentinel") == GuardPolicy(mode="sentinel")
        assert parse_guard("audit") == GuardPolicy(mode="audit",
                                                   audit_rate=1.0)

    def test_audit_rate_form(self):
        policy = parse_guard("audit=0.05")
        assert policy.mode == "audit"
        assert policy.audit_rate == 0.05

    def test_whitespace_and_case_are_forgiven(self):
        assert parse_guard("  AUDIT=0.5 ").audit_rate == 0.5

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="invalid guard spec"):
            parse_guard("bogus")

    def test_rejects_non_numeric_rate(self):
        with pytest.raises(ValueError, match="audit rate"):
            parse_guard("audit=lots")

    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError, match="audit rate"):
            parse_guard("audit=2.0")
