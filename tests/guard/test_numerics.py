"""Unit tests for the conditioned dense solves (repro.guard.numerics)."""

import numpy as np
import pytest

from repro.guard.incidents import KIND_INCIDENT, NumericalIncident
from repro.guard.numerics import (
    DEFAULT_RCOND_FLOOR,
    GuardedFactorization,
    guarded_solve,
)
from repro.runtime.provenance import collecting


def spd_system(n=6, seed=3):
    """A well-conditioned SPD matrix and a right-hand side."""
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((n, n))
    A = M @ M.T + n * np.eye(n)
    b = rng.standard_normal(n)
    return A, b


def general_system(n=6, seed=4):
    """A well-conditioned nonsymmetric matrix and a right-hand side."""
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) + n * np.eye(n)
    b = rng.standard_normal(n)
    return A, b


class TestCleanSolves:
    def test_spd_solve_matches_numpy(self):
        A, b = spd_system()
        fact = GuardedFactorization(A, spd=True, context="unit-spd")
        x = fact.solve(b)
        assert x == pytest.approx(np.linalg.solve(A, b), rel=1e-12)
        assert fact.rcond >= DEFAULT_RCOND_FLOOR
        assert not fact.regularized
        assert fact.epsilon == 0.0

    def test_lu_solve_matches_numpy(self):
        A, b = general_system()
        fact = GuardedFactorization(A, spd=False, context="unit-lu")
        assert fact.solve(b) == pytest.approx(np.linalg.solve(A, b),
                                              rel=1e-12)
        assert not fact.regularized

    def test_matrix_rhs_and_inverse(self):
        A, _ = spd_system()
        fact = GuardedFactorization(A, spd=True)
        B = np.arange(12, dtype=float).reshape(6, 2)
        assert fact.solve(B) == pytest.approx(np.linalg.solve(A, B),
                                              rel=1e-12)
        assert fact.inverse() == pytest.approx(np.linalg.inv(A), rel=1e-10)

    def test_one_shot_guarded_solve(self):
        A, b = general_system()
        x = guarded_solve(A, b, spd=False, context="one-shot")
        assert x == pytest.approx(np.linalg.solve(A, b), rel=1e-12)


class TestIncidents:
    def test_singular_raises_incident_with_fingerprint(self):
        A = np.zeros((4, 4))
        with pytest.raises(NumericalIncident) as excinfo:
            GuardedFactorization(A, spd=True, context="singular-spd")
        fp = excinfo.value.fingerprint
        assert fp.shape == 4
        assert fp.context == "singular-spd"
        assert len(fp.digest) == 16
        assert "singular" in str(excinfo.value)

    def test_singular_lu_raises_incident_not_linalgerror(self):
        A = np.ones((3, 3))  # rank one
        try:
            GuardedFactorization(A, spd=False, context="rank-one",
                                 rcond_floor=1e-3)
        except NumericalIncident:
            pass  # the only acceptable failure mode
        # A regularized success is also acceptable; a raw LinAlgError
        # escaping would have failed the test already.

    def test_non_finite_matrix_raises_incident(self):
        A, _ = spd_system()
        A[2, 2] = np.nan
        with pytest.raises(NumericalIncident) as excinfo:
            GuardedFactorization(A, context="nan-entry")
        assert "non-finite" in str(excinfo.value)

    def test_non_square_raises_value_error(self):
        with pytest.raises(ValueError):
            GuardedFactorization(np.zeros((3, 4)))

    def test_non_finite_rhs_raises_incident(self):
        A, b = spd_system()
        fact = GuardedFactorization(A)
        b[0] = np.inf
        with pytest.raises(NumericalIncident):
            fact.solve(b)


class TestRegularization:
    def test_recovers_ill_conditioned_and_records_provenance(self):
        # Nearly-rank-one SPD: unregularized rcond far below the floor,
        # but a Tikhonov rung restores solvability.
        A = np.ones((4, 4)) + 1e-16 * np.eye(4)
        with collecting() as events:
            fact = GuardedFactorization(A, spd=True, context="near-singular",
                                        rcond_floor=1e-8)
        assert fact.regularized
        assert fact.epsilon > 0.0
        assert fact.rcond >= 1e-8
        assert np.isfinite(fact.solve(np.ones(4))).all()
        kinds = [e.kind for e in events]
        assert KIND_INCIDENT in kinds
        incident = next(e for e in events if e.kind == KIND_INCIDENT)
        assert "regulariz" in incident.detail
        assert incident.source == "near-singular"

    def test_well_conditioned_records_nothing(self):
        A, _ = spd_system()
        with collecting() as events:
            GuardedFactorization(A)
        assert events == []


class TestFingerprint:
    def test_fingerprint_identifies_original_system(self):
        from repro.guard.incidents import fingerprint_system

        A, _ = spd_system()
        fact = GuardedFactorization(A, spd=True, context="fp-test")
        fp = fact.fingerprint()
        assert fp.digest == fingerprint_system(A).digest
        assert fp.rcond == fact.rcond
        assert fp.context == "fp-test"
        assert "fp-test" in fp.describe()
