"""Cross-engine agreement: every delay engine on the same routings.

Four independent computations of interconnect delay exist in this repo:
(1) the exact eigendecomposition solution, (2) MNA trapezoidal
integration, (3) MNA backward-Euler integration, and (4) moment analysis
(Elmore / two-pole). Agreement across them on nontrivial routing circuits
is the strongest internal evidence that the "SPICE" numbers in the tables
mean what they claim.
"""

import pytest

from repro.circuit.moments import (
    elmore_from_moments,
    node_moments,
    two_pole_delay,
)
from repro.delay.elmore_graph import graph_elmore_delays
from repro.delay.rc_builder import build_interconnect_circuit, node_label
from repro.delay.spice_delay import SpiceOptions, spice_delays
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.steiner import iterated_one_steiner


@pytest.fixture(scope="module", params=[11, 23])
def routing(request):
    net = Net.random(8, seed=request.param)
    return prim_mst(net)


class TestEngineAgreement:
    def test_three_transient_engines_agree(self, routing, tech):
        analytic = spice_delays(routing, tech, SpiceOptions(segments=2))
        trap = spice_delays(routing, tech, SpiceOptions(
            engine="transient", segments=2, num_steps=3000))
        be = spice_delays(routing, tech, SpiceOptions(
            engine="transient", segments=2, num_steps=3000,
            method="backward-euler"))
        worst = max(analytic, key=analytic.get)
        assert trap[worst] == pytest.approx(analytic[worst], rel=0.01)
        assert be[worst] == pytest.approx(analytic[worst], rel=0.03)

    def test_mna_moments_match_reduced_elmore(self, routing, tech):
        """Elmore via full MNA moments == Elmore via the reduced system."""
        circuit = build_interconnect_circuit(routing, tech, segments=1)
        moments = node_moments(circuit, count=2)
        reduced = graph_elmore_delays(routing, tech)
        for sink in routing.sink_indices():
            via_mna = elmore_from_moments(moments[node_label(sink)])
            assert via_mna == pytest.approx(reduced[sink], rel=1e-6)

    def test_two_pole_between_elmore_and_spice(self, routing, tech):
        """On the critical sink the two-pole estimate lands between the
        50% measurement and the Elmore bound (or very close to the
        measurement)."""
        spice = spice_delays(routing, tech, SpiceOptions(segments=1))
        worst = max(spice, key=spice.get)
        circuit = build_interconnect_circuit(routing, tech, segments=1)
        moments = node_moments(circuit, count=3)[node_label(worst)]
        estimate = two_pole_delay(moments)
        assert estimate == pytest.approx(spice[worst], rel=0.15)

    def test_agreement_survives_cycles_and_steiner_points(self, tech):
        net = Net.random(9, seed=31)
        graph = iterated_one_steiner(net)
        extra = graph.candidate_edges()[0]
        graph.add_edge(*extra)
        analytic = spice_delays(graph, tech, SpiceOptions(segments=2))
        numeric = spice_delays(graph, tech, SpiceOptions(
            engine="transient", segments=2, num_steps=3000))
        worst = max(analytic, key=analytic.get)
        assert numeric[worst] == pytest.approx(analytic[worst], rel=0.01)

    def test_inductance_is_second_order(self, routing, tech):
        rc = spice_delays(routing, tech, SpiceOptions(
            engine="transient", segments=2, num_steps=3000))
        rlc = spice_delays(routing, tech, SpiceOptions(
            engine="transient", segments=2, num_steps=3000,
            include_inductance=True))
        worst = max(rc, key=rc.get)
        assert rlc[worst] == pytest.approx(rc[worst], rel=0.02)
