"""ISSUE 8 acceptance: a 50-net generation is one batched pipeline.

The fleet path must reproduce the sequential greedy loop *exactly* —
identical chosen edges on every one of 50 nets, delays within 1e-9
relative — while actually batching (one stacked factorization per
generation, converged members dropping out). Throughput (≥ 3× at fleet
50) is measured by ``benchmarks/test_perf_multinet.py``; correctness is
pinned here where it runs in tier 1.
"""

import pytest

from repro.core.ldrg import ldrg
from repro.delay.multinet import route_fleet
from repro.delay.parameters import Technology
from repro.geometry.net import Net

TECH = Technology.cmos08()
FLEET_SIZE = 50
RELATIVE_TOLERANCE = 1e-9


class TestFiftyNetFleet:
    @pytest.fixture(scope="class")
    def nets(self):
        return [Net.random(10, seed=9000 + i, name=f"accept{i}")
                for i in range(FLEET_SIZE)]

    @pytest.fixture(scope="class")
    def fleet(self, nets):
        return route_fleet(nets, TECH)

    def test_whole_fleet_routes(self, fleet):
        assert len(fleet) == FLEET_SIZE
        assert all(result.algorithm == "ldrg" for result in fleet)

    def test_identical_chosen_edges_and_delays(self, nets, fleet):
        for net, batched in zip(nets, fleet):
            sequential = ldrg(net, TECH, delay_model="elmore",
                              candidate_evaluator="incremental")
            assert sorted(sequential.graph.edges()) == sorted(
                batched.graph.edges()), net.name
            assert sequential.num_added_edges == batched.num_added_edges
            for sink, want in sequential.delays.items():
                assert batched.delays[sink] == pytest.approx(
                    want, rel=RELATIVE_TOLERANCE), (net.name, sink)

    def test_improvements_are_real(self, fleet):
        # The paper's point: non-tree edges help; across 50 random
        # 10-pin nets at least some members must accept an edge, and no
        # member's routing may be worse than its starting tree.
        assert any(result.num_added_edges > 0 for result in fleet)
        for result in fleet:
            assert result.delay <= result.base_delay * (1 + 1e-12)
