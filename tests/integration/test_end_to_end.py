"""End-to-end integration: the full pipeline a library user would run."""

import pytest

from repro import (
    Net,
    Technology,
    ert_ldrg,
    h3,
    ldrg,
    prim_mst,
    sldrg,
    spice_delay,
    spice_delays,
)
from repro.circuit import circuit_from_deck, deck_from_circuit, transient
from repro.circuit.measure import delay_to_fraction
from repro.delay import build_interconnect_circuit
from repro.delay.models import SpiceDelayModel
from repro.delay.rc_builder import node_label
from repro.delay.spice_delay import SpiceOptions


@pytest.fixture(scope="module")
def fast_model():
    return SpiceDelayModel(Technology.cmos08(), SpiceOptions(segments=1))


class TestPublicApiFlow:
    def test_route_and_measure(self, tech):
        """The README quickstart, as a test."""
        net = Net.random(num_pins=10, seed=7)
        result = ldrg(net, tech)
        assert result.graph.spans_net()
        assert 0 < result.delay < 1e-6  # nanosecond regime
        assert result.cost >= prim_mst(net).cost()

    def test_all_algorithms_on_one_net(self, tech, fast_model):
        net = Net.random(num_pins=8, seed=3)
        mst_delay = spice_delay(prim_mst(net), tech)
        for algorithm in (
            lambda: ldrg(net, tech, delay_model=fast_model),
            lambda: sldrg(net, tech, delay_model=fast_model),
            lambda: h3(net, tech, evaluation_model=fast_model),
            lambda: ert_ldrg(net, tech, delay_model=fast_model),
        ):
            result = algorithm()
            assert result.graph.spans_net()
            # Every result lands within 3x of the MST delay scale.
            assert result.delay < 3 * mst_delay

    def test_routing_to_deck_to_simulation(self, tech):
        """Route -> export SPICE deck -> parse it back -> simulate ->
        same worst-sink delay as the library reports."""
        net = Net.random(num_pins=6, seed=9)
        result = ldrg(net, tech, delay_model="elmore",
                      evaluation_model="spice")
        graph = result.graph
        circuit = build_interconnect_circuit(graph, tech, segments=3)
        deck = deck_from_circuit(circuit)
        parsed = circuit_from_deck(deck)
        horizon = 10 * result.delay
        sim = transient(parsed, t_stop=horizon, num_steps=4000)
        worst = max(
            delay_to_fraction(sim.times, sim.voltage(node_label(s)), 1.0)
            for s in graph.sink_indices())
        assert worst == pytest.approx(result.delay, rel=0.03)

    def test_delays_dict_matches_scalar_api(self, tech):
        net = Net.random(num_pins=7, seed=13)
        tree = prim_mst(net)
        assert spice_delay(tree, tech) == pytest.approx(
            max(spice_delays(tree, tech).values()))


class TestPaperStory:
    def test_nontree_beats_tree_on_some_net(self, tech, fast_model):
        """The paper's one-sentence claim, end to end: there exists a net
        whose best non-tree routing beats its MST routing in SPICE-level
        delay by a meaningful margin at modest wirelength cost."""
        best = None
        for seed in range(10):
            result = ldrg(Net.random(10, seed=seed), tech,
                          delay_model=fast_model)
            if best is None or result.delay_ratio < best.delay_ratio:
                best = result
        assert best is not None
        assert best.delay_ratio < 0.85
        assert best.cost_ratio < 2.0
        assert not best.graph.is_tree()

    def test_extensions_compose(self, tech):
        """Critical-sink LDRG then wire sizing, sharing one oracle."""
        from repro.core.critical_sink import csorg_ldrg
        from repro.core.wire_sizing import wsorg

        net = Net.random(num_pins=8, seed=17)
        routed = csorg_ldrg(net, tech, critical_sink=1, delay_model="elmore")
        sized = wsorg(routed.graph, tech, delay_model="elmore")
        assert sized.delay <= sized.base_delay * (1 + 1e-12)
        assert set(sized.widths) == set(routed.graph.edges())
