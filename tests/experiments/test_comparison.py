"""Unit tests for the paper-data transcription and comparison rendering."""

import pytest

from repro.experiments.comparison import (
    compare_blocks,
    compare_table,
    parse_rendered_table,
)
from repro.experiments.harness import RowStats
from repro.experiments.paper_data import PAPER_FIGURES, PAPER_TABLES, paper_row
from repro.experiments.reporting import Table


class TestPaperDataIntegrity:
    def test_all_tables_have_all_sizes(self):
        for number, blocks in PAPER_TABLES.items():
            for label, sizes in blocks.items():
                assert sorted(sizes) == [5, 10, 20, 30], (number, label)

    @pytest.mark.parametrize("table,block,size,expected_delay", [
        (2, "LDRG Iteration One", 30, 0.76),
        (5, "H2 Heuristic", 5, 1.14),
        (6, "", 30, 0.71),
        (7, "", 20, 0.98),
    ])
    def test_spot_values(self, table, block, size, expected_delay):
        assert paper_row(table, block, size)[0] == expected_delay

    @pytest.mark.parametrize("table,block,size", [
        (2, "LDRG Iteration Two", 10),
        (4, "H1 Iteration Two", 10),
        (4, "H1 Iteration Two", 30),
    ])
    def test_iteration_two_weighted_average_consistency(self, table, block,
                                                        size):
        """The paper's own arithmetic: all-cases = p·winners + (1-p)·1."""
        all_delay, all_cost, pct, win_delay, win_cost = paper_row(
            table, block, size)
        p = pct / 100.0
        assert all_delay == pytest.approx(p * win_delay + (1 - p) * 1.0,
                                          abs=0.011)
        assert all_cost == pytest.approx(p * win_cost + (1 - p) * 1.0,
                                         abs=0.011)

    def test_figures_transcribed(self):
        assert PAPER_FIGURES[2] == (5.4, 3.6, 33.3, 21.5)
        assert set(PAPER_FIGURES) == {1, 2, 3, 5}


def _stats(size, delay=0.8, cost=1.2, winners=90.0) -> RowStats:
    return RowStats(net_size=size, num_trials=10, all_delay=delay,
                    all_cost=cost, percent_winners=winners,
                    win_delay=delay, win_cost=cost)


class TestParseRenderedTable:
    def test_round_trip_through_render(self):
        table = Table(title="Table X", blocks={
            "A": [_stats(5), _stats(10)],
            "B": [_stats(5, delay=0.9)],
        })
        parsed = parse_rendered_table(table.render())
        assert set(parsed) == {"A", "B"}
        assert parsed["A"][10].all_delay == pytest.approx(0.8)
        assert parsed["B"][5].all_delay == pytest.approx(0.9)

    def test_na_rows_preserved(self):
        na = RowStats(net_size=5, num_trials=0, all_delay=0, all_cost=0,
                      percent_winners=0, win_delay=None, win_cost=None,
                      not_applicable=True)
        table = Table(title="T", blocks={"": [na]})
        parsed = parse_rendered_table(table.render())
        assert parsed[""][5].not_applicable

    def test_no_rows_rejected(self):
        with pytest.raises(ValueError, match="no table rows"):
            parse_rendered_table("just some text")


class TestCompare:
    def test_compare_table_mentions_both_columns(self):
        measured = Table(title="Table 6", blocks={
            "": [_stats(s) for s in (5, 10, 20, 30)]})
        text = compare_table(6, measured)
        assert "paper" in text and "measured" in text
        assert "0.71" in text  # the paper's 30-pin value
        assert "0.80 / 1.20 / 90%" in text

    def test_missing_measurement_marked(self):
        text = compare_blocks(6, {"": {5: _stats(5)}})
        assert "(not run)" in text

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError, match="no published data"):
            compare_blocks(1, {})
