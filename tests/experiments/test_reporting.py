"""Unit tests for table rendering."""

from repro.experiments.harness import RowStats
from repro.experiments.reporting import Table, format_rows


def row(size=10, all_delay=0.85, all_cost=1.2, winners=90.0,
        win_delay=0.82, win_cost=1.25, na=False) -> RowStats:
    return RowStats(net_size=size, num_trials=50, all_delay=all_delay,
                    all_cost=all_cost, percent_winners=winners,
                    win_delay=win_delay, win_cost=win_cost,
                    not_applicable=na)


class TestFormatRows:
    def test_values_formatted_two_decimals(self):
        text = format_rows([row()])
        assert "0.85" in text
        assert "1.20" in text
        assert "90" in text

    def test_na_row(self):
        text = format_rows([row(na=True)])
        assert text.count("NA") == 5

    def test_no_winners_prints_na_in_winner_columns(self):
        text = format_rows([row(winners=0.0, win_delay=None, win_cost=None)])
        assert text.count("NA") == 2

    def test_header_present(self):
        text = format_rows([row()])
        assert "net size" in text
        assert "% Winners" in text


class TestTable:
    def test_render_single_block(self):
        table = Table(title="T", blocks={"": [row()]})
        text = table.render()
        assert text.startswith("T\n=")
        assert "--" not in text.splitlines()[2][:2]

    def test_render_named_blocks(self):
        table = Table(title="T", blocks={"A": [row()], "B": [row(size=20)]})
        text = table.render()
        assert "-- A --" in text
        assert "-- B --" in text

    def test_notes_rendered(self):
        table = Table(title="T", blocks={"": [row()]}, notes="a note")
        assert table.render().endswith("a note")

    def test_rows_accessor(self):
        rows = [row()]
        table = Table(title="T", blocks={"": rows})
        assert table.rows() is rows
