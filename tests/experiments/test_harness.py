"""Unit tests for the experiment harness statistics.

The aggregation arithmetic is checked against the paper's own numbers:
the iteration-two rows of Tables 2 and 4 are weighted averages of the
winners-only columns with 1.0 for non-participants, which pins down the
statistics' semantics exactly.
"""

import pytest

from repro.core.result import IterationRecord, RoutingResult
from repro.experiments.harness import (
    ExperimentConfig,
    TrialRatios,
    aggregate,
    final_ratios,
    iteration_ratios,
    run_size_sweep,
)
from repro.graph.mst import prim_mst


def make_result(net10, base_delay=1.0, history_delays=(), base_cost=100.0):
    graph = prim_mst(net10)
    history = []
    cost = base_cost
    for delay in history_delays:
        cost += 10.0
        history.append(IterationRecord(edge=(0, 1), delay=delay, cost=cost))
    final_delay = history_delays[-1] if history_delays else base_delay
    return RoutingResult(
        graph=graph, delay=final_delay, cost=cost,
        delays={1: final_delay}, base_delay=base_delay, base_cost=base_cost,
        algorithm="x", model="y", history=history)


class TestAggregate:
    def test_all_cases_mean(self):
        ratios = [TrialRatios(0.8, 1.2, True), TrialRatios(1.0, 1.0, False)]
        row = aggregate(10, ratios)
        assert row.all_delay == pytest.approx(0.9)
        assert row.all_cost == pytest.approx(1.1)
        assert row.percent_winners == pytest.approx(50.0)
        assert row.win_delay == pytest.approx(0.8)
        assert row.win_cost == pytest.approx(1.2)

    def test_no_winners_gives_na(self):
        row = aggregate(5, [TrialRatios(1.0, 1.0, False)])
        assert row.win_delay is None
        assert row.win_cost is None
        assert row.percent_winners == 0.0

    def test_paper_arithmetic_table2_iteration_two(self):
        """10% winners at 0.79/1.40 + 90% at 1.0 -> 0.98/1.04 (Table 2)."""
        ratios = ([TrialRatios(0.79, 1.40, True)] * 5
                  + [TrialRatios(1.0, 1.0, False)] * 45)
        row = aggregate(10, ratios)
        assert row.all_delay == pytest.approx(0.979, abs=0.001)
        assert row.all_cost == pytest.approx(1.04, abs=0.001)
        assert row.percent_winners == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no trial outcomes"):
            aggregate(5, [])


class TestIterationRatios:
    def test_first_iteration_vs_baseline(self, net10):
        result = make_result(net10, base_delay=1.0, history_delays=(0.8, 0.7))
        ratios = iteration_ratios(result, 1)
        assert ratios.delay_ratio == pytest.approx(0.8)
        assert ratios.improved

    def test_second_iteration_is_marginal(self, net10):
        result = make_result(net10, base_delay=1.0, history_delays=(0.8, 0.7))
        ratios = iteration_ratios(result, 2)
        assert ratios.delay_ratio == pytest.approx(0.7 / 0.8)
        assert ratios.cost_ratio == pytest.approx(120.0 / 110.0)

    def test_non_participant_contributes_unity(self, net10):
        result = make_result(net10, history_delays=(0.8,))
        ratios = iteration_ratios(result, 2)
        assert ratios.delay_ratio == 1.0
        assert not ratios.improved

    def test_zero_iterations_rejected(self, net10):
        with pytest.raises(ValueError, match="numbered from 1"):
            iteration_ratios(make_result(net10), 0)

    def test_final_ratios(self, net10):
        result = make_result(net10, base_delay=1.0, history_delays=(0.5,))
        ratios = final_ratios(result)
        assert ratios.delay_ratio == pytest.approx(0.5)
        assert ratios.improved


class TestExperimentConfig:
    def test_defaults_match_paper(self):
        config = ExperimentConfig()
        assert config.sizes == (5, 10, 20, 30)
        assert config.trials == 50
        assert config.tech.driver_resistance == 100.0

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "7")
        monkeypatch.setenv("REPRO_SIZES", "4,8")
        monkeypatch.setenv("REPRO_SEED", "123")
        config = ExperimentConfig.from_env()
        assert config.trials == 7
        assert config.sizes == (4, 8)
        assert config.seed == 123

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        monkeypatch.delenv("REPRO_SIZES", raising=False)
        config = ExperimentConfig.from_env(default_trials=3,
                                           default_sizes=(5,))
        assert config.trials == 3
        assert config.sizes == (5,)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(trials=0)
        with pytest.raises(ValueError):
            ExperimentConfig(sizes=(1,))

    def test_nets_are_reproducible(self):
        config = ExperimentConfig(trials=3, sizes=(5,))
        first = [net.pins for net in config.nets(5)]
        second = [net.pins for net in config.nets(5)]
        assert first == second

    def test_models_reflect_segments(self):
        config = ExperimentConfig(segments_search=1, segments_eval=4)
        assert config.search_model().options.segments == 1
        assert config.eval_model().options.segments == 4


class TestRunSizeSweep:
    def test_rows_per_size(self, tech):
        config = ExperimentConfig(sizes=(4, 5), trials=2)

        def fake_run(net):
            return make_result_net(net)

        def make_result_net(net):
            graph = prim_mst(net)
            return RoutingResult(
                graph=graph, delay=0.9, cost=110.0, delays={1: 0.9},
                base_delay=1.0, base_cost=100.0, algorithm="x", model="y")

        rows = run_size_sweep(config, fake_run)
        assert [row.net_size for row in rows] == [4, 5]
        assert all(row.num_trials == 2 for row in rows)
        assert all(row.all_delay == pytest.approx(0.9) for row in rows)
