"""Fleet-batched table generation: structure, equivalence, fallback."""

import pytest

from repro.experiments.fleet import (
    FLEET_TABLES,
    fleet_row_results,
    run_fleet_table,
    run_table_multinet,
)
from repro.experiments.harness import ExperimentConfig, final_ratios
from repro.experiments.reporting import Table
from repro.guard.incidents import KIND_FALLBACK
from repro.runtime import provenance


@pytest.fixture(scope="module")
def tiny() -> ExperimentConfig:
    return ExperimentConfig(sizes=(5, 6), trials=3)


class TestEligibility:
    def test_fleet_tables_are_the_greedy_ones(self):
        assert FLEET_TABLES == (2, 3, 7)

    def test_ineligible_table_raises(self, tiny):
        with pytest.raises(ValueError, match="no fleet-batched form"):
            run_fleet_table(4, tiny)


class TestFleetRows:
    def test_row_results_match_trial_nets(self, tiny):
        results = fleet_row_results(7, tiny, size=5)
        assert len(results) == tiny.trials
        for result in results:
            assert result.algorithm == "ldrg"
            ratios = final_ratios(result)
            assert ratios.delay_ratio <= 1.0 + 1e-9

    def test_table_structure(self, tiny):
        table = run_fleet_table(3, tiny)
        assert isinstance(table, Table)
        assert "fleet-batched" in table.title
        assert "SLDRG" in table.title
        (rows,) = table.blocks.values()
        assert [row.net_size for row in rows] == list(tiny.sizes)

    def test_table2_iteration_blocks(self, tiny):
        table = run_fleet_table(2, tiny)
        assert set(table.blocks) == {"LDRG Iteration One",
                                     "LDRG Iteration Two"}


class TestRunTableMultinet:
    def test_eligible_is_batched(self, tiny):
        table, batched = run_table_multinet(7, tiny)
        assert batched
        assert "fleet-batched" in table.title

    def test_ineligible_falls_back_with_event(self, tiny):
        sentinel = Table(title="sequential table 4", blocks={}, notes="")
        with provenance.collecting() as events:
            table, batched = run_table_multinet(
                4, tiny, sequential=lambda number, config: sentinel)
        assert not batched
        assert table is sentinel
        fallbacks = [e for e in events if e.kind == KIND_FALLBACK]
        assert fallbacks and fallbacks[0].source == "table4"
        assert fallbacks[0].target == "sequential"
