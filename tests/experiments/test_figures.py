"""Integration tests for the figure drivers."""

import pytest

from repro.experiments.figures import (
    FIGURE_DRIVERS,
    figure1,
    run_figure,
)
from repro.experiments.harness import ExperimentConfig


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return ExperimentConfig(sizes=(5,), trials=1)


@pytest.fixture(scope="module")
def fig1(config):
    return figure1(config)


class TestFigure1:
    def test_shape(self, fig1):
        assert fig1.net.num_pins == 4
        assert fig1.before.is_tree()
        assert not fig1.after.is_tree()
        assert len(fig1.added_edges) == 1

    def test_improvement_metrics(self, fig1):
        assert fig1.delay_improvement_pct >= 15.0
        assert fig1.wire_penalty_pct > 0.0
        assert fig1.after_delay < fig1.before_delay
        assert fig1.after_cost > fig1.before_cost

    def test_caption_mentions_numbers(self, fig1):
        caption = fig1.caption()
        assert "ns" in caption
        assert "improvement" in caption

    def test_before_graph_is_after_minus_added(self, fig1):
        after_edges = set(fig1.after.edges())
        before_edges = set(fig1.before.edges())
        added = {(min(u, v), max(u, v)) for u, v in fig1.added_edges}
        assert after_edges - before_edges == added

    def test_svg_export(self, fig1, tmp_path):
        before_path, after_path = fig1.save_svgs(tmp_path)
        before_svg = open(before_path, encoding="utf-8").read()
        after_svg = open(after_path, encoding="utf-8").read()
        assert before_svg.startswith("<svg")
        assert "stroke-dasharray" not in before_svg  # no added edges yet
        assert "stroke-dasharray" in after_svg       # added edge highlighted

    def test_deterministic(self, config, fig1):
        again = figure1(config)
        assert again.net.pins == fig1.net.pins
        assert again.added_edges == fig1.added_edges


class TestDispatch:
    def test_registry(self):
        assert sorted(FIGURE_DRIVERS) == [1, 2, 3, 5]

    def test_unknown_figure(self, config):
        with pytest.raises(ValueError, match="no such figure"):
            run_figure(4, config)
