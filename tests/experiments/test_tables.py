"""Integration tests for the table drivers (tiny configurations).

Full-scale reproduction lives in benchmarks/; here each driver runs on a
minimal config to pin down its structure: block names, row order,
normalization baselines, and the NA convention.
"""

import pytest

from repro.experiments.harness import ExperimentConfig
from repro.experiments.tables import (
    TABLE_DRIVERS,
    run_table,
    table1,
    table2,
    table4,
    table5,
    table6,
)


@pytest.fixture(scope="module")
def tiny() -> ExperimentConfig:
    return ExperimentConfig(sizes=(5, 6), trials=3)


class TestTable1:
    def test_lists_all_parameters(self):
        text = table1()
        for fragment in ("driver resistance", "wire resistance",
                         "wire capacitance", "wire inductance",
                         "sink loading capacitance", "layout area"):
            assert fragment in text


class TestTableStructure:
    def test_table2_blocks_and_sizes(self, tiny):
        table = table2(tiny)
        assert list(table.blocks) == ["LDRG Iteration One",
                                      "LDRG Iteration Two"]
        assert [r.net_size for r in table.rows("LDRG Iteration One")] == [5, 6]

    def test_table2_iteration_one_never_worse(self, tiny):
        for row in table2(tiny).rows("LDRG Iteration One"):
            assert row.all_delay <= 1.0 + 1e-9

    def test_table4_h1_blocks(self, tiny):
        table = table4(tiny)
        assert list(table.blocks) == ["H1 Iteration One", "H1 Iteration Two"]

    def test_table5_two_heuristics(self, tiny):
        table = table5(tiny)
        assert list(table.blocks) == ["H2 Heuristic", "H3 Heuristic"]
        for rows in table.blocks.values():
            for row in rows:
                assert row.all_cost >= 1.0 - 1e-9

    def test_table6_single_block(self, tiny):
        table = table6(tiny)
        assert list(table.blocks) == [""]
        assert all(row.num_trials == 3 for row in table.rows())

    def test_render_does_not_crash(self, tiny):
        text = table6(tiny).render()
        assert "Table 6" in text


class TestRunTable:
    def test_dispatch(self, tiny):
        table = run_table(6, tiny)
        assert "Elmore Routing Tree" in table.title

    def test_unknown_number(self, tiny):
        with pytest.raises(ValueError, match="no such experiment table"):
            run_table(1, tiny)  # Table 1 has its own non-statistical driver

    def test_driver_registry_complete(self):
        assert sorted(TABLE_DRIVERS) == [2, 3, 4, 5, 6, 7]
