"""Unit tests for the parameter sweeps."""

import pytest

from repro.experiments.harness import ExperimentConfig
from repro.experiments.sweeps import (
    SweepPoint,
    driver_sweep,
    format_sweep,
    size_scaling,
)


@pytest.fixture(scope="module")
def tiny() -> ExperimentConfig:
    return ExperimentConfig(sizes=(5,), trials=3)


class TestDriverSweep:
    def test_points_cover_requested_drivers(self, tiny):
        points = driver_sweep(tiny, driver_resistances=(50.0, 200.0),
                              net_size=6)
        assert [p.x for p in points] == [50.0, 200.0]

    def test_ratios_within_greedy_bounds(self, tiny):
        for point in driver_sweep(tiny, driver_resistances=(100.0,),
                                  net_size=6):
            assert 0.0 < point.delay_ratio <= 1.0 + 1e-9
            assert point.cost_ratio >= 1.0 - 1e-9
            assert 0.0 <= point.percent_winners <= 100.0

    def test_empty_drivers_rejected(self, tiny):
        with pytest.raises(ValueError, match="at least one driver"):
            driver_sweep(tiny, driver_resistances=())


class TestSizeScaling:
    def test_points_cover_sizes(self, tiny):
        points = size_scaling(tiny, sizes=(4, 6))
        assert [p.x for p in points] == [4.0, 6.0]

    def test_empty_sizes_rejected(self, tiny):
        with pytest.raises(ValueError, match="at least one net size"):
            size_scaling(tiny, sizes=())


class TestFormat:
    def test_text_layout(self):
        points = [SweepPoint(x=10.0, delay_ratio=0.85, cost_ratio=1.2,
                             percent_winners=90.0)]
        text = format_sweep("T", "pins", points)
        assert text.splitlines()[0] == "T"
        assert "0.850" in text
        assert "90" in text
