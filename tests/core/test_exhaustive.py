"""Unit tests for the exhaustive ORG/ORT solvers."""

import pytest

from repro.core.exhaustive import (
    MAX_PINS,
    optimal_routing_graph,
    optimal_routing_tree,
)
from repro.core.ldrg import ldrg
from repro.delay.models import ElmoreGraphModel
from repro.geometry.net import Net
from repro.graph.mst import prim_mst


@pytest.fixture(scope="module")
def oracle(tech=None):
    from repro.delay.parameters import Technology

    return ElmoreGraphModel(Technology.cmos08())


class TestExhaustiveOrg:
    def test_two_pin_net_is_single_edge(self, tech):
        net = Net.from_points([(0, 0), (1000, 0)])
        result = optimal_routing_graph(net, tech)
        assert result.graph.edges() == [(0, 1)]
        assert result.is_tree

    def test_optimum_bounds_every_heuristic(self, tech, oracle):
        for seed in range(4):
            net = Net.random(5, seed=seed)
            org = optimal_routing_graph(net, tech)
            greedy = ldrg(net, tech, delay_model=oracle)
            mst_delay = oracle.max_delay(prim_mst(net))
            assert org.delay <= greedy.delay * (1 + 1e-9)
            assert org.delay <= mst_delay * (1 + 1e-9)

    def test_org_at_most_ort(self, tech):
        """Trees are a subset of graphs, so ORG <= ORT always."""
        for seed in range(4):
            net = Net.random(5, seed=seed)
            org = optimal_routing_graph(net, tech)
            ort = optimal_routing_tree(net, tech)
            assert org.delay <= ort.delay * (1 + 1e-9)

    def test_result_spans_net(self, tech):
        net = Net.random(5, seed=9)
        assert optimal_routing_graph(net, tech).graph.spans_net()
        assert optimal_routing_tree(net, tech).graph.is_tree()

    def test_tie_break_prefers_fewer_edges(self, tech):
        """Among delay-equal optima the sparsest/cheapest routing wins,
        so the reported ORG never carries gratuitous edges."""
        net = Net.random(4, seed=3)
        org = optimal_routing_graph(net, tech)
        assert org.graph.num_edges <= 6
        # Removing any single edge of the reported optimum must either
        # disconnect the net or strictly worsen the delay.
        model = ElmoreGraphModel(tech)
        for u, v in org.graph.edges():
            trial = org.graph.copy()
            trial.remove_edge(u, v)
            if trial.is_connected():
                assert model.max_delay(trial) > org.delay * (1 - 1e-9)

    def test_size_limit_enforced(self, tech):
        with pytest.raises(ValueError, match="limited to"):
            optimal_routing_graph(Net.random(MAX_PINS + 1, seed=0), tech)

    def test_evaluated_counts_reported(self, tech):
        net = Net.random(4, seed=1)
        org = optimal_routing_graph(net, tech)
        ort = optimal_routing_tree(net, tech)
        # 4 nodes: 16 spanning trees; connected graphs with >= 3 edges: 38.
        assert ort.evaluated == 16
        assert org.evaluated == 38


class TestAgainstSpiceOracle:
    def test_spice_and_elmore_optima_agree_often(self, tech):
        """The oracle choice rarely changes the tiny-net optimum — a
        fidelity check in Boese et al.'s sense."""
        agreements = 0
        for seed in range(4):
            net = Net.random(4, seed=seed)
            via_elmore = optimal_routing_graph(net, tech, "elmore")
            via_spice = optimal_routing_graph(net, tech, "spice")
            agreements += (sorted(via_elmore.graph.edges())
                           == sorted(via_spice.graph.edges()))
        assert agreements >= 3
