"""Unit tests for the critical-sink tree variants (ERT-C / SERT-C)."""

import pytest

from repro.core.critical_sink import single_critical_sink
from repro.core.ert import elmore_routing_tree
from repro.core.sert import steiner_elmore_routing_tree
from repro.delay.elmore_tree import elmore_delays
from repro.geometry.net import Net


@pytest.mark.parametrize("construct", [elmore_routing_tree,
                                       steiner_elmore_routing_tree],
                         ids=["ert_c", "sert_c"])
class TestCriticalTrees:
    def test_still_a_spanning_tree(self, construct, net10, tech):
        weights = single_critical_sink(net10, 3)
        tree = construct(net10, tech, criticalities=weights)
        assert tree.is_tree()
        assert tree.spans_net()

    def test_targeted_sink_at_least_as_fast(self, construct, tech):
        """Putting all weight on one sink serves it at least as well as
        the max-delay objective does, across a seed batch."""
        better_or_equal = 0
        trials = 6
        for seed in range(trials):
            net = Net.random(9, seed=seed)
            plain = construct(net, tech)
            plain_delays = elmore_delays(plain, tech)
            target = max((s for s in range(1, 9)),
                         key=plain_delays.get)
            targeted = construct(
                net, tech,
                criticalities=single_critical_sink(net, target))
            targeted_delays = elmore_delays(targeted, tech)
            better_or_equal += (targeted_delays[target]
                                <= plain_delays[target] * (1 + 1e-9))
        assert better_or_equal >= trials - 1

    def test_uniform_weights_give_valid_tree(self, construct, net10, tech):
        weights = {s: 1.0 for s in range(1, 10)}
        tree = construct(net10, tech, criticalities=weights)
        assert tree.spans_net()

    def test_weight_validation(self, construct, net10, tech):
        with pytest.raises(ValueError, match="non-negative"):
            construct(net10, tech, criticalities={1: -1.0})
        with pytest.raises(ValueError, match="non-sink"):
            construct(net10, tech, criticalities={0: 1.0})

    def test_zero_weight_sinks_still_spanned(self, construct, net10, tech):
        """Sinks with zero criticality still must be wired (the routing
        spans the net; only the objective ignores them)."""
        weights = single_critical_sink(net10, 1)
        tree = construct(net10, tech, criticalities=weights)
        assert tree.spans_net()
