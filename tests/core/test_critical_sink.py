"""Unit tests for the CSORG (critical-sink) extension."""

import pytest

from repro.core.critical_sink import (
    csorg_ldrg,
    single_critical_sink,
    uniform_criticalities,
)
from repro.delay.models import ElmoreGraphModel
from repro.geometry.net import Net
from repro.graph.mst import prim_mst


@pytest.fixture(scope="module")
def oracle():
    from repro.delay.parameters import Technology

    return ElmoreGraphModel(Technology.cmos08())


class TestCriticalityHelpers:
    def test_uniform(self, net10):
        weights = uniform_criticalities(net10)
        assert weights == {s: 1.0 for s in range(1, 10)}

    def test_uniform_custom_alpha(self, net10):
        assert uniform_criticalities(net10, alpha=2.5)[3] == 2.5

    def test_uniform_rejects_non_positive(self, net10):
        with pytest.raises(ValueError):
            uniform_criticalities(net10, alpha=0.0)

    def test_single(self, net10):
        weights = single_critical_sink(net10, 4)
        assert weights[4] == 1.0
        assert sum(weights.values()) == 1.0

    def test_single_rejects_source_and_oob(self, net10):
        with pytest.raises(ValueError):
            single_critical_sink(net10, 0)
        with pytest.raises(ValueError):
            single_critical_sink(net10, 10)


class TestCsorgLdrg:
    def test_weighted_objective_never_worse(self, net10, tech, oracle):
        result = csorg_ldrg(net10, tech, delay_model=oracle)
        assert result.objective == "weighted-sum"
        assert result.delay <= result.base_delay * (1 + 1e-12)

    def test_single_critical_sink_improves_that_sink(self, tech, oracle):
        """Concentrating all weight on one sink optimizes it (or leaves
        it alone if no edge helps), never trades it away."""
        for seed in range(6):
            net = Net.random(10, seed=seed)
            base = oracle.delays(prim_mst(net))
            target = max(base, key=base.get)
            result = csorg_ldrg(net, tech, critical_sink=target,
                                delay_model=oracle)
            assert result.delays[target] <= base[target] * (1 + 1e-12)

    def test_targeting_beats_generic_for_the_target(self, tech, oracle):
        """On at least one net, the targeted objective serves its sink at
        least as well as the max-delay objective does."""
        from repro.core.ldrg import ldrg

        hits = 0
        for seed in range(6):
            net = Net.random(10, seed=seed)
            base = oracle.delays(prim_mst(net))
            target = max(base, key=base.get)
            targeted = csorg_ldrg(net, tech, critical_sink=target,
                                  delay_model=oracle)
            generic = ldrg(net, tech, delay_model=oracle)
            hits += (targeted.delays[target]
                     <= generic.delays[target] * (1 + 1e-9))
        assert hits >= 3

    def test_argument_validation(self, net10, tech, oracle):
        with pytest.raises(ValueError, match="not both"):
            csorg_ldrg(net10, tech, criticalities={1: 1.0}, critical_sink=2,
                       delay_model=oracle)
        with pytest.raises(ValueError, match="non-negative"):
            csorg_ldrg(net10, tech, criticalities={1: -1.0},
                       delay_model=oracle)
        with pytest.raises(ValueError, match="at least one"):
            csorg_ldrg(net10, tech, criticalities={1: 0.0},
                       delay_model=oracle)
        with pytest.raises(ValueError, match="non-sink"):
            csorg_ldrg(net10, tech, criticalities={0: 1.0},
                       delay_model=oracle)

    def test_uniform_weights_minimize_average_delay(self, net10, tech, oracle):
        """Paper case (i): all alpha equal == average-delay objective."""
        result = csorg_ldrg(net10, tech, delay_model=oracle)
        base_sum = result.base_delay
        final_sum = result.delay
        # The objective is the sum; dividing by k gives the average.
        assert final_sum <= base_sum

    def test_max_added_edges(self, net10, tech, oracle):
        result = csorg_ldrg(net10, tech, delay_model=oracle,
                            max_added_edges=1)
        assert result.num_added_edges <= 1
