"""Unit tests for the HORG (hybrid) pipeline."""

import pytest

from repro.core.hybrid import horg
from repro.delay.models import ElmoreGraphModel
from repro.geometry.net import Net


@pytest.fixture(scope="module")
def oracle():
    from repro.delay.parameters import Technology

    return ElmoreGraphModel(Technology.cmos08())


class TestPipeline:
    def test_stage_objectives_monotone(self, net10, tech, oracle):
        result = horg(net10, tech, delay_model=oracle)
        base, after_edges, after_sizing = result.stage_objectives
        assert after_edges <= base * (1 + 1e-12)
        assert after_sizing <= after_edges * (1 + 1e-12)
        assert result.delay == pytest.approx(after_sizing)

    def test_weighted_objective(self, net10, tech, oracle):
        result = horg(net10, tech, delay_model=oracle)
        assert result.objective == "weighted-sum"

    def test_steiner_base_by_default(self, net10, tech, oracle):
        result = horg(net10, tech, delay_model=oracle)
        from repro.graph.steiner import iterated_one_steiner

        steiner = iterated_one_steiner(net10)
        # Baseline cost equals the Steiner tree's cost.
        assert result.base_cost == pytest.approx(steiner.cost())

    def test_mst_base_on_request(self, net10, tech, oracle):
        from repro.graph.mst import prim_mst

        result = horg(net10, tech, use_steiner=False, delay_model=oracle)
        assert result.base_cost == pytest.approx(prim_mst(net10).cost())

    def test_criticalities_respected(self, net10, tech, oracle):
        weights = {1: 10.0, 2: 0.0}
        result = horg(net10, tech, criticalities=weights, delay_model=oracle)
        # Objective is the weighted sum of per-sink delays over weights.
        expected = 10.0 * result.delays[1]
        assert result.delay == pytest.approx(expected, rel=1e-6)

    def test_budgets(self, net10, tech, oracle):
        result = horg(net10, tech, delay_model=oracle,
                      max_added_edges=1, max_width_changes=1)
        assert result.num_added_edges <= 2  # one edge + one sizing record

    def test_widths_cover_all_edges(self, net10, tech, oracle):
        result = horg(net10, tech, delay_model=oracle)
        assert set(result.widths) == set(result.graph.edges())

    def test_validation(self, net10, tech, oracle):
        with pytest.raises(ValueError, match="non-negative"):
            horg(net10, tech, criticalities={1: -1.0}, delay_model=oracle)
        with pytest.raises(ValueError, match="width_levels"):
            horg(net10, tech, width_levels=(), delay_model=oracle)

    def test_beats_plain_steiner_tree_sometimes(self, tech, oracle):
        improved = sum(
            horg(Net.random(10, seed=s), tech, delay_model=oracle).delay
            < horg(Net.random(10, seed=s), tech, delay_model=oracle,
                   max_added_edges=0, max_width_changes=0).delay
            for s in range(4))
        assert improved >= 2
