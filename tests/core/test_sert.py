"""Unit tests for the Steiner Elmore Routing Tree (SERT)."""

import pytest

from repro.core.ert import elmore_routing_tree
from repro.core.sert import (
    closest_point_on_lpath,
    sert,
    steiner_elmore_routing_tree,
)
from repro.delay.elmore_tree import elmore_tree_delay
from repro.geometry.net import Net
from repro.geometry.point import Point


class TestClosestPointOnLPath:
    def test_point_beyond_horizontal_run(self):
        a, b = Point(0, 0), Point(10, 10)
        # L-path: (0,0) -> (10,0) -> (10,10). Query near (4,-3).
        tap = closest_point_on_lpath(a, b, Point(4, -3))
        assert tap == Point(4, 0)

    def test_point_near_vertical_run(self):
        a, b = Point(0, 0), Point(10, 10)
        tap = closest_point_on_lpath(a, b, Point(14, 7))
        assert tap == Point(10, 7)

    def test_endpoint_when_query_past_corner(self):
        a, b = Point(0, 0), Point(10, 10)
        tap = closest_point_on_lpath(a, b, Point(-5, -5))
        assert tap == Point(0, 0)

    def test_tap_is_on_path(self):
        a, b = Point(2, 3), Point(9, 8)
        s = Point(6, 6)
        tap = closest_point_on_lpath(a, b, s)
        # On-path points satisfy d(a,tap) + d(tap,b) == d(a,b).
        assert a.manhattan(tap) + tap.manhattan(b) == pytest.approx(
            a.manhattan(b))

    def test_degenerate_straight_edge(self):
        a, b = Point(0, 0), Point(10, 0)
        tap = closest_point_on_lpath(a, b, Point(5, 3))
        assert tap == Point(5, 0)


class TestConstruction:
    def test_spanning_tree_with_steiner_points(self, net10, tech):
        tree = steiner_elmore_routing_tree(net10, tech)
        assert tree.is_tree()
        assert tree.spans_net()

    def test_wirelength_conserved_by_splits(self, net10, tech):
        """Splitting an edge at an on-path tap adds no wire by itself, so
        SERT's cost is at most ERT's cost plus its tap stubs — concretely,
        SERT is never more expensive than ERT on these nets."""
        sert_tree = steiner_elmore_routing_tree(net10, tech)
        ert_tree = elmore_routing_tree(net10, tech)
        assert sert_tree.cost() <= ert_tree.cost() + 1e-6

    def test_at_least_as_fast_as_ert_on_average(self, tech):
        """SERT searches a superset of ERT's attachments per step; over a
        batch its Elmore delay should not lose to ERT."""
        sert_total = ert_total = 0.0
        for seed in range(6):
            net = Net.random(9, seed=seed)
            sert_total += elmore_tree_delay(
                steiner_elmore_routing_tree(net, tech), tech)
            ert_total += elmore_tree_delay(
                elmore_routing_tree(net, tech), tech)
        assert sert_total <= ert_total * 1.02

    def test_two_pin_net(self, tech):
        net = Net.from_points([(0, 0), (500, 700)])
        tree = steiner_elmore_routing_tree(net, tech)
        assert tree.edges() == [(0, 1)]
        assert len(tree.steiner) == 0

    def test_deterministic(self, net10, tech):
        a = steiner_elmore_routing_tree(net10, tech)
        b = steiner_elmore_routing_tree(net10, tech)
        assert sorted(a.edges()) == sorted(b.edges())
        assert a.cost() == pytest.approx(b.cost())


class TestSertDriver:
    def test_normalizes_to_mst(self, net10, tech):
        from repro.graph.mst import prim_mst

        result = sert(net10, tech, evaluation_model="elmore")
        assert result.base_cost == pytest.approx(prim_mst(net10).cost())
        assert result.algorithm == "sert"

    def test_beats_mst_delay_usually(self, tech):
        wins = sum(
            sert(Net.random(10, seed=s), tech,
                 evaluation_model="elmore").improved
            for s in range(6))
        assert wins >= 4
