"""Unit tests for heuristics H1, H2, H3."""

import pytest

from repro.core.heuristics import h1, h2, h3
from repro.delay.models import SpiceDelayModel
from repro.delay.parameters import Technology
from repro.delay.spice_delay import SpiceOptions
from repro.geometry.net import Net
from repro.graph.mst import prim_mst


@pytest.fixture(scope="module")
def fast_model():
    return SpiceDelayModel(Technology.cmos08(), SpiceOptions(segments=1))


class TestH1:
    def test_never_worse_than_mst(self, tech, fast_model):
        for seed in range(5):
            result = h1(Net.random(8, seed=seed), tech,
                        delay_model=fast_model)
            assert result.delay <= result.base_delay * (1 + 1e-12)

    def test_added_edges_emanate_from_source(self, tech, fast_model):
        for seed in range(5):
            result = h1(Net.random(10, seed=seed), tech,
                        delay_model=fast_model)
            for record in result.history:
                assert 0 in record.edge

    def test_iteration_cap(self, net10, tech, fast_model):
        result = h1(net10, tech, max_iterations=1, delay_model=fast_model)
        assert result.num_added_edges <= 1

    def test_zero_iterations_is_mst(self, net10, tech, fast_model):
        result = h1(net10, tech, max_iterations=0, delay_model=fast_model)
        assert result.num_added_edges == 0
        assert sorted(result.graph.edges()) == sorted(prim_mst(net10).edges())

    def test_keeps_only_improving_edges(self, tech, fast_model):
        """H1 verifies each candidate with its SPICE call; a kept edge
        strictly improves the previous delay (Table 4's all-cases <= 1)."""
        for seed in range(6):
            result = h1(Net.random(10, seed=seed), tech,
                        delay_model=fast_model)
            delays = [result.base_delay] + [r.delay for r in result.history]
            for earlier, later in zip(delays, delays[1:]):
                assert later < earlier


class TestH2:
    def test_adds_exactly_one_edge_unconditionally(self, net10, tech, fast_model):
        result = h2(net10, tech, evaluation_model=fast_model)
        assert result.num_added_edges == 1
        assert result.cost > result.base_cost

    def test_edge_targets_longest_elmore_sink(self, net10, tech, fast_model):
        from repro.delay.elmore_tree import elmore_delays

        mst = prim_mst(net10)
        elmore = elmore_delays(mst, tech)
        eligible = {s: elmore[s] for s in range(1, 10)
                    if not mst.has_edge(0, s)}
        expected = max(eligible, key=eligible.get)
        result = h2(net10, tech, evaluation_model=fast_model)
        assert result.history[0].edge == (0, expected)

    def test_may_regress_delay(self, tech, fast_model):
        """H2 has no verification step, so some nets get worse (the paper
        reports all-cases delay 1.14 at 5 pins)."""
        ratios = [h2(Net.random(5, seed=s), tech,
                     evaluation_model=fast_model).delay_ratio
                  for s in range(12)]
        assert any(r > 1.0 for r in ratios)

    def test_no_candidate_when_star(self, tech, fast_model):
        # A net whose MST is already a star from the source: every sink
        # is adjacent, H2 has nothing to add.
        net = Net.from_points([(5000, 5000), (5200, 5000), (5000, 5300),
                               (4800, 5000)], name="star")
        mst = prim_mst(net)
        if any(not mst.has_edge(0, s) for s in range(1, 4)):
            pytest.skip("geometry did not produce a star MST")
        result = h2(net, tech, evaluation_model=fast_model)
        assert result.num_added_edges == 0
        assert result.delay_ratio == pytest.approx(1.0)


class TestH3:
    def test_adds_at_most_one_edge(self, net10, tech, fast_model):
        result = h3(net10, tech, evaluation_model=fast_model)
        assert result.num_added_edges <= 1

    def test_score_formula(self, net10, tech, fast_model):
        """H3 maximizes pathlength x Elmore / new-edge-length."""
        from repro.delay.elmore_tree import elmore_delays
        from repro.graph.paths import dijkstra_lengths

        mst = prim_mst(net10)
        elmore = elmore_delays(mst, tech)
        path = dijkstra_lengths(mst)
        scores = {
            s: path[s] * elmore[s] / mst.distance(0, s)
            for s in range(1, 10)
            if not mst.has_edge(0, s) and mst.distance(0, s) > 0
        }
        expected = max(scores, key=scores.get)
        result = h3(net10, tech, evaluation_model=fast_model)
        assert result.history[0].edge == (0, expected)

    def test_h3_spends_less_wire_than_h2_on_average(self, tech, fast_model):
        """The length normalization makes H3 cheaper than H2 (Table 5)."""
        h2_cost = h3_cost = 0.0
        for seed in range(8):
            net = Net.random(10, seed=seed)
            h2_cost += h2(net, tech, evaluation_model=fast_model).cost_ratio
            h3_cost += h3(net, tech, evaluation_model=fast_model).cost_ratio
        assert h3_cost <= h2_cost + 1e-9


class TestEvaluationModels:
    def test_h2_h3_report_requested_model(self, net10, tech):
        assert h2(net10, tech, evaluation_model="elmore").model == "elmore"
        assert h3(net10, tech, evaluation_model="elmore").model == "elmore"

    def test_h1_respects_model_argument(self, net10, tech):
        result = h1(net10, tech, delay_model="elmore")
        assert result.model == "elmore"
