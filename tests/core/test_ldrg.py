"""Unit and invariant tests for the LDRG algorithm."""

import pytest

from repro.core.ldrg import ldrg
from repro.delay.models import ElmoreGraphModel, SpiceDelayModel
from repro.delay.spice_delay import SpiceOptions
from repro.geometry.net import Net
from repro.graph.mst import prim_mst


@pytest.fixture(scope="module")
def fast_model():
    from repro.delay.parameters import Technology

    return SpiceDelayModel(Technology.cmos08(), SpiceOptions(segments=1))


class TestGreedyInvariants:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_never_worse_than_mst(self, seed, tech, fast_model):
        net = Net.random(8, seed=seed)
        result = ldrg(net, tech, delay_model=fast_model)
        assert result.delay <= result.base_delay * (1 + 1e-12)
        assert result.cost >= result.base_cost - 1e-9

    def test_contains_all_mst_edges(self, net10, tech, fast_model):
        mst_edges = set(prim_mst(net10).edges())
        result = ldrg(net10, tech, delay_model=fast_model)
        assert mst_edges <= set(result.graph.edges())

    def test_history_delays_strictly_decrease(self, net10, tech, fast_model):
        result = ldrg(net10, tech, delay_model=fast_model)
        delays = [result.base_delay] + [r.delay for r in result.history]
        for earlier, later in zip(delays, delays[1:]):
            assert later < earlier

    def test_history_costs_strictly_increase(self, net10, tech, fast_model):
        result = ldrg(net10, tech, delay_model=fast_model)
        costs = [result.base_cost] + [r.cost for r in result.history]
        for earlier, later in zip(costs, costs[1:]):
            assert later > earlier

    def test_graph_spans_net(self, net10, tech, fast_model):
        result = ldrg(net10, tech, delay_model=fast_model)
        assert result.graph.spans_net()

    def test_terminates_when_no_edge_helps(self, tech, fast_model):
        # Two pins: the only possible edge already exists; LDRG must
        # return the MST unchanged.
        net = Net.from_points([(0, 0), (3000, 0)])
        result = ldrg(net, tech, delay_model=fast_model)
        assert result.num_added_edges == 0
        assert result.delay_ratio == pytest.approx(1.0)

    def test_deterministic(self, net10, tech, fast_model):
        a = ldrg(net10, tech, delay_model=fast_model)
        b = ldrg(net10, tech, delay_model=fast_model)
        assert [r.edge for r in a.history] == [r.edge for r in b.history]
        assert a.delay == pytest.approx(b.delay)


class TestEdgeBudget:
    def test_max_added_edges_respected(self, net10, tech, fast_model):
        capped = ldrg(net10, tech, delay_model=fast_model, max_added_edges=1)
        assert capped.num_added_edges <= 1

    def test_budget_prefix_matches_full_run(self, net10, tech, fast_model):
        full = ldrg(net10, tech, delay_model=fast_model)
        capped = ldrg(net10, tech, delay_model=fast_model, max_added_edges=1)
        if full.num_added_edges >= 1:
            assert capped.history[0].edge == full.history[0].edge

    def test_zero_budget_returns_baseline(self, net10, tech, fast_model):
        result = ldrg(net10, tech, delay_model=fast_model, max_added_edges=0)
        assert result.num_added_edges == 0
        assert result.graph.is_tree()


class TestOracles:
    def test_elmore_oracle_runs_without_simulation(self, net10, tech):
        result = ldrg(net10, tech, delay_model="elmore")
        assert result.model == "elmore"
        assert result.delay <= result.base_delay * (1 + 1e-12)

    def test_split_search_and_evaluation(self, net10, tech, fast_model):
        result = ldrg(net10, tech, delay_model="elmore",
                      evaluation_model=fast_model)
        # Reported numbers come from the evaluation oracle.
        assert result.model == "spice"
        measured = fast_model.max_delay(result.graph)
        assert result.delay == pytest.approx(measured)

    def test_explicit_initial_graph(self, net10, tech, fast_model):
        from repro.graph.steiner import iterated_one_steiner

        start = iterated_one_steiner(net10)
        result = ldrg(net10, tech, delay_model=fast_model, initial=start)
        assert result.base_cost == pytest.approx(start.cost())

    def test_non_spanning_initial_rejected(self, net10, tech, fast_model):
        from repro.graph.routing_graph import RoutingGraph, RoutingGraphError

        with pytest.raises(RoutingGraphError):
            ldrg(net10, tech, delay_model=fast_model,
                 initial=RoutingGraph(net10))

    def test_initial_graph_not_mutated(self, net10, tech, fast_model):
        start = prim_mst(net10)
        edges_before = sorted(start.edges())
        ldrg(net10, tech, delay_model=fast_model, initial=start)
        assert sorted(start.edges()) == edges_before


class TestPaperBehavior:
    def test_improves_most_10pin_nets(self, tech, fast_model):
        """Table 2: 90% of 10-pin nets improve; demand a majority here."""
        wins = sum(
            ldrg(Net.random(10, seed=s), tech, delay_model=fast_model).improved
            for s in range(8))
        assert wins >= 5

    def test_first_edge_gives_biggest_gain(self, tech, fast_model):
        """Diminishing returns: iteration 1 buys at least as much delay
        as iteration 2 on nets where both happen."""
        for seed in range(12):
            result = ldrg(Net.random(10, seed=seed), tech,
                          delay_model=fast_model)
            if result.num_added_edges >= 2:
                gain1 = result.base_delay - result.history[0].delay
                gain2 = result.history[0].delay - result.history[1].delay
                assert gain1 >= gain2 * 0.999
                return
        pytest.skip("no two-iteration net in the scanned seeds")


class TestCandidateEvaluators:
    def test_incremental_matches_naive_choices(self, net10, tech):
        incremental = ldrg(net10, tech, delay_model="elmore",
                           candidate_evaluator="incremental")
        naive = ldrg(net10, tech, delay_model="elmore",
                     candidate_evaluator="naive")
        assert ([r.edge for r in incremental.history]
                == [r.edge for r in naive.history])
        assert incremental.delay == pytest.approx(naive.delay, rel=1e-9)

    def test_evaluator_instance_accepted(self, net10, tech):
        from repro.delay.incremental import IncrementalElmoreEvaluator

        result = ldrg(net10, tech, delay_model="elmore",
                      candidate_evaluator=IncrementalElmoreEvaluator(tech))
        reference = ldrg(net10, tech, delay_model="elmore")
        assert ([r.edge for r in result.history]
                == [r.edge for r in reference.history])

    def test_incremental_rejected_for_spice(self, net10, tech, fast_model):
        with pytest.raises(ValueError, match="graph-Elmore"):
            ldrg(net10, tech, delay_model=fast_model,
                 candidate_evaluator="incremental")


class TestOracleCallDiscipline:
    def test_evaluation_oracle_called_once_per_point(self, net10, tech):
        """One evaluation per evaluation point: the base topology plus
        each accepted edge — never a redundant objective re-ask."""

        class CountingModel(ElmoreGraphModel):
            cacheable = False  # keep the memo out of the count

            def __init__(self, tech):
                super().__init__(tech)
                self.calls = 0

            def delays(self, graph, widths=None):
                self.calls += 1
                return super().delays(graph, widths)

        counting = CountingModel(tech)
        result = ldrg(net10, tech, delay_model="elmore",
                      evaluation_model=counting)
        assert counting.calls == 1 + result.num_added_edges


class TestAmbiguousStartingGraph:
    def test_graph_plus_initial_rejected(self, net10, tech, fast_model):
        start = prim_mst(net10)
        with pytest.raises(ValueError, match="ambiguous"):
            ldrg(start, tech, delay_model=fast_model, initial=prim_mst(net10))

    def test_graph_alone_still_works(self, net10, tech, fast_model):
        start = prim_mst(net10)
        result = ldrg(start, tech, delay_model=fast_model)
        assert result.base_cost == pytest.approx(start.cost())
