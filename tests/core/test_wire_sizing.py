"""Unit tests for the WSORG (wire sizing) extension."""

import pytest

from repro.core.wire_sizing import DEFAULT_WIDTHS, wsorg
from repro.delay.models import ElmoreGraphModel
from repro.geometry.net import Net
from repro.graph.mst import prim_mst


@pytest.fixture(scope="module")
def oracle():
    from repro.delay.parameters import Technology

    return ElmoreGraphModel(Technology.cmos08())


@pytest.fixture(scope="module")
def strong_driver_oracle():
    """Wire-resistance-dominated regime where sizing clearly pays."""
    from repro.delay.parameters import Technology

    return ElmoreGraphModel(Technology(driver_resistance=5.0))


class TestInvariants:
    def test_delay_never_worse(self, net10, tech, oracle):
        result = wsorg(net10, tech, delay_model=oracle)
        assert result.delay <= result.base_delay * (1 + 1e-12)

    def test_topology_unchanged(self, net10, tech, oracle):
        mst = prim_mst(net10)
        result = wsorg(net10, tech, delay_model=oracle)
        assert sorted(result.graph.edges()) == sorted(mst.edges())
        assert result.cost == pytest.approx(mst.cost())

    def test_widths_stay_on_levels(self, net10, tech, oracle):
        levels = (1.0, 2.0, 4.0)
        result = wsorg(net10, tech, width_levels=levels, delay_model=oracle)
        assert set(result.widths.values()) <= set(levels)
        assert set(result.widths) == set(result.graph.edges())

    def test_sizing_helps_with_strong_driver(self, strong_driver_oracle, net10):
        result = wsorg(net10, strong_driver_oracle.tech,
                       delay_model=strong_driver_oracle)
        assert result.improved
        assert len(result.widened_edges) >= 1

    def test_wire_area_accounts_for_widths(self, net10, strong_driver_oracle):
        tech = strong_driver_oracle.tech
        result = wsorg(net10, tech, delay_model=strong_driver_oracle)
        base_area = result.graph.cost()
        assert result.total_wire_area() >= base_area
        if result.widened_edges:
            assert result.total_wire_area() > base_area

    def test_single_level_means_no_changes(self, net10, tech, oracle):
        result = wsorg(net10, tech, width_levels=(1.0,), delay_model=oracle)
        assert result.num_added_edges == 0
        assert result.delay_ratio == pytest.approx(1.0)

    def test_max_changes_cap(self, net10, strong_driver_oracle):
        result = wsorg(net10, strong_driver_oracle.tech,
                       delay_model=strong_driver_oracle, max_changes=2)
        assert result.num_added_edges <= 2


class TestInputs:
    def test_accepts_prebuilt_graph(self, net10, tech, oracle):
        graph = prim_mst(net10)
        extra = graph.candidate_edges()[0]
        graph.add_edge(*extra)
        result = wsorg(graph, tech, delay_model=oracle)
        assert extra in result.widths or (extra[1], extra[0]) in result.widths

    @pytest.mark.parametrize("levels", [(), (2.0, 1.0), (0.0, 1.0), (1.0, 1.0)])
    def test_rejects_bad_levels(self, net10, tech, oracle, levels):
        with pytest.raises(ValueError):
            wsorg(net10, tech, width_levels=levels, delay_model=oracle)

    def test_default_levels(self):
        assert DEFAULT_WIDTHS == (1.0, 2.0, 3.0, 4.0)


class TestGreedyShape:
    def test_history_delays_decrease(self, net10, strong_driver_oracle):
        result = wsorg(net10, strong_driver_oracle.tech,
                       delay_model=strong_driver_oracle)
        delays = [result.base_delay] + [r.delay for r in result.history]
        for earlier, later in zip(delays, delays[1:]):
            assert later < earlier

    def test_stem_edges_get_widened_first(self, strong_driver_oracle):
        """With a strong driver, the resistance bottleneck is near the
        source, so the first widened edge touches the source's subtree
        stem (a classic wire-sizing result)."""
        net = Net.from_points([(0, 0), (5000, 0), (10000, 0), (10000, 5000)])
        result = wsorg(net, strong_driver_oracle.tech,
                       delay_model=strong_driver_oracle, max_changes=1)
        assert result.history, "expected at least one widening"
        assert result.history[0].edge == (0, 1)
