"""Unit tests for the Elmore Routing Tree and the ERT-based LDRG."""

import pytest

from repro.core.ert import elmore_routing_tree, ert, ert_ldrg
from repro.delay.elmore_tree import elmore_tree_delay
from repro.delay.models import SpiceDelayModel
from repro.delay.parameters import Technology
from repro.delay.spice_delay import SpiceOptions
from repro.geometry.net import Net
from repro.graph.mst import prim_mst


@pytest.fixture(scope="module")
def fast_model():
    return SpiceDelayModel(Technology.cmos08(), SpiceOptions(segments=1))


class TestConstruction:
    def test_produces_spanning_tree(self, net10, tech):
        tree = elmore_routing_tree(net10, tech)
        assert tree.is_tree()
        assert tree.spans_net()
        assert tree.num_edges == 9

    def test_deterministic(self, net10, tech):
        a = elmore_routing_tree(net10, tech)
        b = elmore_routing_tree(net10, tech)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_two_pin_net_is_single_edge(self, tech):
        net = Net.from_points([(0, 0), (1000, 1000)])
        tree = elmore_routing_tree(net, tech)
        assert tree.edges() == [(0, 1)]

    def test_star_when_driver_dominates(self, tech):
        """With a huge driver resistance, delay ~ rd * C_total at every
        sink, so the ERT minimizes capacitance — it converges toward the
        MST topology cost-wise."""
        sluggish = tech.with_driver(1e6)
        net = Net.random(8, seed=2)
        tree = elmore_routing_tree(net, sluggish)
        mst = prim_mst(net)
        assert tree.cost() == pytest.approx(mst.cost(), rel=0.05)


class TestQuality:
    def test_beats_mst_on_elmore_delay_usually(self, tech):
        """Table 6: ERT delay is well below MST delay on most nets."""
        wins = 0
        for seed in range(8):
            net = Net.random(10, seed=seed)
            ert_delay = elmore_tree_delay(elmore_routing_tree(net, tech), tech)
            mst_delay = elmore_tree_delay(prim_mst(net), tech)
            wins += ert_delay < mst_delay
        assert wins >= 6

    def test_costs_more_wire_than_mst(self, tech):
        """The MST is the cost optimum, so ERT cost ratios are >= 1."""
        for seed in range(4):
            net = Net.random(10, seed=seed)
            assert (elmore_routing_tree(net, tech).cost()
                    >= prim_mst(net).cost() - 1e-9)


class TestErtDriver:
    def test_normalizes_to_mst(self, net10, tech, fast_model):
        result = ert(net10, tech, evaluation_model=fast_model)
        mst = prim_mst(net10)
        assert result.base_cost == pytest.approx(mst.cost())
        assert result.algorithm == "ert"
        assert result.graph.is_tree()


class TestErtLdrg:
    def test_normalizes_to_ert(self, net10, tech, fast_model):
        result = ert_ldrg(net10, tech, delay_model=fast_model)
        tree = elmore_routing_tree(net10, tech)
        assert result.base_cost == pytest.approx(tree.cost())

    def test_never_worse_than_ert(self, tech, fast_model):
        for seed in (0, 5):
            net = Net.random(8, seed=seed)
            result = ert_ldrg(net, tech, delay_model=fast_model)
            assert result.delay <= result.base_delay * (1 + 1e-12)

    def test_paper_claim_some_net_beats_the_tree(self, tech, fast_model):
        """Table 7's existence claim: for some net the ERT (a near-optimal
        *tree*) is strictly beaten by a non-tree routing."""
        assert any(
            ert_ldrg(Net.random(10, seed=s), tech,
                     delay_model=fast_model).improved
            for s in range(10))

    def test_max_added_edges(self, net10, tech, fast_model):
        result = ert_ldrg(net10, tech, delay_model=fast_model,
                          max_added_edges=1)
        assert result.num_added_edges <= 1
