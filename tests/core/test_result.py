"""Unit tests for RoutingResult bookkeeping."""

import pytest

from repro.core.result import IterationRecord, RoutingResult
from repro.graph.mst import prim_mst


@pytest.fixture
def result(net10, mst10) -> RoutingResult:
    return RoutingResult(
        graph=mst10,
        delay=0.8e-9,
        cost=1100.0,
        delays={1: 0.8e-9, 2: 0.5e-9},
        base_delay=1.0e-9,
        base_cost=1000.0,
        algorithm="test",
        model="spice",
        history=[IterationRecord(edge=(0, 3), delay=0.9e-9, cost=1050.0),
                 IterationRecord(edge=(1, 4), delay=0.8e-9, cost=1100.0)],
    )


class TestRatios:
    def test_delay_ratio(self, result):
        assert result.delay_ratio == pytest.approx(0.8)

    def test_cost_ratio(self, result):
        assert result.cost_ratio == pytest.approx(1.1)

    def test_improved_true(self, result):
        assert result.improved

    def test_improved_false_when_equal(self, result):
        result.delay = result.base_delay
        assert not result.improved

    def test_improved_false_when_worse(self, result):
        result.delay = 1.2e-9
        assert not result.improved


class TestIterations:
    def test_at_iteration_zero_is_baseline(self, result):
        assert result.at_iteration(0) == (1.0e-9, 1000.0)

    def test_at_iteration_k(self, result):
        assert result.at_iteration(1) == (0.9e-9, 1050.0)
        assert result.at_iteration(2) == (0.8e-9, 1100.0)

    def test_past_end_raises(self, result):
        with pytest.raises(IndexError, match="iteration 3"):
            result.at_iteration(3)

    def test_num_added_edges(self, result):
        assert result.num_added_edges == 2


class TestSummary:
    def test_mentions_key_numbers(self, result):
        text = result.summary()
        assert "0.800 ns" in text
        assert "2 edge(s) added" in text
        assert "improved" in text

    def test_no_improvement_phrase(self, result):
        result.delay = 1.5e-9
        assert "no improvement" in result.summary()
