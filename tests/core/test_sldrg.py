"""Unit tests for the SLDRG (Steiner) algorithm."""

import pytest

from repro.core.sldrg import sldrg
from repro.delay.models import SpiceDelayModel
from repro.delay.parameters import Technology
from repro.delay.spice_delay import SpiceOptions
from repro.geometry.net import Net
from repro.graph.steiner import iterated_one_steiner


@pytest.fixture(scope="module")
def fast_model():
    return SpiceDelayModel(Technology.cmos08(), SpiceOptions(segments=1))


class TestBaseline:
    def test_normalizes_to_steiner_tree(self, net10, tech, fast_model):
        steiner = iterated_one_steiner(net10)
        result = sldrg(net10, tech, delay_model=fast_model)
        assert result.base_cost == pytest.approx(steiner.cost())
        assert result.base_delay == pytest.approx(
            fast_model.max_delay(steiner), rel=1e-9)

    def test_keeps_steiner_points(self, net10, tech, fast_model):
        steiner = iterated_one_steiner(net10)
        result = sldrg(net10, tech, delay_model=fast_model)
        assert result.graph.steiner == steiner.steiner

    def test_never_worse_than_steiner_tree(self, tech, fast_model):
        for seed in (3, 4):
            net = Net.random(8, seed=seed)
            result = sldrg(net, tech, delay_model=fast_model)
            assert result.delay <= result.base_delay * (1 + 1e-12)


class TestCandidateSpace:
    def test_added_edges_may_touch_steiner_points(self, tech, fast_model):
        """The paper's SLDRG candidates are over N-hat (pins + Steiner
        points). Verify some scanned net actually uses a Steiner endpoint,
        proving the search space is the extended one."""
        for seed in range(15):
            net = Net.random(10, seed=700 + seed)
            result = sldrg(net, tech, delay_model=fast_model)
            for record in result.history:
                if any(node in result.graph.steiner for node in record.edge):
                    return
        pytest.skip("no Steiner-endpoint edge in scanned seeds (unusual)")

    def test_explicit_initial_tree(self, net10, tech, fast_model):
        start = iterated_one_steiner(net10)
        result = sldrg(net10, tech, delay_model=fast_model, initial=start)
        assert result.algorithm == "sldrg"

    def test_max_added_edges(self, net10, tech, fast_model):
        result = sldrg(net10, tech, delay_model=fast_model, max_added_edges=1)
        assert result.num_added_edges <= 1


class TestPaperBehavior:
    def test_figure5_style_improvement_exists(self, tech, fast_model):
        """Some 10-pin net shows a clear SLDRG improvement (Figure 5)."""
        best = min(
            sldrg(Net.random(10, seed=500 + s), tech,
                  delay_model=fast_model).delay_ratio
            for s in range(10))
        assert best < 0.9
