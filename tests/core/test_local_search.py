"""Unit tests for the local-search ORG solver."""

import pytest

from repro.core.exhaustive import optimal_routing_graph
from repro.core.ldrg import ldrg
from repro.core.local_search import local_search_org
from repro.delay.models import ElmoreGraphModel
from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError


@pytest.fixture(scope="module")
def oracle():
    from repro.delay.parameters import Technology

    return ElmoreGraphModel(Technology.cmos08())


class TestInvariants:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_never_worse_than_start_and_spans(self, seed, tech, oracle):
        net = Net.random(8, seed=seed)
        result = local_search_org(net, tech, delay_model=oracle)
        assert result.delay <= result.base_delay * (1 + 1e-12)
        assert result.graph.spans_net()

    def test_at_least_as_good_as_ldrg(self, tech, oracle):
        """Local search's move set strictly contains LDRG's, and both are
        greedy over it, so the richer search never loses — checked
        empirically across a seed batch."""
        for seed in range(6):
            net = Net.random(8, seed=seed)
            rich = local_search_org(net, tech, delay_model=oracle)
            addonly = ldrg(net, tech, delay_model=oracle)
            assert rich.delay <= addonly.delay * (1 + 1e-9)

    def test_reaches_exhaustive_optimum_on_tiny_nets(self, tech, oracle):
        hits = 0
        for seed in range(6):
            net = Net.random(5, seed=seed)
            optimum = optimal_routing_graph(net, tech, oracle)
            found = local_search_org(net, tech, delay_model=oracle)
            hits += found.delay <= optimum.delay * (1 + 1e-9)
        assert hits >= 5  # hill climbing, not a proof — but near-universal

    def test_local_optimum_under_all_moves(self, tech, oracle):
        net = Net.random(6, seed=2)
        result = local_search_org(net, tech, delay_model=oracle)
        final = oracle.max_delay(result.graph)
        # no single addition helps
        for edge in result.graph.candidate_edges():
            assert oracle.max_delay(result.graph.with_edge(*edge)) >= \
                final * (1 - 1e-9)
        # no single removal helps
        for edge in list(result.graph.edges()):
            trial = result.graph.copy()
            trial.remove_edge(*edge)
            if trial.spans_net():
                assert oracle.max_delay(trial) >= final * (1 - 1e-9)


class TestMoveConfiguration:
    def test_add_only_matches_ldrg(self, net10, tech, oracle):
        """With removals and swaps disabled the search degenerates to
        LDRG's greedy and lands on the same delay."""
        restricted = local_search_org(net10, tech, delay_model=oracle,
                                      allow_removals=False,
                                      allow_swaps=False)
        greedy = ldrg(net10, tech, delay_model=oracle)
        assert restricted.delay == pytest.approx(greedy.delay, rel=1e-9)

    def test_swaps_can_leave_the_mst_skeleton(self, tech, oracle):
        """Some net's local optimum does NOT contain all MST edges —
        the capability add-only greedy lacks by construction."""
        for seed in range(8):
            net = Net.random(6, seed=seed)
            result = local_search_org(net, tech, delay_model=oracle)
            mst_edges = set(prim_mst(net).edges())
            if not mst_edges <= set(result.graph.edges()):
                return
        pytest.skip("no MST-departing optimum in scanned seeds (unusual)")

    def test_explicit_initial_graph(self, net10, tech, oracle):
        start = prim_mst(net10)
        result = local_search_org(net10, tech, delay_model=oracle,
                                  initial=start)
        assert result.base_cost == pytest.approx(start.cost())
        # the initial graph object is untouched
        assert sorted(start.edges()) == sorted(prim_mst(net10).edges())

    def test_non_spanning_initial_rejected(self, net10, tech, oracle):
        with pytest.raises(RoutingGraphError):
            local_search_org(net10, tech, delay_model=oracle,
                             initial=RoutingGraph(net10))

    def test_pure_removal_recorded_with_sentinel(self, tech, oracle):
        """Start from an MST plus a gratuitous edge: the search should
        remove it (or improve past it), and pure removals appear in the
        history as the (-1, -1) sentinel."""
        net = Net.random(6, seed=4)
        start = prim_mst(net)
        # Add the WORST candidate edge to create removable junk.
        candidates = start.candidate_edges()
        worst_edge = max(
            candidates,
            key=lambda e: oracle.max_delay(start.with_edge(*e)))
        start.add_edge(*worst_edge)
        result = local_search_org(net, tech, delay_model=oracle,
                                  initial=start)
        assert result.delay <= result.base_delay * (1 + 1e-12)
        if any(rec.edge == (-1, -1) for rec in result.history):
            assert result.cost < result.base_cost
