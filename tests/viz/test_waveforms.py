"""Unit tests for waveform SVG rendering."""

import numpy as np
import pytest

from repro.viz.waveforms import render_waveforms_svg, save_waveforms_svg


@pytest.fixture
def simple_waves():
    times = np.linspace(0, 1e-9, 50)
    return times, {"a": 1 - np.exp(-times / 2e-10),
                   "b": 1 - np.exp(-times / 4e-10)}


class TestRender:
    def test_well_formed(self, simple_waves):
        times, waves = simple_waves
        svg = render_waveforms_svg(times, waves)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")

    def test_one_polyline_per_waveform(self, simple_waves):
        times, waves = simple_waves
        svg = render_waveforms_svg(times, waves)
        assert svg.count("<polyline") == 2

    def test_labels_rendered(self, simple_waves):
        times, waves = simple_waves
        svg = render_waveforms_svg(times, waves, title="t < test")
        assert ">a</text>" in svg and ">b</text>" in svg
        assert "t &lt; test" in svg

    def test_threshold_marker(self, simple_waves):
        times, waves = simple_waves
        svg = render_waveforms_svg(times, waves, threshold=0.5)
        assert "0.5V" in svg
        assert "stroke-dasharray" in svg

    def test_time_axis_labels_in_ns(self, simple_waves):
        times, waves = simple_waves
        svg = render_waveforms_svg(times, waves)
        assert "ns</text>" in svg

    def test_validation(self, simple_waves):
        times, waves = simple_waves
        with pytest.raises(ValueError, match="two timepoints"):
            render_waveforms_svg([0.0], {"a": [0.0]})
        with pytest.raises(ValueError, match="no waveforms"):
            render_waveforms_svg(times, {})
        with pytest.raises(ValueError, match="length mismatch"):
            render_waveforms_svg(times, {"a": [0.0, 1.0]})

    def test_flat_waveform_no_divide_by_zero(self):
        times = [0.0, 1.0]
        svg = render_waveforms_svg(times, {"flat": [0.5, 0.5]})
        assert "<polyline" in svg


class TestSave:
    def test_writes_file(self, simple_waves, tmp_path):
        times, waves = simple_waves
        path = save_waveforms_svg(times, waves, str(tmp_path / "w.svg"))
        assert open(path, encoding="utf-8").read().startswith("<svg")

    def test_from_real_transient(self, tmp_path, tech, mst10):
        """End to end: simulate a routing, plot the slow/fast sinks."""
        from repro.delay.rc_builder import build_interconnect_circuit, node_label
        from repro.circuit.transient import transient
        from repro.delay.spice_delay import spice_delays

        delays = spice_delays(mst10, tech)
        slow = max(delays, key=delays.get)
        fast = min(delays, key=delays.get)
        circuit = build_interconnect_circuit(mst10, tech, segments=2)
        result = transient(circuit, t_stop=8 * delays[slow], num_steps=400)
        svg = render_waveforms_svg(
            result.times,
            {f"sink {slow}": result.voltage(node_label(slow)),
             f"sink {fast}": result.voltage(node_label(fast))},
            threshold=0.5)
        assert svg.count("<polyline") == 2
