"""Unit tests for SVG rendering."""

from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import prim_mst
from repro.viz.svg import render_routing_svg, save_routing_svg


class TestRender:
    def test_well_formed_document(self, mst10):
        svg = render_routing_svg(mst10)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_one_path_per_edge(self, mst10):
        svg = render_routing_svg(mst10)
        assert svg.count("<path") == mst10.num_edges

    def test_source_is_square_sinks_are_circles(self, mst10):
        svg = render_routing_svg(mst10)
        assert svg.count("<circle") == 9
        # one filled source square
        assert svg.count('style="fill:#c0392b"') == 1

    def test_steiner_points_hollow_squares(self, line_net):
        graph = prim_mst(line_net)
        graph.add_steiner_point(Point(500.0, 500.0))
        svg = render_routing_svg(graph)
        assert "stroke-width:1.5" in svg  # the steiner style

    def test_highlighted_edges_dashed(self, mst10):
        extra = mst10.candidate_edges()[0]
        graph = mst10.with_edge(*extra)
        svg = render_routing_svg(graph, highlight_edges=[extra])
        assert svg.count("stroke-dasharray") == 1

    def test_highlight_edge_order_insensitive(self, mst10):
        u, v = mst10.candidate_edges()[0]
        graph = mst10.with_edge(u, v)
        svg = render_routing_svg(graph, highlight_edges=[(v, u)])
        assert "stroke-dasharray" in svg

    def test_title_escaped(self, mst10):
        svg = render_routing_svg(mst10, title="a < b & c")
        assert "a &lt; b &amp; c" in svg

    def test_node_labels(self, mst10):
        svg = render_routing_svg(mst10, node_labels=True)
        assert ">0</text>" in svg

    def test_degenerate_collinear_net(self, line_net):
        # Zero vertical span must not divide by zero.
        svg = render_routing_svg(prim_mst(line_net))
        assert "<svg" in svg


class TestSave:
    def test_writes_file(self, mst10, tmp_path):
        path = save_routing_svg(mst10, str(tmp_path / "g.svg"))
        content = open(path, encoding="utf-8").read()
        assert content.startswith("<svg")
