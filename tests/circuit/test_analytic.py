"""The exact analytic RC solver vs closed forms and the MNA transient."""

import numpy as np
import pytest

from repro.circuit.analytic import AnalyticRC, ReducedRC


def single_rc(r=1e3, c=1e-12, rd=0.0) -> ReducedRC:
    """Driver (rd ignored here) -> R -> C to ground, one node: the input
    resistor doubles as driver, so G = 1/r, cap = c, b = 1/r."""
    g = 1.0 / r
    return ReducedRC(G=np.array([[g]]), c=np.array([c]),
                     b=np.array([g]), labels=["out"])


def two_node_ladder(r1=1e3, c1=1e-12, r2=2e3, c2=2e-12) -> ReducedRC:
    """in --r1-- a --r2-- b with caps to ground; driven by unit step at in
    through r1 (r1 acts as the driver resistance)."""
    g1, g2 = 1.0 / r1, 1.0 / r2
    G = np.array([[g1 + g2, -g2], [-g2, g2]])
    return ReducedRC(G=G, c=np.array([c1, c2]), b=np.array([g1, 0.0]),
                     labels=["a", "b"])


class TestReducedRCValidation:
    def test_rejects_zero_capacitance(self):
        with pytest.raises(ValueError, match="positive capacitance"):
            ReducedRC(G=np.eye(1), c=np.array([0.0]), b=np.array([1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="match"):
            ReducedRC(G=np.eye(2), c=np.array([1.0]), b=np.array([1.0, 1.0]))

    def test_rejects_wrong_label_count(self):
        with pytest.raises(ValueError, match="labels"):
            ReducedRC(G=np.eye(1), c=np.array([1.0]), b=np.array([1.0]),
                      labels=["a", "b"])

    def test_row_lookup(self):
        sys = two_node_ladder()
        assert sys.row("b") == 1
        with pytest.raises(KeyError):
            sys.row("zz")


class TestSingleRC:
    def test_final_value_is_one(self):
        sol = AnalyticRC(single_rc())
        assert sol.v_inf[0] == pytest.approx(1.0)

    def test_waveform_is_exponential(self):
        r, c = 1e3, 1e-12
        sol = AnalyticRC(single_rc(r, c))
        times = np.linspace(0, 5 * r * c, 50)
        expected = 1.0 - np.exp(-times / (r * c))
        assert np.allclose(sol.voltage("out", times), expected, atol=1e-12)

    def test_elmore_equals_rc(self):
        r, c = 1e3, 1e-12
        sys = single_rc(r, c)
        assert sys.elmore()[0] == pytest.approx(r * c)

    def test_50pct_crossing_is_rc_ln2(self):
        r, c = 1e3, 1e-12
        sol = AnalyticRC(single_rc(r, c))
        assert sol.crossing_time("out", 0.5) == pytest.approx(
            r * c * np.log(2.0), rel=1e-9)

    def test_time_constants(self):
        r, c = 1e3, 1e-12
        sol = AnalyticRC(single_rc(r, c))
        assert sol.time_constants[0] == pytest.approx(r * c)


class TestLadder:
    def test_elmore_matches_hand_formula(self):
        r1, c1, r2, c2 = 1e3, 1e-12, 2e3, 2e-12
        sys = two_node_ladder(r1, c1, r2, c2)
        elmore = sys.elmore()
        assert elmore[0] == pytest.approx(r1 * (c1 + c2))
        assert elmore[1] == pytest.approx(r1 * (c1 + c2) + r2 * c2)

    def test_voltages_at_zero_and_infinity(self):
        sol = AnalyticRC(two_node_ladder())
        v0 = sol.voltages(0.0)
        assert np.allclose(v0, 0.0, atol=1e-9)
        far = sol.voltages(1.0)  # one full second: forever for ns circuits
        assert np.allclose(far, 1.0, atol=1e-9)

    def test_downstream_node_lags(self):
        sol = AnalyticRC(two_node_ladder())
        t_a = sol.crossing_time("a", 0.5)
        t_b = sol.crossing_time("b", 0.5)
        assert t_b > t_a

    def test_batched_crossings_match_scalar(self):
        sol = AnalyticRC(two_node_ladder())
        batched = sol.crossing_times(["a", "b"], np.array([0.5, 0.5]))
        assert batched[0] == pytest.approx(sol.crossing_time("a", 0.5), rel=1e-9)
        assert batched[1] == pytest.approx(sol.crossing_time("b", 0.5), rel=1e-9)

    def test_higher_threshold_is_later(self):
        sol = AnalyticRC(two_node_ladder())
        t_lo, t_hi = sol.crossing_times(["b", "b"], np.array([0.3, 0.9]))
        assert t_hi > t_lo

    def test_threshold_above_settle_raises(self):
        sol = AnalyticRC(two_node_ladder())
        with pytest.raises(ValueError, match="settle below"):
            sol.crossing_times(["b"], np.array([1.5]))

    def test_mismatched_thresholds_raise(self):
        sol = AnalyticRC(two_node_ladder())
        with pytest.raises(ValueError, match="one threshold per label"):
            sol.crossing_times(["a", "b"], np.array([0.5]))


class TestStability:
    def test_unstable_system_rejected(self):
        # No driver conductance: pure Laplacian is singular (lambda = 0).
        G = np.array([[1.0, -1.0], [-1.0, 1.0]])
        sys = ReducedRC(G=G, c=np.array([1e-12, 1e-12]),
                        b=np.array([0.0, 0.0]), labels=["a", "b"])
        with pytest.raises((ValueError, np.linalg.LinAlgError)):
            AnalyticRC(sys)
