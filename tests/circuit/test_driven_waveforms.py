"""Transient analysis driven by non-step waveforms (PWL, pulse, ramps).

The paper's decks use ideal steps, but a simulator that only handles
steps is not a simulator. These tests drive RC loads with ramps and
pulses and check against hand-derivable behaviour.
"""

import numpy as np
import pytest

from repro.circuit.measure import threshold_crossing
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient
from repro.circuit.waveform import PWL, Pulse, Step


def rc_with_source(waveform, r=1e3, c=1e-12) -> Circuit:
    ckt = Circuit()
    ckt.add_voltage_source("vin", "in", GROUND, waveform)
    ckt.add_resistor("r1", "in", "out", r)
    ckt.add_capacitor("c1", "out", GROUND, c)
    return ckt


class TestRampDrive:
    def test_slow_ramp_output_tracks_input(self):
        """For a ramp much slower than tau, the output follows the input
        with a lag of ~tau."""
        r, c = 1e3, 1e-12
        tau = r * c
        ramp = Step(rise=100 * tau)
        result = transient(rc_with_source(ramp, r, c),
                           t_stop=200 * tau, num_steps=4000)
        out = result.voltage("out")
        vin = np.array([ramp.value(t) for t in result.times])
        mid = slice(1000, 1900)  # well inside the ramp
        lag = vin[mid] - out[mid]
        expected_lag = tau / (100 * tau)  # dV/dt * tau in volts
        assert np.allclose(lag, expected_lag, atol=expected_lag * 0.2)

    def test_ramp_delays_crossing_by_half_rise(self):
        """A finite input rise shifts the 50% output crossing by about
        half the rise time (for rise >> tau)."""
        r, c = 1e3, 1e-12
        tau = r * c
        ideal = transient(rc_with_source(Step(), r, c),
                          t_stop=20 * tau, num_steps=2000)
        t_ideal = threshold_crossing(ideal.times, ideal.voltage("out"), 0.5)
        rise = 10 * tau
        ramped = transient(rc_with_source(Step(rise=rise), r, c),
                           t_stop=40 * tau, num_steps=4000)
        t_ramped = threshold_crossing(ramped.times, ramped.voltage("out"),
                                      0.5)
        assert t_ramped - t_ideal == pytest.approx(rise / 2, rel=0.15)


class TestPulseDrive:
    def test_short_pulse_charges_then_discharges(self):
        r, c = 1e3, 1e-12
        tau = r * c
        pulse = Pulse(v0=0, v1=1, delay=0, rise=0, fall=0,
                      width=3 * tau, period=20 * tau)
        result = transient(rc_with_source(pulse, r, c),
                           t_stop=10 * tau, num_steps=4000)
        out = result.voltage("out")
        peak = out.max()
        assert peak == pytest.approx(1 - np.exp(-3.0), rel=0.02)
        # After the pulse the cap discharges toward zero.
        assert out[-1] < 0.1

    def test_periodic_pulse_reaches_steady_oscillation(self):
        r, c = 1e3, 1e-12
        tau = r * c
        pulse = Pulse(v0=0, v1=1, delay=0, rise=0, fall=0,
                      width=5 * tau, period=10 * tau)
        result = transient(rc_with_source(pulse, r, c),
                           t_stop=100 * tau, num_steps=8000)
        out = result.voltage("out")
        # Sample the last two periods: the waveform has become periodic.
        steps_per_period = 800
        last = out[-steps_per_period:]
        prev = out[-2 * steps_per_period:-steps_per_period]
        assert np.allclose(last, prev, atol=5e-3)


class TestPwlDrive:
    def test_staircase_settles_between_steps(self):
        r, c = 1e3, 1e-12
        tau = r * c
        wave = PWL([(0.0, 0.0), (1e-15, 0.5),
                    (20 * tau, 0.5), (20 * tau + 1e-15, 1.0)])
        result = transient(rc_with_source(wave, r, c),
                           t_stop=40 * tau, num_steps=4000)
        out = result.voltage("out")
        halfway = out[len(out) // 2 - 50]
        assert halfway == pytest.approx(0.5, abs=0.01)
        assert out[-1] == pytest.approx(1.0, abs=0.01)
