"""Unit tests for AC analysis against closed-form frequency responses."""

import numpy as np
import pytest

from repro.circuit.ac import ac_analysis
from repro.circuit.netlist import GROUND, Circuit, CircuitError
from repro.circuit.waveform import Step


def rc_lowpass(r=1e3, c=1e-12) -> Circuit:
    ckt = Circuit("lp")
    ckt.add_voltage_source("vin", "in", GROUND, Step())
    ckt.add_resistor("r1", "in", "out", r)
    ckt.add_capacitor("c1", "out", GROUND, c)
    return ckt


class TestRCLowpass:
    def test_magnitude_matches_transfer_function(self):
        r, c = 1e3, 1e-12
        result = ac_analysis(rc_lowpass(r, c), 1e6, 1e12)
        expected = 1.0 / np.sqrt(
            1.0 + (2 * np.pi * result.frequencies * r * c) ** 2)
        assert np.allclose(result.magnitude("out"), expected, rtol=1e-9)

    def test_corner_at_one_over_2pi_rc(self):
        r, c = 1e3, 1e-12
        result = ac_analysis(rc_lowpass(r, c), 1e6, 1e12,
                             points_per_decade=60)
        corner = result.corner_frequency("out")
        assert corner == pytest.approx(1.0 / (2 * np.pi * r * c), rel=0.01)

    def test_phase_approaches_minus_90_degrees(self):
        result = ac_analysis(rc_lowpass(), 1e6, 1e13)
        phase = result.phase("out")
        assert phase[0] == pytest.approx(0.0, abs=0.01)
        assert phase[-1] == pytest.approx(-np.pi / 2, abs=0.05)

    def test_dc_end_is_unity(self):
        result = ac_analysis(rc_lowpass(), 1e3, 1e6)
        assert result.magnitude("out")[0] == pytest.approx(1.0, rel=1e-6)
        assert result.magnitude_db("out")[0] == pytest.approx(0.0, abs=1e-4)

    def test_input_node_is_flat(self):
        result = ac_analysis(rc_lowpass(), 1e6, 1e12)
        assert np.allclose(result.magnitude("in"), 1.0)

    def test_ground_is_zero(self):
        result = ac_analysis(rc_lowpass(), 1e6, 1e9)
        assert not result.voltage("0").any()


class TestRLCResonance:
    def test_peak_near_resonant_frequency(self):
        r, ell, c = 1.0, 1e-9, 1e-12
        ckt = Circuit()
        ckt.add_voltage_source("vin", "in", GROUND, Step())
        ckt.add_resistor("r1", "in", "a", r)
        ckt.add_inductor("l1", "a", "out", ell)
        ckt.add_capacitor("c1", "out", GROUND, c)
        f0 = 1.0 / (2 * np.pi * np.sqrt(ell * c))
        result = ac_analysis(ckt, f0 / 100, f0 * 100, points_per_decade=80)
        mag = result.magnitude("out")
        peak_f = result.frequencies[int(np.argmax(mag))]
        assert peak_f == pytest.approx(f0, rel=0.05)
        # Q = (1/R) sqrt(L/C) ~ 31: a strong peak.
        assert mag.max() > 10.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"f_start": 0.0, "f_stop": 1e9},
        {"f_start": 1e9, "f_stop": 1e6},
        {"f_start": 1e6, "f_stop": 1e9, "points_per_decade": 0},
    ])
    def test_bad_sweep_arguments(self, kwargs):
        with pytest.raises(ValueError):
            ac_analysis(rc_lowpass(), **kwargs)

    def test_sourceless_circuit_rejected(self):
        ckt = Circuit()
        ckt.add_resistor("r1", "a", GROUND, 1e3)
        ckt.add_capacitor("c1", "a", GROUND, 1e-12)
        ckt.add_voltage_source("vz", "a", GROUND, 0.0)
        with pytest.raises(CircuitError, match="nonzero source"):
            ac_analysis(ckt, 1e6, 1e9)

    def test_corner_none_when_sweep_too_short(self):
        result = ac_analysis(rc_lowpass(), 1e3, 1e4)  # far below corner
        assert result.corner_frequency("out") is None


class TestConsistencyWithOtherEngines:
    def test_corner_matches_elmore_timescale(self, tech, mst10):
        """The routing's dominant AC corner sits at ~1/(2π·τ_dominant),
        with τ_dominant between the critical sink's Elmore delay and the
        slowest natural time constant — consistency across the moment,
        eigenvalue, and frequency views."""
        from repro.circuit.analytic import AnalyticRC
        from repro.delay.rc_builder import (
            build_interconnect_circuit,
            build_reduced_rc,
            node_label,
        )
        from repro.delay.elmore_graph import graph_elmore_delays

        elmore = graph_elmore_delays(mst10, tech)
        worst = max((s for s in range(1, 10)), key=elmore.get)
        circuit = build_interconnect_circuit(mst10, tech, segments=1)
        f_guess = 1.0 / (2 * np.pi * elmore[worst])
        result = ac_analysis(circuit, f_guess / 1000, f_guess * 1000,
                             points_per_decade=40)
        corner = result.corner_frequency(node_label(worst))
        assert corner is not None
        tau_corner = 1.0 / (2 * np.pi * corner)
        slowest = AnalyticRC(
            build_reduced_rc(mst10, tech, segments=1)).time_constants[0]
        assert 0.3 * tau_corner <= elmore[worst]
        assert tau_corner <= slowest * 1.5
