"""Unit tests for SPICE deck export/import."""

import pytest

from repro.circuit.deck import (
    circuit_from_deck,
    deck_from_circuit,
    parse_value,
)
from repro.circuit.netlist import GROUND, Circuit, CircuitError
from repro.circuit.waveform import DC, PWL, Pulse, Step


@pytest.fixture
def sample() -> Circuit:
    ckt = Circuit("sample")
    ckt.add_voltage_source("vin", "in", GROUND, Step())
    ckt.add_resistor("rdrv", "in", "n0", 100.0)
    ckt.add_capacitor("c0", "n0", GROUND, 15.3e-15)
    ckt.add_inductor("l0", "n0", "n1", 492e-15)
    ckt.add_current_source("iload", "n1", GROUND, DC(1e-6))
    return ckt


class TestParseValue:
    @pytest.mark.parametrize("token,expected", [
        ("100", 100.0),
        ("0.03", 0.03),
        ("15.3f", 15.3e-15),
        ("492f", 492e-15),
        ("1k", 1e3),
        ("2.5meg", 2.5e6),
        ("10p", 10e-12),
        ("3n", 3e-9),
        ("1.5u", 1.5e-6),
        ("7m", 7e-3),
        ("2g", 2e9),
        ("1e-9", 1e-9),
        ("-4.7k", -4.7e3),
    ])
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_trailing_unit_letters_ignored(self):
        # SPICE allows "100ohm", "10pF" etc.
        assert parse_value("10pF") == pytest.approx(10e-12)

    def test_garbage_rejected(self):
        with pytest.raises(CircuitError, match="cannot parse"):
            parse_value("abc")


class TestExport:
    def test_contains_all_cards(self, sample):
        deck = deck_from_circuit(sample)
        assert deck.startswith("* sample")
        for name in ("vin", "rdrv", "c0", "l0", "iload"):
            assert any(line.startswith(name) for line in deck.splitlines())
        assert deck.rstrip().endswith(".end")

    def test_tran_and_print_cards(self, sample):
        deck = deck_from_circuit(sample, t_stop=1e-9, print_nodes=["n1"])
        assert ".tran" in deck
        assert ".print tran v(n1)" in deck

    def test_step_becomes_pwl(self, sample):
        deck = deck_from_circuit(sample)
        vin_line = next(l for l in deck.splitlines() if l.startswith("vin"))
        assert "PWL(" in vin_line


class TestRoundTrip:
    def test_elements_survive(self, sample):
        deck = deck_from_circuit(sample)
        parsed = circuit_from_deck(deck)
        assert parsed.name == "sample"
        assert len(parsed) == len(sample)
        assert parsed.element("rdrv").value == pytest.approx(100.0)
        assert parsed.element("c0").value == pytest.approx(15.3e-15)
        assert parsed.element("l0").value == pytest.approx(492e-15)

    def test_pulse_source_roundtrip(self):
        ckt = Circuit("p")
        ckt.add_voltage_source(
            "v1", "a", GROUND,
            Pulse(v0=0, v1=1, delay=1e-9, rise=0.1e-9, fall=0.1e-9,
                  width=2e-9, period=10e-9))
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        parsed = circuit_from_deck(deck_from_circuit(ckt))
        wave = parsed.element("v1").waveform
        assert isinstance(wave, Pulse)
        assert wave.period == pytest.approx(10e-9)

    def test_pwl_source_roundtrip(self):
        ckt = Circuit("p")
        ckt.add_voltage_source("v1", "a", GROUND,
                               PWL([(0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)]))
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        parsed = circuit_from_deck(deck_from_circuit(ckt))
        wave = parsed.element("v1").waveform
        assert isinstance(wave, PWL)
        assert wave.value(1e-9) == pytest.approx(1.0)

    def test_capacitor_ic_roundtrip(self):
        ckt = Circuit("ic")
        ckt.add_capacitor("c1", "a", GROUND, 1e-12, ic=0.25)
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        parsed = circuit_from_deck(deck_from_circuit(ckt))
        assert parsed.element("c1").ic == pytest.approx(0.25)

    def test_simulation_agrees_after_roundtrip(self, sample):
        from repro.circuit.transient import transient
        import numpy as np

        parsed = circuit_from_deck(deck_from_circuit(sample))
        a = transient(sample, t_stop=1e-9, num_steps=200).voltage("n1")
        b = transient(parsed, t_stop=1e-9, num_steps=200).voltage("n1")
        # The exported 1 fs PWL ramp differs from the ideal right-
        # continuous step inside the first integration step, and the
        # trapezoidal startup ringing it excites takes a few steps to
        # damp; after that the waveforms must coincide.
        assert np.allclose(a[10:], b[10:], atol=5e-3)
        assert a[-1] == pytest.approx(b[-1], abs=1e-6)


class TestParserErrors:
    def test_unsupported_card(self):
        with pytest.raises(CircuitError, match="unsupported card"):
            circuit_from_deck("* t\nQ1 a b c model\n.end")

    def test_malformed_card(self):
        with pytest.raises(CircuitError, match="malformed"):
            circuit_from_deck("* t\nR1 a\n.end")

    def test_dot_cards_and_comments_ignored(self):
        deck = ("* title\n"
                "* a comment\n"
                ".option gmin=1e-12\n"
                "R1 a 0 1k\n"
                "V1 a 0 DC 1\n"
                ".end\n")
        parsed = circuit_from_deck(deck)
        assert len(parsed) == 2

    def test_bad_pulse_field_count(self):
        with pytest.raises(CircuitError, match="PULSE needs 7"):
            circuit_from_deck("* t\nV1 a 0 PULSE(0 1 0)\nR1 a 0 1\n.end")
