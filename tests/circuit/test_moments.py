"""Unit tests for moment (AWE) analysis."""

import math

import numpy as np
import pytest

from repro.circuit.moments import (
    elmore_from_moments,
    node_moments,
    two_pole_delay,
)
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.waveform import Step


def rc_ladder(r1=1e3, c1=1e-12, r2=2e3, c2=2e-12) -> Circuit:
    ckt = Circuit("ladder")
    ckt.add_voltage_source("vin", "in", GROUND, Step())
    ckt.add_resistor("r1", "in", "a", r1)
    ckt.add_capacitor("ca", "a", GROUND, c1)
    ckt.add_resistor("r2", "a", "b", r2)
    ckt.add_capacitor("cb", "b", GROUND, c2)
    return ckt


class TestNodeMoments:
    def test_m0_is_dc_solution(self):
        moments = node_moments(rc_ladder(), count=2)
        assert moments["a"][0] == pytest.approx(1.0, abs=1e-6)
        assert moments["b"][0] == pytest.approx(1.0, abs=1e-6)

    def test_first_moment_gives_elmore_ladder(self):
        r1, c1, r2, c2 = 1e3, 1e-12, 2e3, 2e-12
        moments = node_moments(rc_ladder(r1, c1, r2, c2), count=2)
        assert elmore_from_moments(moments["a"]) == pytest.approx(
            r1 * (c1 + c2), rel=1e-6)
        assert elmore_from_moments(moments["b"]) == pytest.approx(
            r1 * (c1 + c2) + r2 * c2, rel=1e-6)

    def test_single_rc_moments_are_powers_of_tau(self):
        ckt = Circuit()
        ckt.add_voltage_source("vin", "in", GROUND, Step())
        ckt.add_resistor("r1", "in", "out", 1e3)
        ckt.add_capacitor("c1", "out", GROUND, 1e-12)
        tau = 1e-9
        m = node_moments(ckt, count=4)["out"]
        # H(s) = 1/(1+tau s) -> moments alternate (-tau)^k.
        for k in range(4):
            assert m[k] == pytest.approx((-tau) ** k, rel=1e-6)

    def test_count_validation(self):
        with pytest.raises(ValueError, match="count"):
            node_moments(rc_ladder(), count=0)


class TestElmoreFromMoments:
    def test_requires_two_moments(self):
        with pytest.raises(ValueError, match="two moments"):
            elmore_from_moments(np.array([1.0]))

    def test_zero_m0_rejected(self):
        with pytest.raises(ValueError, match="m0"):
            elmore_from_moments(np.array([0.0, 1.0]))


class TestTwoPoleDelay:
    def test_single_pole_exact(self):
        # For a true single-pole response the two-pole fit degenerates and
        # must still return tau*ln2.
        tau = 1e-9
        moments = np.array([1.0, -tau, tau * tau])
        delay = two_pole_delay(moments, fraction=0.5)
        assert delay == pytest.approx(tau * math.log(2.0), rel=1e-6)

    def test_matches_simulation_on_ladder(self):
        from repro.circuit.transient import transient
        from repro.circuit.measure import delay_to_fraction

        ckt = rc_ladder()
        moments = node_moments(ckt, count=3)
        estimate = two_pole_delay(moments["b"])
        result = transient(ckt, t_stop=50e-9, num_steps=4000)
        measured = delay_to_fraction(result.times, result.voltage("b"), 1.0)
        assert estimate == pytest.approx(measured, rel=0.05)

    def test_beats_elmore_on_ladder(self):
        from repro.circuit.transient import transient
        from repro.circuit.measure import delay_to_fraction

        ckt = rc_ladder()
        moments = node_moments(ckt, count=3)["b"]
        result = transient(ckt, t_stop=50e-9, num_steps=4000)
        measured = delay_to_fraction(result.times, result.voltage("b"), 1.0)
        err_two_pole = abs(two_pole_delay(moments) - measured)
        err_elmore = abs(elmore_from_moments(moments) - measured)
        assert err_two_pole < err_elmore

    def test_fraction_monotonicity(self):
        moments = node_moments(rc_ladder(), count=3)["b"]
        d25 = two_pole_delay(moments, fraction=0.25)
        d50 = two_pole_delay(moments, fraction=0.5)
        d90 = two_pole_delay(moments, fraction=0.9)
        assert d25 < d50 < d90

    def test_requires_three_moments(self):
        with pytest.raises(ValueError, match="three moments"):
            two_pole_delay(np.array([1.0, -1e-9]))

    @pytest.mark.parametrize("fraction", [0.0, 1.0])
    def test_rejects_bad_fraction(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            two_pole_delay(np.array([1.0, -1e-9, 1e-18]), fraction=fraction)
