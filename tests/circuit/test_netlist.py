"""Unit tests for the Circuit netlist container."""

import pytest

from repro.circuit.netlist import GROUND, Circuit, CircuitError


@pytest.fixture
def rc() -> Circuit:
    ckt = Circuit("rc")
    ckt.add_voltage_source("vin", "in", GROUND, 1.0)
    ckt.add_resistor("r1", "in", "out", 1e3)
    ckt.add_capacitor("c1", "out", GROUND, 1e-12)
    return ckt


class TestBuilding:
    def test_nodes_created_implicitly(self, rc):
        assert set(rc.nodes) == {GROUND, "in", "out"}

    def test_ground_listed_first(self, rc):
        assert rc.nodes[0] == GROUND

    def test_duplicate_names_rejected(self, rc):
        with pytest.raises(CircuitError, match="duplicate"):
            rc.add_resistor("r1", "a", "b", 1.0)

    def test_len_and_contains(self, rc):
        assert len(rc) == 3
        assert "r1" in rc
        assert "zz" not in rc

    def test_element_lookup(self, rc):
        assert rc.element("c1").value == 1e-12
        with pytest.raises(CircuitError, match="no element"):
            rc.element("nope")

    def test_typed_accessors(self, rc):
        assert [r.name for r in rc.resistors()] == ["r1"]
        assert [c.name for c in rc.capacitors()] == ["c1"]
        assert [v.name for v in rc.voltage_sources()] == ["vin"]
        assert rc.inductors() == []
        assert rc.current_sources() == []

    def test_add_returns_element(self, rc):
        ind = rc.add_inductor("l1", "out", "tip", 1e-9)
        assert ind.name == "l1"
        assert "tip" in rc.nodes


class TestValidation:
    def test_valid_circuit_passes(self, rc):
        rc.validate()

    def test_empty_circuit_fails(self):
        with pytest.raises(CircuitError, match="no elements"):
            Circuit("empty").validate()

    def test_floating_circuit_fails(self):
        ckt = Circuit("floating")
        ckt.add_resistor("r1", "a", "b", 1.0)
        with pytest.raises(CircuitError, match="ground"):
            ckt.validate()

    def test_repr(self, rc):
        assert "3 elements" in repr(rc)
