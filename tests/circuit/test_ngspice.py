"""Unit tests for the optional ngspice wrapper.

The parser is tested against captured-format text (no binary needed);
the execution path runs only where an ngspice binary actually exists.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.circuit.ngspice import (
    NgspiceError,
    find_ngspice,
    parse_print_output,
    run_deck,
)

SAMPLE_OUTPUT = """
Circuit: route_demo

Index   time            v(n1)           v(n2)
------------------------------------------------------------
0\t0.000000e+00\t0.000000e+00\t0.000000e+00
1\t1.000000e-12\t2.500000e-01\t1.000000e-01
2\t2.000000e-12\t5.000000e-01\t3.000000e-01

Index   time            v(n1)           v(n2)
------------------------------------------------------------
3\t3.000000e-12\t7.500000e-01\t6.000000e-01
"""


class TestParser:
    def test_parses_rows_across_blocks(self):
        result = parse_print_output(SAMPLE_OUTPUT)
        assert result.times.shape == (4,)
        assert result.times[-1] == pytest.approx(3e-12)
        assert result.voltage("n1")[2] == pytest.approx(0.5)
        assert result.voltage("N2")[3] == pytest.approx(0.6)

    def test_unknown_node_raises(self):
        result = parse_print_output(SAMPLE_OUTPUT)
        with pytest.raises(NgspiceError, match="not in ngspice output"):
            result.voltage("n9")

    def test_no_table_raises(self):
        with pytest.raises(NgspiceError, match="no .print tran table"):
            parse_print_output("Circuit: empty\n")

    def test_inconsistent_headers_raise(self):
        broken = SAMPLE_OUTPUT.replace("v(n1)           v(n2)",
                                       "v(n1)           v(n3)", 1)
        with pytest.raises(NgspiceError, match="inconsistent"):
            parse_print_output(broken)


class TestExecution:
    def test_missing_binary_raises_cleanly(self):
        if find_ngspice() is not None:
            pytest.skip("ngspice installed; the missing-binary path "
                        "cannot be exercised")
        with pytest.raises(NgspiceError, match="no ngspice binary"):
            run_deck("* x\n.end\n")

    @pytest.mark.skipif(find_ngspice() is None,
                        reason="ngspice not installed")
    def test_roundtrip_against_builtin_engine(self, tech, mst10):
        """Where ngspice exists, the exported deck's 50% delays must match
        the built-in engine within a few percent."""
        from repro.circuit.deck import deck_from_circuit
        from repro.circuit.measure import delay_to_fraction
        from repro.delay.rc_builder import build_interconnect_circuit, node_label
        from repro.delay.spice_delay import spice_delays

        delays = spice_delays(mst10, tech)
        worst = max(delays, key=delays.get)
        circuit = build_interconnect_circuit(mst10, tech, segments=3)
        deck = deck_from_circuit(circuit, t_stop=8 * delays[worst],
                                 print_nodes=[node_label(worst)])
        result = run_deck(deck)
        measured = delay_to_fraction(result.times,
                                     result.voltage(node_label(worst)), 1.0)
        assert measured == pytest.approx(delays[worst], rel=0.05)


class FakeCompleted:
    def __init__(self, returncode=0, stdout="", stderr=""):
        self.returncode = returncode
        self.stdout = stdout
        self.stderr = stderr


class TestFailurePaths:
    """Mocked-subprocess coverage of every runner failure mode.

    No ngspice binary is involved: ``subprocess.run`` is monkeypatched,
    so these run everywhere and exercise timeout, nonzero exit, missing
    binary, unparseable stdout, and deck cleanup/retention.
    """

    DECK = "* mocked deck\n.end\n"

    @pytest.fixture
    def runner(self):
        from repro.circuit.ngspice import NgspiceRunner

        return NgspiceRunner(binary="/fake/ngspice", timeout=2.0)

    def test_timeout_raises_and_cleans_up(self, runner, monkeypatch):
        import subprocess

        from repro.circuit import ngspice

        def fake_run(cmd, **kwargs):
            raise subprocess.TimeoutExpired(cmd, kwargs["timeout"])

        monkeypatch.setattr(ngspice.subprocess, "run", fake_run)
        with pytest.raises(NgspiceError, match="timed out after 2") as info:
            runner.run(self.DECK)
        assert info.value.deck_path is not None
        assert not info.value.deck_path.exists()
        assert not info.value.deck_path.parent.exists()

    def test_nonzero_exit_raises_with_stderr(self, runner, monkeypatch):
        from repro.circuit import ngspice

        monkeypatch.setattr(
            ngspice.subprocess, "run",
            lambda cmd, **kw: FakeCompleted(returncode=1,
                                            stderr="singular matrix"))
        with pytest.raises(NgspiceError,
                           match="exited with 1: singular matrix") as info:
            runner.run(self.DECK)
        assert not info.value.deck_path.parent.exists()

    def test_missing_binary_exec_failure(self, runner, monkeypatch):
        from repro.circuit import ngspice

        def fake_run(cmd, **kwargs):
            raise FileNotFoundError("/fake/ngspice")

        monkeypatch.setattr(ngspice.subprocess, "run", fake_run)
        with pytest.raises(NgspiceError, match="could not be run"):
            runner.run(self.DECK)

    def test_no_binary_on_path(self, monkeypatch):
        from repro.circuit import ngspice

        monkeypatch.setattr(ngspice, "find_ngspice", lambda: None)
        with pytest.raises(NgspiceError, match="no ngspice binary"):
            ngspice.NgspiceRunner().run(self.DECK)

    def test_garbage_stdout_raises_and_cleans_up(self, runner, monkeypatch):
        from repro.circuit import ngspice

        monkeypatch.setattr(
            ngspice.subprocess, "run",
            lambda cmd, **kw: FakeCompleted(stdout="%%% not spice %%%"))
        with pytest.raises(NgspiceError, match="no .print tran table") as info:
            runner.run(self.DECK)
        assert not info.value.deck_path.parent.exists()

    def test_keep_failed_decks_preserves_deck(self, monkeypatch):
        from repro.circuit import ngspice

        runner = ngspice.NgspiceRunner(binary="/fake/ngspice",
                                       keep_failed_decks=True)
        monkeypatch.setattr(
            ngspice.subprocess, "run",
            lambda cmd, **kw: FakeCompleted(returncode=9, stderr="boom"))
        with pytest.raises(NgspiceError, match="deck kept at") as info:
            runner.run(self.DECK)
        deck_path = info.value.deck_path
        try:
            assert deck_path.read_text() == self.DECK
        finally:
            import shutil

            shutil.rmtree(deck_path.parent, ignore_errors=True)

    def test_success_path_cleans_up_workdir(self, runner, monkeypatch):
        from repro.circuit import ngspice

        seen = {}

        def fake_run(cmd, **kwargs):
            seen["deck"] = Path(cmd[-1]).read_text()
            seen["workdir"] = Path(cmd[-1]).parent
            return FakeCompleted(stdout=SAMPLE_OUTPUT)

        monkeypatch.setattr(ngspice.subprocess, "run", fake_run)
        result = runner.run(self.DECK)
        assert seen["deck"] == self.DECK
        assert not seen["workdir"].exists()
        assert result.voltage("n1")[2] == pytest.approx(0.5)

    def test_invalid_timeout_rejected(self):
        from repro.circuit.ngspice import NgspiceRunner

        with pytest.raises(ValueError, match="timeout must be positive"):
            NgspiceRunner(timeout=0.0)


class TestNgspiceDelayModel:
    def test_registered_as_oracle(self):
        from repro.delay.models import _FACTORIES, NgspiceDelayModel

        assert _FACTORIES["ngspice"] is NgspiceDelayModel

    def test_delays_via_stub_runner(self, tech, mst10, monkeypatch):
        """A stubbed runner feeding a synthetic ramp yields 50% crossings."""
        from repro.circuit.ngspice import NgspiceResult
        from repro.delay.models import NgspiceDelayModel
        from repro.delay.rc_builder import node_label

        sinks = list(mst10.sink_indices())
        times = np.linspace(0.0, 1e-9, 101)

        class StubRunner:
            def run(self, deck):
                # Every sink follows the same linear 0→1V ramp.
                volts = {node_label(s).lower(): times / times[-1]
                         for s in sinks}
                return NgspiceResult(times=times, voltages=volts)

        model = NgspiceDelayModel(tech, runner=StubRunner())
        delays = model.delays(mst10)
        assert set(delays) == set(sinks)
        for value in delays.values():
            assert value == pytest.approx(0.5e-9, rel=1e-6)

    def test_never_crossing_raises(self, tech, mst10):
        from repro.circuit.ngspice import NgspiceResult
        from repro.delay.models import NgspiceDelayModel
        from repro.delay.rc_builder import node_label

        sinks = list(mst10.sink_indices())
        times = np.linspace(0.0, 1e-9, 11)

        class FlatRunner:
            def run(self, deck):
                volts = {node_label(s).lower(): np.zeros_like(times)
                         for s in sinks}
                return NgspiceResult(times=times, voltages=volts)

        model = NgspiceDelayModel(tech, runner=FlatRunner())
        with pytest.raises(NgspiceError, match="never crossed"):
            model.delays(mst10)
