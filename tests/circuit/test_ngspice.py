"""Unit tests for the optional ngspice wrapper.

The parser is tested against captured-format text (no binary needed);
the execution path runs only where an ngspice binary actually exists.
"""

import numpy as np
import pytest

from repro.circuit.ngspice import (
    NgspiceError,
    find_ngspice,
    parse_print_output,
    run_deck,
)

SAMPLE_OUTPUT = """
Circuit: route_demo

Index   time            v(n1)           v(n2)
------------------------------------------------------------
0\t0.000000e+00\t0.000000e+00\t0.000000e+00
1\t1.000000e-12\t2.500000e-01\t1.000000e-01
2\t2.000000e-12\t5.000000e-01\t3.000000e-01

Index   time            v(n1)           v(n2)
------------------------------------------------------------
3\t3.000000e-12\t7.500000e-01\t6.000000e-01
"""


class TestParser:
    def test_parses_rows_across_blocks(self):
        result = parse_print_output(SAMPLE_OUTPUT)
        assert result.times.shape == (4,)
        assert result.times[-1] == pytest.approx(3e-12)
        assert result.voltage("n1")[2] == pytest.approx(0.5)
        assert result.voltage("N2")[3] == pytest.approx(0.6)

    def test_unknown_node_raises(self):
        result = parse_print_output(SAMPLE_OUTPUT)
        with pytest.raises(NgspiceError, match="not in ngspice output"):
            result.voltage("n9")

    def test_no_table_raises(self):
        with pytest.raises(NgspiceError, match="no .print tran table"):
            parse_print_output("Circuit: empty\n")

    def test_inconsistent_headers_raise(self):
        broken = SAMPLE_OUTPUT.replace("v(n1)           v(n2)",
                                       "v(n1)           v(n3)", 1)
        with pytest.raises(NgspiceError, match="inconsistent"):
            parse_print_output(broken)


class TestExecution:
    def test_missing_binary_raises_cleanly(self):
        if find_ngspice() is not None:
            pytest.skip("ngspice installed; the missing-binary path "
                        "cannot be exercised")
        with pytest.raises(NgspiceError, match="no ngspice binary"):
            run_deck("* x\n.end\n")

    @pytest.mark.skipif(find_ngspice() is None,
                        reason="ngspice not installed")
    def test_roundtrip_against_builtin_engine(self, tech, mst10):
        """Where ngspice exists, the exported deck's 50% delays must match
        the built-in engine within a few percent."""
        from repro.circuit.deck import deck_from_circuit
        from repro.circuit.measure import delay_to_fraction
        from repro.delay.rc_builder import build_interconnect_circuit, node_label
        from repro.delay.spice_delay import spice_delays

        delays = spice_delays(mst10, tech)
        worst = max(delays, key=delays.get)
        circuit = build_interconnect_circuit(mst10, tech, segments=3)
        deck = deck_from_circuit(circuit, t_stop=8 * delays[worst],
                                 print_nodes=[node_label(worst)])
        result = run_deck(deck)
        measured = delay_to_fraction(result.times,
                                     result.voltage(node_label(worst)), 1.0)
        assert measured == pytest.approx(delays[worst], rel=0.05)
