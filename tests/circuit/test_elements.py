"""Unit tests for circuit elements."""

import pytest

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.waveform import DC, Step


class TestResistor:
    def test_conductance(self):
        assert Resistor("r1", "a", "b", 50.0).conductance == pytest.approx(0.02)

    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="non-positive"):
            Resistor("r1", "a", "b", bad)


class TestCapacitor:
    def test_defaults(self):
        cap = Capacitor("c1", "a", "0", 1e-12)
        assert cap.ic == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Capacitor("c1", "a", "0", 0.0)


class TestInductor:
    def test_initial_current(self):
        ind = Inductor("l1", "a", "b", 1e-9, ic=0.5)
        assert ind.ic == 0.5

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Inductor("l1", "a", "b", -1e-9)


class TestSources:
    def test_numeric_waveform_becomes_dc(self):
        src = VoltageSource("v1", "a", "0", 3.3)
        assert isinstance(src.waveform, DC)
        assert src.value(0.0) == 3.3

    def test_waveform_passthrough(self):
        src = VoltageSource("v1", "a", "0", Step(delay=1.0))
        assert src.value(0.5) == 0.0
        assert src.value(2.0) == 1.0

    def test_current_source_value(self):
        src = CurrentSource("i1", "a", "0", 1e-3)
        assert src.value(10.0) == 1e-3

    def test_elements_are_immutable(self):
        src = VoltageSource("v1", "a", "0", 1.0)
        with pytest.raises(AttributeError):
            src.pos = "b"
