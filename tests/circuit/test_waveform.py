"""Unit tests for source waveforms."""

import pytest

from repro.circuit.waveform import DC, PWL, Pulse, Step, Waveform


class TestDC:
    def test_constant(self):
        wave = DC(2.5)
        assert wave.value(0.0) == 2.5
        assert wave.value(1e9) == 2.5
        assert wave.final_value() == 2.5

    def test_satisfies_protocol(self):
        assert isinstance(DC(1.0), Waveform)


class TestStep:
    def test_ideal_step_is_right_continuous(self):
        wave = Step()
        assert wave.value(0.0) == 1.0  # zero-state-response convention
        assert wave.value(-1e-12) == 0.0
        assert wave.value(1.0) == 1.0

    def test_delayed_step(self):
        wave = Step(delay=2e-9)
        assert wave.value(1e-9) == 0.0
        assert wave.value(2e-9) == 1.0
        assert wave.value(3e-9) == 1.0

    def test_linear_rise(self):
        wave = Step(v0=0.0, v1=2.0, delay=1.0, rise=2.0)
        assert wave.value(1.0) == 0.0
        assert wave.value(2.0) == pytest.approx(1.0)
        assert wave.value(3.0) == 2.0
        assert wave.value(10.0) == 2.0

    def test_falling_step(self):
        wave = Step(v0=5.0, v1=1.0)
        assert wave.value(0.0) == 1.0
        assert wave.final_value() == 1.0

    def test_rejects_negative_timing(self):
        with pytest.raises(ValueError):
            Step(delay=-1.0)
        with pytest.raises(ValueError):
            Step(rise=-1.0)


class TestPulse:
    def test_first_period_shape(self):
        wave = Pulse(v0=0, v1=1, delay=1, rise=1, fall=1, width=2, period=10)
        assert wave.value(0.5) == 0
        assert wave.value(1.5) == pytest.approx(0.5)   # mid-rise
        assert wave.value(3.0) == 1                    # plateau
        assert wave.value(4.5) == pytest.approx(0.5)   # mid-fall
        assert wave.value(6.0) == 0                    # back low

    def test_periodicity(self):
        wave = Pulse(v0=0, v1=1, delay=0, rise=1, fall=1, width=2, period=10)
        assert wave.value(3.0) == wave.value(13.0)
        assert wave.value(0.5) == wave.value(10.5)

    def test_zero_rise_is_instant(self):
        wave = Pulse(v0=0, v1=1, delay=0, rise=0, fall=0, width=5, period=10)
        assert wave.value(0.0) == 1
        assert wave.value(4.9) == 1
        assert wave.value(5.1) == 0

    def test_rejects_period_shorter_than_pulse(self):
        with pytest.raises(ValueError, match="period"):
            Pulse(v0=0, v1=1, delay=0, rise=2, fall=2, width=2, period=5)

    def test_final_value_is_v0(self):
        wave = Pulse(v0=0.25, v1=1, delay=0, rise=1, fall=1, width=1, period=10)
        assert wave.final_value() == 0.25


class TestPWL:
    def test_interpolation(self):
        wave = PWL([(0.0, 0.0), (2.0, 4.0)])
        assert wave.value(1.0) == pytest.approx(2.0)

    def test_clamps_outside_range(self):
        wave = PWL([(1.0, 2.0), (3.0, 6.0)])
        assert wave.value(0.0) == 2.0
        assert wave.value(10.0) == 6.0
        assert wave.final_value() == 6.0

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PWL([(0.0, 0.0), (0.0, 1.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            PWL([])

    def test_points_roundtrip(self):
        pts = [(0.0, 0.0), (1.0, 2.0), (5.0, -1.0)]
        assert PWL(pts).points == pts
