"""Unit tests for the DC operating point against hand-solved circuits."""

import pytest

from repro.circuit.dcop import dc_operating_point
from repro.circuit.netlist import GROUND, Circuit


class TestVoltageDividers:
    def test_equal_divider(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "in", GROUND, 10.0)
        ckt.add_resistor("r1", "in", "mid", 1e3)
        ckt.add_resistor("r2", "mid", GROUND, 1e3)
        v = dc_operating_point(ckt)
        assert v["mid"] == pytest.approx(5.0)
        assert v["in"] == pytest.approx(10.0)
        assert v["0"] == 0.0

    def test_unequal_divider(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "in", GROUND, 9.0)
        ckt.add_resistor("r1", "in", "mid", 2e3)
        ckt.add_resistor("r2", "mid", GROUND, 1e3)
        assert dc_operating_point(ckt)["mid"] == pytest.approx(3.0)


class TestSourceTypes:
    def test_current_source_into_resistor(self):
        ckt = Circuit()
        ckt.add_current_source("i1", GROUND, "a", 2e-3)
        ckt.add_resistor("r1", "a", GROUND, 500.0)
        assert dc_operating_point(ckt)["a"] == pytest.approx(1.0)

    def test_superposition_of_two_sources(self):
        # Two current sources into one resistor add linearly.
        ckt = Circuit()
        ckt.add_current_source("i1", GROUND, "a", 1e-3)
        ckt.add_current_source("i2", GROUND, "a", 2e-3)
        ckt.add_resistor("r1", "a", GROUND, 1e3)
        assert dc_operating_point(ckt)["a"] == pytest.approx(3.0)


class TestReactiveElementsAtDC:
    def test_capacitor_is_open(self):
        # No DC path through the cap: the divider output is unloaded.
        ckt = Circuit()
        ckt.add_voltage_source("v1", "in", GROUND, 4.0)
        ckt.add_resistor("r1", "in", "mid", 1e3)
        ckt.add_resistor("r2", "mid", GROUND, 1e3)
        ckt.add_capacitor("c1", "mid", "float", 1e-12)
        ckt.add_resistor("r3", "float", GROUND, 1e3)
        v = dc_operating_point(ckt)
        assert v["mid"] == pytest.approx(2.0)
        assert v["float"] == pytest.approx(0.0, abs=1e-6)

    def test_inductor_is_short(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "in", GROUND, 3.0)
        ckt.add_inductor("l1", "in", "out", 1e-9)
        ckt.add_resistor("r1", "out", GROUND, 1e3)
        v = dc_operating_point(ckt)
        assert v["out"] == pytest.approx(3.0)

    def test_floating_cap_node_is_regularized(self):
        # A node touching only capacitors would make G singular; GMIN
        # pins it instead of crashing.
        ckt = Circuit()
        ckt.add_voltage_source("v1", "in", GROUND, 1.0)
        ckt.add_capacitor("c1", "in", "island", 1e-12)
        ckt.add_capacitor("c2", "island", GROUND, 1e-12)
        v = dc_operating_point(ckt)
        assert "island" in v  # solvable, value finite
        assert abs(v["island"]) < 10.0

    def test_time_dependent_source_sampled(self):
        from repro.circuit.waveform import Step

        ckt = Circuit()
        ckt.add_voltage_source("v1", "in", GROUND, Step(delay=5.0))
        ckt.add_resistor("r1", "in", GROUND, 1.0)
        assert dc_operating_point(ckt, t=0.0)["in"] == pytest.approx(0.0, abs=1e-9)
        assert dc_operating_point(ckt, t=10.0)["in"] == pytest.approx(1.0)
