"""Transient analysis vs closed-form solutions.

The single-RC charge curve, RL current ramp, and RLC ringing all have
textbook answers; the integrator must reproduce them.
"""

import math

import numpy as np
import pytest

from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient
from repro.circuit.waveform import Step


def rc_circuit(r=1e3, c=1e-12) -> Circuit:
    ckt = Circuit("rc")
    ckt.add_voltage_source("vin", "in", GROUND, Step())
    ckt.add_resistor("r1", "in", "out", r)
    ckt.add_capacitor("c1", "out", GROUND, c)
    return ckt


class TestRCStepResponse:
    def test_matches_analytic_exponential(self):
        r, c = 1e3, 1e-12
        tau = r * c
        result = transient(rc_circuit(r, c), t_stop=5 * tau, num_steps=2000)
        expected = 1.0 - np.exp(-result.times / tau)
        assert np.allclose(result.voltage("out"), expected, atol=2e-4)

    def test_starts_at_zero_settles_at_one(self):
        result = transient(rc_circuit(), t_stop=10e-9, num_steps=500)
        out = result.voltage("out")
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[-1] == pytest.approx(1.0, abs=1e-3)

    def test_backward_euler_converges_too(self):
        r, c = 1e3, 1e-12
        tau = r * c
        result = transient(rc_circuit(r, c), t_stop=5 * tau,
                           num_steps=4000, method="backward-euler")
        expected = 1.0 - np.exp(-result.times / tau)
        assert np.allclose(result.voltage("out"), expected, atol=2e-3)

    def test_trapezoidal_more_accurate_than_be(self):
        r, c = 1e3, 1e-12
        tau = r * c
        errors = {}
        for method in ("trapezoidal", "backward-euler"):
            result = transient(rc_circuit(r, c), t_stop=5 * tau,
                               num_steps=200, method=method)
            expected = 1.0 - np.exp(-result.times / tau)
            errors[method] = np.max(np.abs(result.voltage("out") - expected))
        assert errors["trapezoidal"] < errors["backward-euler"]

    def test_capacitor_initial_condition_honored(self):
        ckt = Circuit()
        ckt.add_voltage_source("vin", "in", GROUND, Step())
        ckt.add_resistor("r1", "in", "out", 1e3)
        ckt.add_capacitor("c1", "out", GROUND, 1e-12, ic=0.5)
        result = transient(ckt, t_stop=1e-9, num_steps=100)
        assert result.voltage("out")[0] == pytest.approx(0.5)


class TestRLCircuit:
    def test_inductor_current_rises_to_v_over_r(self):
        # V step into series RL: i(t) = (V/R)(1 - exp(-tR/L)).
        r, ell = 10.0, 1e-9
        tau = ell / r
        ckt = Circuit()
        ckt.add_voltage_source("vin", "in", GROUND, Step())
        ckt.add_resistor("r1", "in", "mid", r)
        ckt.add_inductor("l1", "mid", GROUND, ell)
        result = transient(ckt, t_stop=8 * tau, num_steps=2000)
        current = result.branch_current("l1")
        assert current[-1] == pytest.approx(1.0 / r, rel=1e-3)
        k = len(result.times) // 8  # roughly t = tau
        expected = (1.0 / r) * (1 - math.exp(-result.times[k] / tau))
        assert current[k] == pytest.approx(expected, rel=5e-3)


class TestRLCRinging:
    def test_underdamped_overshoot(self):
        # Series RLC with Q >> 1 must overshoot the final value.
        r, ell, c = 1.0, 1e-9, 1e-12
        ckt = Circuit()
        ckt.add_voltage_source("vin", "in", GROUND, Step())
        ckt.add_resistor("r1", "in", "a", r)
        ckt.add_inductor("l1", "a", "out", ell)
        ckt.add_capacitor("c1", "out", GROUND, c)
        period = 2 * math.pi * math.sqrt(ell * c)
        # Decay constant is 2L/R = 2 ns ~ 10 periods; run 50 periods so
        # the envelope has shrunk to < 1% for the settling check.
        result = transient(ckt, t_stop=50 * period, num_steps=8000)
        out = result.voltage("out")
        assert out.max() > 1.5  # strong ringing at Q ~ 31
        assert out[-1] == pytest.approx(1.0, abs=0.05)

    def test_oscillation_frequency(self):
        r, ell, c = 1.0, 1e-9, 1e-12
        ckt = Circuit()
        ckt.add_voltage_source("vin", "in", GROUND, Step())
        ckt.add_resistor("r1", "in", "a", r)
        ckt.add_inductor("l1", "a", "out", ell)
        ckt.add_capacitor("c1", "out", GROUND, c)
        period = 2 * math.pi * math.sqrt(ell * c)
        result = transient(ckt, t_stop=6 * period, num_steps=6000)
        out = result.voltage("out") - 1.0
        # Count zero crossings: two per period.
        crossings = int(np.sum(np.abs(np.diff(np.sign(out)))) // 2)
        expected = 2 * 6
        assert abs(crossings - expected) <= 2


class TestAPI:
    def test_result_shapes(self):
        result = transient(rc_circuit(), t_stop=1e-9, num_steps=100)
        assert result.times.shape == (101,)
        assert result.states.shape[1] == 101

    def test_ground_voltage_is_zero(self):
        result = transient(rc_circuit(), t_stop=1e-9, num_steps=10)
        assert not result.voltage("0").any()

    def test_final_voltages_map(self):
        result = transient(rc_circuit(), t_stop=20e-9, num_steps=500)
        finals = result.final_voltages()
        assert finals["out"] == pytest.approx(1.0, abs=1e-4)

    def test_unknown_branch_raises(self):
        from repro.circuit.netlist import CircuitError

        result = transient(rc_circuit(), t_stop=1e-9, num_steps=10)
        with pytest.raises(CircuitError, match="no branch current"):
            result.branch_current("r1")

    @pytest.mark.parametrize("bad_kwargs", [
        {"t_stop": 0.0}, {"t_stop": -1.0},
        {"t_stop": 1e-9, "num_steps": 0},
        {"t_stop": 1e-9, "method": "rk4"},
    ])
    def test_rejects_bad_arguments(self, bad_kwargs):
        with pytest.raises(ValueError):
            transient(rc_circuit(), **bad_kwargs)

    def test_rejects_bad_x0_shape(self):
        with pytest.raises(ValueError, match="shape"):
            transient(rc_circuit(), t_stop=1e-9, num_steps=10,
                      x0=np.zeros(99))
