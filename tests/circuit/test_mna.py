"""Unit tests for MNA assembly — stamps checked against hand calculations."""

import numpy as np
import pytest

from repro.circuit.mna import build_mna
from repro.circuit.netlist import GROUND, Circuit, CircuitError
from repro.circuit.waveform import Step


class TestResistorStamps:
    def test_single_resistor_to_ground(self):
        ckt = Circuit()
        ckt.add_resistor("r1", "a", GROUND, 2.0)
        ckt.add_current_source("i1", GROUND, "a", 1.0)
        mna = build_mna(ckt)
        row = mna.node_index["a"]
        assert mna.G[row, row] == pytest.approx(0.5)

    def test_resistor_between_nodes(self):
        ckt = Circuit()
        ckt.add_resistor("r1", "a", "b", 4.0)
        ckt.add_resistor("r2", "b", GROUND, 1.0)
        mna = build_mna(ckt)
        a, b = mna.node_index["a"], mna.node_index["b"]
        assert mna.G[a, a] == pytest.approx(0.25)
        assert mna.G[a, b] == pytest.approx(-0.25)
        assert mna.G[b, b] == pytest.approx(1.25)
        assert np.allclose(mna.G, mna.G.T)

    def test_parallel_resistors_sum(self):
        ckt = Circuit()
        ckt.add_resistor("r1", "a", GROUND, 2.0)
        ckt.add_resistor("r2", "a", GROUND, 2.0)
        mna = build_mna(ckt)
        row = mna.node_index["a"]
        assert mna.G[row, row] == pytest.approx(1.0)


class TestCapacitorStamps:
    def test_capacitor_in_C_matrix_only(self):
        ckt = Circuit()
        ckt.add_capacitor("c1", "a", GROUND, 3e-12)
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        mna = build_mna(ckt)
        row = mna.node_index["a"]
        assert mna.C[row, row] == pytest.approx(3e-12)
        assert mna.G[row, row] == pytest.approx(1.0)


class TestBranchStamps:
    def test_voltage_source_branch(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "a", GROUND, 5.0)
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        mna = build_mna(ckt)
        a = mna.node_index["a"]
        k = mna.branch_index["v1"]
        assert mna.G[a, k] == 1.0
        assert mna.G[k, a] == 1.0
        assert mna.rhs(0.0)[k] == 5.0

    def test_inductor_branch(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "a", GROUND, 1.0)
        ckt.add_inductor("l1", "a", "b", 2e-9)
        ckt.add_resistor("r1", "b", GROUND, 1.0)
        mna = build_mna(ckt)
        k = mna.branch_index["l1"]
        assert mna.C[k, k] == pytest.approx(-2e-9)
        assert mna.G[k, mna.node_index["a"]] == 1.0
        assert mna.G[k, mna.node_index["b"]] == -1.0

    def test_size_counts_nodes_plus_branches(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "a", GROUND, 1.0)
        ckt.add_inductor("l1", "a", "b", 1e-9)
        ckt.add_resistor("r1", "b", GROUND, 1.0)
        mna = build_mna(ckt)
        assert mna.num_nodes == 2
        assert mna.size == 4  # 2 nodes + 1 inductor + 1 source


class TestRhs:
    def test_step_source_sampled_in_time(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "a", GROUND, Step(delay=1.0))
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        mna = build_mna(ckt)
        k = mna.branch_index["v1"]
        assert mna.rhs(0.5)[k] == 0.0
        assert mna.rhs(2.0)[k] == 1.0

    def test_current_source_signs(self):
        # Current flows pos -> (through source) -> neg: injected at neg.
        ckt = Circuit()
        ckt.add_current_source("i1", GROUND, "a", 2.0)
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        mna = build_mna(ckt)
        assert mna.rhs(0.0)[mna.node_index["a"]] == 2.0


class TestInitialState:
    def test_capacitor_ic_sets_node_voltage(self):
        ckt = Circuit()
        ckt.add_capacitor("c1", "a", GROUND, 1e-12, ic=0.7)
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        mna = build_mna(ckt)
        assert mna.initial_state()[mna.node_index["a"]] == pytest.approx(0.7)

    def test_inductor_ic_sets_branch_current(self):
        ckt = Circuit()
        ckt.add_inductor("l1", "a", GROUND, 1e-9, ic=0.1)
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        mna = build_mna(ckt)
        assert mna.initial_state()[mna.branch_index["l1"]] == pytest.approx(0.1)

    def test_default_state_is_zero(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "a", GROUND, 1.0)
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        assert not build_mna(ckt).initial_state().any()


class TestErrors:
    def test_voltage_row_of_ground_raises(self):
        ckt = Circuit()
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        mna = build_mna(ckt)
        with pytest.raises(CircuitError, match="ground"):
            mna.voltage_row(GROUND)

    def test_voltage_row_of_unknown_node_raises(self):
        ckt = Circuit()
        ckt.add_resistor("r1", "a", GROUND, 1.0)
        mna = build_mna(ckt)
        with pytest.raises(CircuitError, match="unknown node"):
            mna.voltage_row("zz")
