"""Unit tests for waveform measurements."""

import numpy as np
import pytest

from repro.circuit.measure import (
    delay_to_fraction,
    rise_time,
    threshold_crossing,
)


class TestThresholdCrossing:
    def test_exact_interpolation_on_ramp(self):
        times = np.array([0.0, 1.0, 2.0])
        values = np.array([0.0, 1.0, 2.0])
        assert threshold_crossing(times, values, 0.5) == pytest.approx(0.5)
        assert threshold_crossing(times, values, 1.5) == pytest.approx(1.5)

    def test_sample_exactly_at_threshold(self):
        times = np.array([0.0, 1.0])
        values = np.array([0.0, 1.0])
        assert threshold_crossing(times, values, 1.0) == pytest.approx(1.0)

    def test_never_crossing_returns_none(self):
        times = np.linspace(0, 1, 5)
        values = np.zeros(5)
        assert threshold_crossing(times, values, 0.5) is None

    def test_starts_above_returns_first_time(self):
        times = np.array([2.0, 3.0])
        values = np.array([0.9, 1.0])
        assert threshold_crossing(times, values, 0.5) == 2.0

    def test_falling_direction(self):
        times = np.array([0.0, 1.0, 2.0])
        values = np.array([2.0, 1.0, 0.0])
        assert threshold_crossing(times, values, 0.5, rising=False) == \
            pytest.approx(1.5)

    def test_first_crossing_wins(self):
        times = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        values = np.array([0.0, 1.0, 0.0, 1.0, 0.0])  # crosses twice
        assert threshold_crossing(times, values, 0.5) == pytest.approx(0.5)

    def test_flat_segment_at_threshold(self):
        times = np.array([0.0, 1.0, 2.0])
        values = np.array([0.0, 0.5, 0.5])
        assert threshold_crossing(times, values, 0.5) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="same shape"):
            threshold_crossing(np.zeros(3), np.zeros(4), 0.5)

    def test_empty_input(self):
        assert threshold_crossing(np.array([]), np.array([]), 0.5) is None


class TestDelayToFraction:
    def test_default_is_50_percent(self):
        times = np.linspace(0, 1, 101)
        values = times.copy()  # unit ramp to 1.0
        assert delay_to_fraction(times, values, final_value=1.0) == \
            pytest.approx(0.5)

    def test_scales_with_final_value(self):
        times = np.linspace(0, 1, 101)
        values = 2.0 * times
        assert delay_to_fraction(times, values, final_value=2.0,
                                 fraction=0.25) == pytest.approx(0.25)

    def test_negative_final_value_measures_falling(self):
        times = np.linspace(0, 1, 101)
        values = -times
        assert delay_to_fraction(times, values, final_value=-1.0) == \
            pytest.approx(0.5)

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_fraction(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            delay_to_fraction(np.zeros(2), np.zeros(2), 1.0, fraction)

    def test_rejects_zero_final(self):
        with pytest.raises(ValueError, match="final_value"):
            delay_to_fraction(np.zeros(2), np.zeros(2), 0.0)


class TestRiseTime:
    def test_linear_ramp(self):
        times = np.linspace(0, 1, 1001)
        values = times.copy()
        assert rise_time(times, values, final_value=1.0) == pytest.approx(0.8)

    def test_custom_fractions(self):
        times = np.linspace(0, 1, 1001)
        values = times.copy()
        assert rise_time(times, values, 1.0, low=0.2, high=0.7) == \
            pytest.approx(0.5)

    def test_incomplete_waveform_returns_none(self):
        times = np.linspace(0, 1, 11)
        values = np.full(11, 0.5)  # never reaches 90%
        assert rise_time(times, values, final_value=1.0) is None

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            rise_time(np.zeros(2), np.zeros(2), 1.0, low=0.9, high=0.1)
