"""Unit tests for the iterative timing-driven routing flow."""

import pytest

from repro.timing.design import random_design
from repro.timing.flow import timing_driven_flow


class TestFlow:
    @pytest.fixture(scope="class")
    def flows(self, tech):
        return [timing_driven_flow(
                    random_design(num_stages=6, stage_width=8, seed=seed,
                                  max_fanout=6),
                    tech, rounds=3)
                for seed in range(4)]

    def test_baseline_report_always_present(self, flows):
        for flow in flows:
            assert len(flow.reports) >= 1
            assert flow.initial_arrival > 0

    def test_arrivals_monotone_nonincreasing(self, flows):
        """Rounds are accept-if-better: the critical arrival never rises."""
        for flow in flows:
            arrivals = [report.max_arrival for report in flow.reports]
            for earlier, later in zip(arrivals, arrivals[1:]):
                assert later <= earlier * (1 + 1e-12)

    def test_improvement_is_consistent(self, flows):
        for flow in flows:
            assert flow.improvement == pytest.approx(
                1.0 - flow.final_arrival / flow.initial_arrival)
            assert flow.improvement >= -1e-12

    def test_rerouted_rounds_match_reports(self, flows):
        for flow in flows:
            assert len(flow.rerouted) == len(flow.reports) - 1
            for round_nets in flow.rerouted:
                assert round_nets  # committed rounds changed something

    def test_some_design_improves(self, flows):
        """Across seeds, at least one design's critical path gets faster
        through non-tree re-routing."""
        assert any(flow.improvement > 0 for flow in flows)

    def test_summary_text(self, flows):
        text = flows[0].summary()
        assert "critical path" in text
        assert "ns" in text

    def test_rounds_validation(self, tech):
        design = random_design(num_stages=3, stage_width=2, seed=0)
        with pytest.raises(ValueError, match="rounds"):
            timing_driven_flow(design, tech, rounds=0)
