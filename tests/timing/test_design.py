"""Unit tests for placed designs and the random generator."""

import pytest

from repro.geometry.point import Point
from repro.timing.design import (
    Design,
    DesignError,
    DesignNet,
    Instance,
    random_design,
)
from repro.timing.gates import GateLibrary


@pytest.fixture
def lib():
    return GateLibrary.cmos08()


@pytest.fixture
def tiny(lib) -> Design:
    design = Design("tiny")
    design.add_instance(Instance("ff1", lib["DFF"], Point(0, 0)))
    design.add_instance(Instance("inv1", lib["INV"], Point(1000, 0)))
    design.add_instance(Instance("inv2", lib["INV"], Point(2000, 500)))
    design.add_net(DesignNet("n1", driver="ff1", loads=("inv1",)))
    design.add_net(DesignNet("n2", driver="inv1", loads=("inv2",)))
    design.primary_inputs.add("ff1")
    return design


class TestDesignStructure:
    def test_validate_passes(self, tiny):
        tiny.validate()

    def test_topological_order(self, tiny):
        order = tiny.topological_order()
        assert order.index("ff1") < order.index("inv1") < order.index("inv2")

    def test_fanin_fanout(self, tiny):
        assert [n.name for n in tiny.fanout_nets("ff1")] == ["n1"]
        assert [n.name for n in tiny.fanin_nets("inv2")] == ["n2"]
        assert tiny.fanin_nets("ff1") == []

    def test_geometry_of(self, tiny):
        net = tiny.geometry_of("n2")
        assert net.source == Point(1000, 0)
        assert net.sinks == (Point(2000, 500),)
        assert net.name == "n2"

    def test_duplicate_instance_rejected(self, tiny, lib):
        with pytest.raises(DesignError, match="duplicate instance"):
            tiny.add_instance(Instance("ff1", lib["DFF"], Point(9, 9)))

    def test_net_with_unknown_instance_rejected(self, tiny):
        with pytest.raises(DesignError, match="unknown instance"):
            tiny.add_net(DesignNet("bad", driver="ff1", loads=("ghost",)))

    def test_self_driving_net_rejected(self):
        with pytest.raises(ValueError, match="drives itself"):
            DesignNet("loop", driver="a", loads=("a",))

    def test_cycle_detected(self, tiny):
        tiny.add_net(DesignNet("back", driver="inv2", loads=("inv1",)))
        with pytest.raises(DesignError, match="cycle"):
            tiny.topological_order()

    def test_visit_order_matches_list_reference(self):
        # The deque-based walk must visit in exactly the order the original
        # list.pop(0) implementation produced (FIFO with sorted seeding).
        design = random_design(num_stages=4, stage_width=3, seed=5)

        indegree = {name: 0 for name in design.instances}
        successors: dict[str, list[str]] = {
            name: [] for name in design.instances}
        for net in design.nets.values():
            for load in net.loads:
                indegree[load] += 1
                successors[net.driver].append(load)
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        reference: list[str] = []
        while ready:
            node = ready.pop(0)
            reference.append(node)
            for succ in sorted(successors[node]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)

        assert design.topological_order() == reference

    def test_undeclared_start_point_rejected(self, tiny, lib):
        tiny.add_instance(Instance("orphan", lib["INV"], Point(5, 5)))
        tiny.add_net(DesignNet("n3", driver="orphan", loads=("inv2",)))
        with pytest.raises(DesignError, match="not.*declared primary"):
            tiny.validate()


class TestRandomDesign:
    def test_structure(self):
        design = random_design(num_stages=4, stage_width=3, seed=0)
        assert len(design.instances) == 12
        design.validate()

    def test_stage_zero_is_dff_inputs(self):
        design = random_design(num_stages=3, stage_width=2, seed=1)
        for name in design.primary_inputs:
            assert design.instances[name].gate.name == "DFF"

    def test_deterministic(self):
        a = random_design(num_stages=4, stage_width=3, seed=5)
        b = random_design(num_stages=4, stage_width=3, seed=5)
        assert set(a.instances) == set(b.instances)
        assert {n.name: (n.driver, n.loads) for n in a.nets.values()} == \
            {n.name: (n.driver, n.loads) for n in b.nets.values()}

    def test_placement_in_region(self):
        region = 4000.0
        design = random_design(num_stages=3, stage_width=3, seed=2,
                               region=region)
        for instance in design.instances.values():
            assert 0 <= instance.position.x <= region
            assert 0 <= instance.position.y <= region

    def test_stages_ordered_left_to_right(self):
        design = random_design(num_stages=4, stage_width=2, seed=3)
        mean_x = {}
        for name, inst in design.instances.items():
            stage = int(name.split("_")[0][1:])
            mean_x.setdefault(stage, []).append(inst.position.x)
        means = [sum(v) / len(v) for _, v in sorted(mean_x.items())]
        assert means == sorted(means)

    def test_validation_of_arguments(self):
        with pytest.raises(ValueError, match="two stages"):
            random_design(num_stages=1, stage_width=3)
        with pytest.raises(ValueError, match="stage_width"):
            random_design(num_stages=3, stage_width=0)
