"""Unit tests for the gate library."""

import pytest

from repro.timing.gates import Gate, GateLibrary


class TestGate:
    def test_valid_gate(self):
        gate = Gate("INV", 120.0, 8e-15, 30e-12)
        assert gate.drive_resistance == 120.0

    @pytest.mark.parametrize("kwargs,msg", [
        ({"drive_resistance": 0.0}, "drive resistance"),
        ({"input_capacitance": -1e-15}, "input capacitance"),
        ({"intrinsic_delay": -1e-12}, "intrinsic delay"),
    ])
    def test_validation(self, kwargs, msg):
        base = {"name": "X", "drive_resistance": 100.0,
                "input_capacitance": 1e-15, "intrinsic_delay": 1e-12}
        base.update(kwargs)
        with pytest.raises(ValueError, match=msg):
            Gate(**base)

    def test_zero_intrinsic_delay_allowed(self):
        assert Gate("WIRE", 1.0, 1e-15, 0.0).intrinsic_delay == 0.0


class TestGateLibrary:
    def test_default_library_contents(self):
        lib = GateLibrary.cmos08()
        for name in ("INV", "BUF", "NAND2", "NOR2", "XOR2", "DFF"):
            assert name in lib

    def test_lookup(self):
        lib = GateLibrary.cmos08()
        assert lib["INV"].name == "INV"
        with pytest.raises(KeyError, match="no gate named"):
            lib["AOI22"]

    def test_combinational_excludes_dff(self):
        lib = GateLibrary.cmos08()
        names = {gate.name for gate in lib.combinational()}
        assert "DFF" not in names
        assert "INV" in names

    def test_duplicate_names_rejected(self):
        gate = Gate("INV", 1.0, 1e-15, 0.0)
        with pytest.raises(ValueError, match="duplicate"):
            GateLibrary([gate, gate])

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            GateLibrary([])

    def test_names_sorted(self):
        names = GateLibrary.cmos08().names()
        assert names == sorted(names)

    def test_drive_resistances_near_table1_regime(self):
        """The library is meant to live in Table 1's 100-ohm regime."""
        for gate in GateLibrary.cmos08().combinational():
            assert 50.0 <= gate.drive_resistance <= 500.0
