"""Unit tests for static timing analysis."""

import pytest

from repro.geometry.point import Point
from repro.graph.mst import prim_mst
from repro.timing.design import Design, DesignNet, Instance, random_design
from repro.timing.gates import GateLibrary
from repro.timing.sta import analyze, net_technology, sink_criticalities


@pytest.fixture
def lib():
    return GateLibrary.cmos08()


@pytest.fixture
def chain(lib) -> Design:
    """ff -> inv -> inv, 2 mm apart each: hand-checkable arithmetic."""
    design = Design("chain")
    design.add_instance(Instance("ff", lib["DFF"], Point(0, 0)))
    design.add_instance(Instance("a", lib["INV"], Point(2000, 0)))
    design.add_instance(Instance("b", lib["INV"], Point(4000, 0)))
    design.add_net(DesignNet("n1", driver="ff", loads=("a",)))
    design.add_net(DesignNet("n2", driver="a", loads=("b",)))
    design.primary_inputs.add("ff")
    return design


class TestArrivalPropagation:
    def test_chain_arithmetic(self, chain, tech, lib):
        report = analyze(chain, tech, router=prim_mst)
        # Start point: its own intrinsic delay.
        assert report.arrivals["ff"] == pytest.approx(
            lib["DFF"].intrinsic_delay)
        # Each hop adds driver intrinsic + routed net delay.
        hop1 = report.net_sink_delays["n1"]["a"]
        expected_a = (lib["DFF"].intrinsic_delay
                      + lib["DFF"].intrinsic_delay + hop1)
        assert report.arrivals["a"] == pytest.approx(expected_a)
        assert report.max_arrival == report.arrivals["b"]

    def test_net_delays_positive_and_scale_with_length(self, chain, tech):
        report = analyze(chain, tech, router=prim_mst)
        assert report.net_sink_delays["n1"]["a"] > 0
        # n1 and n2 are the same length/driver class; sanity order only.
        assert report.net_sink_delays["n2"]["b"] > 0

    def test_worst_slack(self, chain, tech):
        report = analyze(chain, tech, router=prim_mst, clock_period=5e-9)
        assert report.worst_slack == pytest.approx(
            5e-9 - report.max_arrival)

    def test_critical_path_of_chain(self, chain, tech):
        report = analyze(chain, tech, router=prim_mst)
        assert report.critical_path(chain) == ["ff", "a", "b"]

    def test_tns_counts_only_endpoints(self, chain, tech):
        report = analyze(chain, tech, router=prim_mst,
                         clock_period=1e-15)  # everything fails
        tns = report.total_negative_slack(chain)
        # Exactly one endpoint ("b"); TNS is its (negative) slack.
        assert tns == pytest.approx(1e-15 - report.arrivals["b"])

    def test_prerouted_nets_reused(self, chain, tech):
        base = analyze(chain, tech, router=prim_mst)
        reused = analyze(chain, tech, router=prim_mst,
                         routings=base.routings)
        assert reused.max_arrival == pytest.approx(base.max_arrival)


class TestNetTechnology:
    def test_driver_and_load_substitution(self, chain, tech, lib):
        local = net_technology(tech, chain, chain.nets["n1"])
        assert local.driver_resistance == lib["DFF"].drive_resistance
        assert local.sink_capacitance == lib["INV"].input_capacitance
        # Wire parameters untouched.
        assert local.wire_resistance == tech.wire_resistance

    def test_worst_load_wins(self, lib, tech):
        design = Design("fan")
        design.add_instance(Instance("ff", lib["DFF"], Point(0, 0)))
        design.add_instance(Instance("x", lib["INV"], Point(1000, 0)))
        design.add_instance(Instance("y", lib["XOR2"], Point(1000, 800)))
        design.add_net(DesignNet("n", driver="ff", loads=("x", "y")))
        design.primary_inputs.add("ff")
        local = net_technology(tech, design, design.nets["n"])
        assert local.sink_capacitance == lib["XOR2"].input_capacitance


class TestCriticalities:
    def test_worst_pin_gets_weight_one(self, tech):
        design = random_design(num_stages=4, stage_width=4, seed=0,
                               max_fanout=4)
        report = analyze(design, tech, router=prim_mst)
        path = report.critical_path(design)
        # Find a net on the critical path with >= 2 loads if one exists.
        for net_name, net in design.nets.items():
            weights = sink_criticalities(design, report, net_name)
            assert max(weights.values()) == pytest.approx(1.0)
            assert all(0.0 <= w <= 1.0 for w in weights.values())

    def test_criticality_ranks_by_downstream_arrival(self, tech, lib):
        design = Design("rank")
        design.add_instance(Instance("ff", lib["DFF"], Point(0, 0)))
        design.add_instance(Instance("near", lib["INV"], Point(500, 0)))
        design.add_instance(Instance("far", lib["INV"], Point(9000, 0)))
        design.add_instance(Instance("tail", lib["INV"], Point(9500, 500)))
        design.add_net(DesignNet("n", driver="ff", loads=("near", "far")))
        design.add_net(DesignNet("t", driver="far", loads=("tail",)))
        design.primary_inputs.add("ff")
        report = analyze(design, tech, router=prim_mst)
        weights = sink_criticalities(design, report, "n")
        loads = design.nets["n"].loads
        far_index = loads.index("far") + 1
        near_index = loads.index("near") + 1
        assert weights[far_index] == pytest.approx(1.0)
        assert weights[near_index] < weights[far_index]
