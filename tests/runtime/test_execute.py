"""Policy orchestration: resume semantics, provenance capture, wiring."""

from __future__ import annotations

import math
from functools import partial
from types import SimpleNamespace

import pytest

from repro.runtime import (
    NonFiniteDelay,
    PoolTask,
    ProvenanceEvent,
    RuntimePolicy,
    TrialFailure,
    TrialResult,
    describe_runner,
    open_journal,
    record,
    run_trial,
    run_trials,
    sweep_tasks,
)
from repro.runtime.provenance import KIND_RETRY


class CountingTrial:
    """A trial fn that remembers which keys it actually executed."""

    def __init__(self, fail_keys=()):
        self.executed = []
        self.fail_keys = set(fail_keys)

    def __call__(self, size, trial):
        self.executed.append((size, trial))
        if (size, trial) in self.fail_keys:
            raise RuntimeError(f"scripted failure for {(size, trial)}")
        return TrialResult(algorithm="test", model="none",
                           delay=float(size) + trial, cost=1.0,
                           base_delay=1.0, base_cost=1.0)


def tasks_for(fn, keys):
    return [PoolTask(key=key, fn=fn, args=key) for key in keys]


def fake_routing(delay=2.0, base_delay=4.0):
    """The minimal RoutingResult surface TrialResult.from_routing reads."""
    return SimpleNamespace(
        algorithm="ldrg", model="spice", delay=delay, cost=10.0,
        base_delay=base_delay, base_cost=20.0,
        history=[SimpleNamespace(delay=3.0, cost=15.0)],
        graph=SimpleNamespace(net=SimpleNamespace(name="fake")))


class TestRuntimePolicy:
    def test_defaults_are_serial_tolerant(self):
        policy = RuntimePolicy.tolerant()
        assert policy.workers == 0
        assert not policy.strict

    @pytest.mark.parametrize("bad", [
        {"workers": -1},
        {"trial_timeout": 0.0},
        {"resume": True},                      # resume without a journal
        {"strict": True, "workers": 2},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RuntimePolicy(**bad)


class TestRunTrials:
    KEYS = [(5, 0), (5, 1), (10, 0)]

    def test_plain_run_executes_everything(self, tmp_path):
        fn = CountingTrial()
        policy = RuntimePolicy(run_root=tmp_path)
        journal = open_journal(policy, {"kind": "t"})
        outcomes = run_trials(tasks_for(fn, self.KEYS), policy, journal)
        assert sorted(fn.executed) == sorted(self.KEYS)
        assert set(outcomes) == set(self.KEYS)
        assert journal.completed_keys() == set(self.KEYS)

    def test_resume_skips_journaled_trials(self, tmp_path):
        policy = RuntimePolicy(run_root=tmp_path)
        journal = open_journal(policy, {"kind": "t"})
        first = CountingTrial()
        before = run_trials(tasks_for(first, self.KEYS[:2]), policy, journal)

        resumed_policy = RuntimePolicy(run_root=tmp_path, resume=True)
        second = CountingTrial()
        after = run_trials(tasks_for(second, self.KEYS), resumed_policy,
                           open_journal(resumed_policy, {"kind": "t"}))
        assert second.executed == [(10, 0)]  # only the missing trial ran
        assert after[(5, 0)] == before[(5, 0)]
        assert after[(5, 1)] == before[(5, 1)]

    def test_resume_keeps_failures_by_default(self, tmp_path):
        policy = RuntimePolicy(run_root=tmp_path)
        journal = open_journal(policy, {"kind": "t"})
        run_trials(tasks_for(CountingTrial(fail_keys=[(5, 0)]),
                             self.KEYS[:1]), policy, journal)

        resumed = RuntimePolicy(run_root=tmp_path, resume=True)
        fn = CountingTrial()
        outcomes = run_trials(tasks_for(fn, self.KEYS[:1]), resumed,
                              open_journal(resumed, {"kind": "t"}))
        assert fn.executed == []
        assert isinstance(outcomes[(5, 0)], TrialFailure)

    def test_retry_failures_reruns_only_failures(self, tmp_path):
        policy = RuntimePolicy(run_root=tmp_path)
        journal = open_journal(policy, {"kind": "t"})
        run_trials(tasks_for(CountingTrial(fail_keys=[(5, 0)]),
                             self.KEYS[:2]), policy, journal)

        resumed = RuntimePolicy(run_root=tmp_path, resume=True,
                                retry_failures=True)
        fn = CountingTrial()  # healthy this time
        outcomes = run_trials(tasks_for(fn, self.KEYS[:2]), resumed,
                              open_journal(resumed, {"kind": "t"}))
        assert fn.executed == [(5, 0)]
        assert isinstance(outcomes[(5, 0)], TrialResult)
        assert isinstance(outcomes[(5, 1)], TrialResult)

    def test_no_journal_runs_everything(self):
        fn = CountingTrial()
        run_trials(tasks_for(fn, self.KEYS), RuntimePolicy.tolerant())
        assert sorted(fn.executed) == sorted(self.KEYS)


class TestRunTrial:
    def test_projects_routing_result(self):
        result = run_trial(lambda net: fake_routing(), None)
        assert isinstance(result, TrialResult)
        assert result.delay_ratio == pytest.approx(0.5)
        assert result.history == ((3.0, 15.0),)
        assert result.elapsed >= 0.0

    def test_collects_provenance(self):
        def run_one(net):
            record(ProvenanceEvent(kind=KIND_RETRY, source="x", detail="d"))
            return fake_routing()

        result = run_trial(run_one, None)
        assert [e.kind for e in result.provenance] == [KIND_RETRY]

    def test_non_finite_delay_refused(self):
        with pytest.raises(NonFiniteDelay, match="delay is nan"):
            run_trial(lambda net: fake_routing(delay=math.nan), None)


class TestSweepTasks:
    def test_grid_keys(self):
        nets = {5: ["a", "b"], 10: ["c"]}
        tasks = sweep_tasks(nets, lambda net: None)
        assert [t.key for t in tasks] == [(5, 0), (5, 1), (10, 0)]
        assert tasks[0].args[1] == "a"
        assert tasks[2].args[1] == "c"


class TestDescribeRunner:
    def test_unwraps_partial(self):
        def runner(config, net):
            return None

        described = describe_runner(partial(runner, "cfg"))
        assert described.endswith(":TestDescribeRunner.test_unwraps_partial."
                                  "<locals>.runner")

    def test_module_function(self):
        assert describe_runner(run_trial) == "repro.runtime.execute:run_trial"
