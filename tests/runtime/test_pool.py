"""Fault containment in the trial pool: exceptions, crashes, hangs.

The worker functions live at module level so they pickle across the
process boundary; the hostile ones (``os._exit``, alarm-proof sleeps)
exist precisely to prove a sweep survives them.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.runtime import PoolTask, TrialFailure, TrialResult, TrialTimeout
from repro.runtime.pool import run_tasks, trial_deadline
from repro.runtime.trial import FAILURE_CRASH, FAILURE_EXCEPTION, FAILURE_TIMEOUT


def payload(size, trial):
    """A distinguishable, picklable trial result for (size, trial)."""
    return TrialResult(algorithm="test", model="none",
                       delay=float(size) + trial / 100.0, cost=1.0,
                       base_delay=1.0, base_cost=1.0)


def ok_trial(size, trial):
    return payload(size, trial)


def boom_trial():
    raise ValueError("scripted trial bug")


def crash_trial():
    os._exit(13)  # simulates a segfault/OOM-kill: no exception, no goodbye


def hang_trial():
    time.sleep(60.0)  # interruptible by the in-worker SIGALRM


def stubborn_hang_trial():
    # Block SIGALRM so the in-worker deadline can't fire; only the
    # parent-side hard kill can end this one.
    signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
    time.sleep(60.0)


def unpicklable_payload_trial():
    # The trial itself succeeds; only its return value can't cross the
    # pipe (closures don't pickle).
    return lambda: 1


def ok_tasks(n, size=5):
    return [PoolTask(key=(size, t), fn=ok_trial, args=(size, t))
            for t in range(n)]


class TestTrialDeadline:
    def test_none_is_noop(self):
        with trial_deadline(None):
            pass

    def test_raises_after_budget(self):
        start = time.perf_counter()
        with pytest.raises(TrialTimeout):
            with trial_deadline(0.2):
                time.sleep(5.0)
        assert time.perf_counter() - start < 2.0

    def test_disarms_on_exit(self):
        with trial_deadline(0.2):
            pass
        time.sleep(0.3)  # an undisarmed alarm would fire here


class TestSerial:
    def test_results_keyed_by_trial(self):
        outcomes = run_tasks(ok_tasks(3))
        assert set(outcomes) == {(5, 0), (5, 1), (5, 2)}
        assert outcomes[(5, 2)] == payload(5, 2)

    def test_exception_becomes_structured_failure(self):
        tasks = [PoolTask(key=(5, 0), fn=boom_trial),
                 PoolTask(key=(5, 1), fn=ok_trial, args=(5, 1))]
        outcomes = run_tasks(tasks)
        failure = outcomes[(5, 0)]
        assert isinstance(failure, TrialFailure)
        assert failure.kind == FAILURE_EXCEPTION
        assert failure.error_type == "ValueError"
        assert "scripted trial bug" in failure.message
        assert "ValueError" in failure.traceback
        assert outcomes[(5, 1)] == payload(5, 1)  # sweep continued

    def test_strict_reraises_first_error(self):
        tasks = [PoolTask(key=(5, 0), fn=boom_trial)]
        with pytest.raises(ValueError, match="scripted trial bug"):
            run_tasks(tasks, strict=True)

    def test_timeout_contained(self):
        tasks = [PoolTask(key=(5, 0), fn=hang_trial),
                 PoolTask(key=(5, 1), fn=ok_trial, args=(5, 1))]
        outcomes = run_tasks(tasks, timeout=0.3)
        failure = outcomes[(5, 0)]
        assert isinstance(failure, TrialFailure)
        assert failure.kind == FAILURE_TIMEOUT
        assert outcomes[(5, 1)] == payload(5, 1)

    def test_on_outcome_fires_in_order(self):
        seen = []
        run_tasks(ok_tasks(3), on_outcome=lambda k, o: seen.append(k))
        assert seen == [(5, 0), (5, 1), (5, 2)]

    def test_duplicate_keys_rejected(self):
        tasks = [PoolTask(key=(5, 0), fn=ok_trial, args=(5, 0))] * 2
        with pytest.raises(ValueError, match="unique"):
            run_tasks(tasks)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            run_tasks([], workers=-1)
        with pytest.raises(ValueError, match="serial-only"):
            run_tasks([], workers=2, strict=True)


class TestParallel:
    def test_matches_serial_for_any_worker_count(self):
        tasks = ok_tasks(6)
        serial = run_tasks(tasks)
        for workers in (1, 3):
            assert run_tasks(tasks, workers=workers) == serial

    def test_worker_exception_contained(self):
        tasks = [PoolTask(key=(5, 0), fn=boom_trial),
                 PoolTask(key=(5, 1), fn=ok_trial, args=(5, 1))]
        outcomes = run_tasks(tasks, workers=1)
        assert isinstance(outcomes[(5, 0)], TrialFailure)
        assert outcomes[(5, 0)].error_type == "ValueError"
        assert outcomes[(5, 1)] == payload(5, 1)

    def test_worker_crash_recorded_and_pool_recovers(self):
        tasks = [PoolTask(key=(5, 0), fn=ok_trial, args=(5, 0)),
                 PoolTask(key=(5, 1), fn=crash_trial),
                 PoolTask(key=(5, 2), fn=ok_trial, args=(5, 2))]
        outcomes = run_tasks(tasks, workers=1)
        crash = outcomes[(5, 1)]
        assert isinstance(crash, TrialFailure)
        assert crash.kind == FAILURE_CRASH
        assert "exit code 13" in crash.message
        # The replacement worker finished the rest of the sweep.
        assert outcomes[(5, 0)] == payload(5, 0)
        assert outcomes[(5, 2)] == payload(5, 2)

    def test_hung_worker_times_out_via_alarm(self):
        tasks = [PoolTask(key=(5, 0), fn=hang_trial),
                 PoolTask(key=(5, 1), fn=ok_trial, args=(5, 1))]
        outcomes = run_tasks(tasks, workers=2, timeout=0.3)
        failure = outcomes[(5, 0)]
        assert isinstance(failure, TrialFailure)
        assert failure.kind == FAILURE_TIMEOUT
        assert outcomes[(5, 1)] == payload(5, 1)

    def test_alarm_proof_hang_is_hard_killed(self):
        # Even a worker that blocks SIGALRM cannot stall the sweep: the
        # parent kills it after the grace period and replaces it.
        tasks = [PoolTask(key=(5, 0), fn=stubborn_hang_trial),
                 PoolTask(key=(5, 1), fn=ok_trial, args=(5, 1))]
        outcomes = run_tasks(tasks, workers=1, timeout=0.2)
        failure = outcomes[(5, 0)]
        assert isinstance(failure, TrialFailure)
        assert failure.kind == FAILURE_TIMEOUT
        assert "hard-killed" in failure.message
        assert outcomes[(5, 1)] == payload(5, 1)

    def test_unpicklable_task_becomes_failure(self):
        tasks = [PoolTask(key=(5, 0), fn=lambda: None),  # lambdas don't pickle
                 PoolTask(key=(5, 1), fn=ok_trial, args=(5, 1))]
        outcomes = run_tasks(tasks, workers=1)
        assert isinstance(outcomes[(5, 0)], TrialFailure)
        assert outcomes[(5, 1)] == payload(5, 1)

    def test_unpicklable_payload_reports_original_error(self, capfd):
        # The worker-side send ladder: the structured failure must carry
        # the original pickling error, and the worker must also surface
        # it on stderr before falling back.
        tasks = [PoolTask(key=(5, 0), fn=unpicklable_payload_trial),
                 PoolTask(key=(5, 1), fn=ok_trial, args=(5, 1))]
        outcomes = run_tasks(tasks, workers=1)
        failure = outcomes[(5, 0)]
        assert isinstance(failure, TrialFailure)
        assert failure.kind == FAILURE_EXCEPTION
        assert failure.error_type == "PicklingError"
        assert "could not be pickled" in failure.message
        assert "Can't pickle" in failure.message  # the original detail
        assert "could not send outcome" in capfd.readouterr().err
        # The worker survived and finished the rest of the sweep.
        assert outcomes[(5, 1)] == payload(5, 1)

    def test_more_workers_than_tasks(self):
        outcomes = run_tasks(ok_tasks(2), workers=8)
        assert len(outcomes) == 2
