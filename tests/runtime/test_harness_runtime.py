"""End-to-end robustness: chaos sweeps, parallel/resume determinism.

Includes the headline acceptance test: SIGKILL a journaled table run
mid-sweep, resume it, and require byte-identical output to a run that
was never interrupted.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from functools import partial
from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentConfig, run_size_sweep
from repro.experiments.reporting import format_rows
from repro.experiments.tables import run_ert_trial, run_ldrg_trial, table6
from repro.runtime import ChaosPolicy, FaultInjected, RuntimePolicy

SMALL = dict(sizes=(5,), trials=6, segments_search=1, segments_eval=1)


def small_config(**overrides):
    return ExperimentConfig(**{**SMALL, **overrides})


class TestChaosSweep:
    CHAOS = ChaosPolicy(seed=7, raise_rate=0.2)

    def test_completes_and_counts_failures(self):
        config = small_config(trials=10, chaos=self.CHAOS)
        rows = run_size_sweep(config, partial(run_ert_trial, config),
                              runtime=RuntimePolicy.tolerant())
        (row,) = rows
        assert row.failed > 0  # 20% per-call chaos must cost some trials
        assert row.num_trials + row.failed == 10
        assert row.num_trials > 0

    def test_chaos_rows_are_reproducible(self):
        def run():
            config = small_config(trials=10, chaos=self.CHAOS)
            return run_size_sweep(config, partial(run_ert_trial, config),
                                  runtime=RuntimePolicy.tolerant())

        assert run() == run()

    def test_legacy_strict_path_aborts_on_fault(self):
        config = small_config(chaos=ChaosPolicy(seed=1, raise_rate=1.0))
        with pytest.raises(FaultInjected):
            run_size_sweep(config, partial(run_ert_trial, config))

    def test_failed_rows_render_annotation(self):
        config = small_config(trials=10, chaos=self.CHAOS)
        rows = run_size_sweep(config, partial(run_ert_trial, config),
                              runtime=RuntimePolicy.tolerant())
        text = format_rows(rows)
        assert f"{rows[0].num_trials} ok, {rows[0].failed} failed" in text

    def test_clean_rows_render_without_annotation(self):
        config = small_config(trials=3)
        rows = run_size_sweep(config, partial(run_ert_trial, config))
        text = format_rows(rows)
        assert "ok" not in text
        assert "[" not in text


class TestWorkerDeterminism:
    def test_parallel_rows_match_serial(self):
        config = small_config(trials=4)
        runner = partial(run_ldrg_trial, config)
        serial = run_size_sweep(config, runner,
                                runtime=RuntimePolicy.tolerant())
        parallel = run_size_sweep(config, runner,
                                  runtime=RuntimePolicy(workers=2))
        assert parallel == serial

    def test_table_render_identical_across_workers(self):
        config = small_config(trials=4)
        serial = table6(config, runtime=RuntimePolicy.tolerant()).render()
        parallel = table6(config, runtime=RuntimePolicy(workers=3)).render()
        assert parallel == serial


class TestJournalResume:
    def test_resumed_rows_identical(self, tmp_path):
        config = small_config(trials=4)
        runner = partial(run_ldrg_trial, config)
        first = run_size_sweep(config, runner,
                               runtime=RuntimePolicy(run_root=tmp_path))
        resumed = run_size_sweep(
            config, runner,
            runtime=RuntimePolicy(run_root=tmp_path, resume=True))
        assert resumed == first
        # Exactly one run directory, with one record per trial.
        (run_dir,) = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(list(run_dir.glob("trial_*.json"))) == 4
        assert (run_dir / "manifest.json").exists()

    def test_different_config_different_run_dir(self, tmp_path):
        for seed in (1, 2):
            config = small_config(trials=2, seed=seed)
            run_size_sweep(config, partial(run_ldrg_trial, config),
                           runtime=RuntimePolicy(run_root=tmp_path))
        assert len([p for p in tmp_path.iterdir() if p.is_dir()]) == 2


CLI_TABLE = ["table", "6", "--trials", "4", "--sizes", "5,10"]


def run_cli(args, **kwargs):
    env = {**os.environ,
           "PYTHONPATH": str(Path(__file__).parents[2] / "src")}
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, env=env, **kwargs)


@pytest.mark.slow
class TestKillResumeAcceptance:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """Kill a journaled run mid-sweep; resume must reproduce exactly."""
        reference = run_cli(CLI_TABLE)
        assert reference.returncode == 0

        run_dir = tmp_path / "journal"
        env = {**os.environ,
               "PYTHONPATH": str(Path(__file__).parents[2] / "src")}
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", *CLI_TABLE,
             "--run-dir", str(run_dir)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env)
        try:
            # SIGKILL as soon as at least one trial is journaled.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if list(run_dir.glob("*/trial_*.json")):
                    break
                if victim.poll() is not None:
                    break  # finished before we could kill it — still valid
                time.sleep(0.02)
            victim.kill()
        finally:
            victim.wait(timeout=30)

        journaled = list(run_dir.glob("*/trial_*.json"))
        assert journaled, "run died before journaling anything"

        resumed = run_cli([*CLI_TABLE, "--run-dir", str(run_dir),
                           "--resume"])
        assert resumed.returncode == 0
        assert resumed.stdout == reference.stdout
