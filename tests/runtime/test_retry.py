"""Retry/backoff behavior: determinism, bounds, and escalation."""

from __future__ import annotations

import pytest

from repro.runtime import RetryExhausted, RetryPolicy, call_with_retries


class Flaky:
    """Callable that fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, exc=OSError("flake"), value=42):
        self.failures = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return self.value


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, seed=7)
        assert list(policy.backoff_delays()) == list(policy.backoff_delays())

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=10, base_delay=0.1,
                             multiplier=3.0, max_delay=0.5, jitter=0.0)
        delays = list(policy.backoff_delays())
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.3)
        assert all(d <= 0.5 for d in delays)
        assert delays[-1] == pytest.approx(0.5)

    def test_jitter_bounded(self):
        policy = RetryPolicy(max_attempts=20, base_delay=1.0,
                             multiplier=1.0, max_delay=10.0, jitter=0.5)
        for delay in policy.backoff_delays():
            assert 1.0 <= delay < 1.5

    def test_seed_changes_jitter_stream(self):
        kwargs = dict(max_attempts=8, base_delay=1.0, multiplier=1.0,
                      max_delay=10.0, jitter=0.5)
        a = list(RetryPolicy(seed=1, **kwargs).backoff_delays())
        b = list(RetryPolicy(seed=2, **kwargs).backoff_delays())
        assert a != b

    @pytest.mark.parametrize("bad", [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
        {"jitter": -0.1},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)


class TestCallWithRetries:
    def test_success_first_try_no_sleep(self):
        sleeps = []
        fn = Flaky(failures=0)
        out = call_with_retries(fn, RetryPolicy(), (OSError,),
                                sleep=sleeps.append)
        assert out == 42
        assert fn.calls == 1
        assert sleeps == []

    def test_transient_failures_then_success(self):
        sleeps = []
        fn = Flaky(failures=2)
        policy = RetryPolicy(max_attempts=3, jitter=0.0,
                             base_delay=0.05, multiplier=2.0)
        assert call_with_retries(fn, policy, (OSError,),
                                 sleep=sleeps.append) == 42
        assert fn.calls == 3
        assert sleeps == pytest.approx([0.05, 0.1])

    def test_exhaustion_raises_with_cause(self):
        fn = Flaky(failures=99)
        with pytest.raises(RetryExhausted) as info:
            call_with_retries(fn, RetryPolicy(max_attempts=3), (OSError,),
                              sleep=lambda _: None)
        assert fn.calls == 3
        assert isinstance(info.value.__cause__, OSError)
        assert "3 attempt(s)" in str(info.value)

    def test_non_transient_propagates_immediately(self):
        fn = Flaky(failures=99, exc=KeyError("bug"))
        with pytest.raises(KeyError):
            call_with_retries(fn, RetryPolicy(), (OSError,),
                              sleep=lambda _: None)
        assert fn.calls == 1

    def test_on_retry_callback_numbering(self):
        seen = []
        fn = Flaky(failures=2)
        call_with_retries(fn, RetryPolicy(max_attempts=4), (OSError,),
                          on_retry=lambda n, e: seen.append((n, type(e))),
                          sleep=lambda _: None)
        assert seen == [(1, OSError), (2, OSError)]

    def test_single_attempt_means_no_retry(self):
        fn = Flaky(failures=1)
        with pytest.raises(RetryExhausted):
            call_with_retries(fn, RetryPolicy(max_attempts=1), (OSError,),
                              sleep=lambda _: None)
        assert fn.calls == 1
