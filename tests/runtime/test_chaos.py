"""Deterministic fault injection: rates, modes, and reproducibility."""

from __future__ import annotations

import math

import pytest

from repro.delay.models import DelayModel
from repro.runtime import ChaosDelayModel, ChaosPolicy, FaultInjected, collecting
from repro.runtime.chaos import chaos_seed
from repro.runtime.provenance import KIND_FAULT


class FixedModel(DelayModel):
    """An oracle that always answers the same, counting its calls."""

    name = "fixed"

    def __init__(self, tech, value=1e-9):
        super().__init__(tech)
        self.value = value
        self.calls = 0

    def delays(self, graph, widths=None):
        self.calls += 1
        return {1: self.value, 2: self.value * 2}


def outcome_sequence(model, n=24):
    """Categorize ``n`` oracle calls: 'ok', 'nan', or 'raise'."""
    out = []
    for _ in range(n):
        try:
            delays = model.delays(None)
        except FaultInjected:
            out.append("raise")
            continue
        out.append("nan" if any(math.isnan(v) for v in delays.values())
                   else "ok")
    return out


class TestChaosPolicy:
    @pytest.mark.parametrize("bad", [
        {"raise_rate": -0.1},
        {"nan_rate": 1.5},
        {"raise_rate": 0.6, "hang_rate": 0.6},
        {"hang_seconds": -1.0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ChaosPolicy(**bad)

    def test_json_round_trip(self):
        policy = ChaosPolicy(seed=3, raise_rate=0.2, hang_rate=0.1,
                             nan_rate=0.05, hang_seconds=12.0)
        assert ChaosPolicy.from_json_dict(policy.to_json_dict()) == policy

    def test_fault_rate(self):
        policy = ChaosPolicy(raise_rate=0.2, hang_rate=0.1, nan_rate=0.05)
        assert policy.fault_rate == pytest.approx(0.35)

    def test_seed_mixes_salt(self):
        policy = ChaosPolicy(seed=5)
        assert chaos_seed(policy, "net_a") != chaos_seed(policy, "net_b")
        assert chaos_seed(policy, "net_a") == chaos_seed(policy, "net_a")


class TestChaosDelayModel:
    def test_rate_zero_is_passthrough(self, tech):
        inner = FixedModel(tech)
        chaos = ChaosDelayModel(inner, ChaosPolicy(seed=1))
        for _ in range(10):
            assert chaos.delays(None) == {1: 1e-9, 2: 2e-9}
        assert inner.calls == 10

    def test_raise_rate_one_always_raises(self, tech):
        inner = FixedModel(tech)
        chaos = ChaosDelayModel(inner, ChaosPolicy(seed=1, raise_rate=1.0))
        for _ in range(5):
            with pytest.raises(FaultInjected):
                chaos.delays(None)
        assert inner.calls == 0  # the real oracle is never consulted

    def test_nan_rate_one_poisons_every_sink(self, tech):
        chaos = ChaosDelayModel(FixedModel(tech),
                                ChaosPolicy(seed=1, nan_rate=1.0))
        delays = chaos.delays(None)
        assert set(delays) == {1, 2}
        assert all(math.isnan(v) for v in delays.values())

    def test_hang_sleeps_then_raises(self, tech):
        sleeps = []
        chaos = ChaosDelayModel(
            FixedModel(tech),
            ChaosPolicy(seed=1, hang_rate=1.0, hang_seconds=99.0),
            sleep=sleeps.append)
        with pytest.raises(FaultInjected, match="hang"):
            chaos.delays(None)
        assert sleeps == [99.0]

    def test_same_seed_same_salt_same_fault_pattern(self, tech):
        policy = ChaosPolicy(seed=7, raise_rate=0.3, nan_rate=0.2)
        a = ChaosDelayModel(FixedModel(tech), policy, salt="rand10_t3")
        b = ChaosDelayModel(FixedModel(tech), policy, salt="rand10_t3")
        assert outcome_sequence(a) == outcome_sequence(b)

    def test_different_salt_different_pattern(self, tech):
        policy = ChaosPolicy(seed=7, raise_rate=0.5)
        a = ChaosDelayModel(FixedModel(tech), policy, salt="rand10_t3")
        b = ChaosDelayModel(FixedModel(tech), policy, salt="rand10_t4")
        assert outcome_sequence(a) != outcome_sequence(b)

    def test_faults_record_provenance(self, tech):
        chaos = ChaosDelayModel(FixedModel(tech),
                                ChaosPolicy(seed=1, raise_rate=1.0))
        with collecting() as events:
            with pytest.raises(FaultInjected):
                chaos.delays(None)
        assert [e.kind for e in events] == [KIND_FAULT]
        assert events[0].detail == "raise"

    def test_name_wraps_inner(self, tech):
        chaos = ChaosDelayModel(FixedModel(tech), ChaosPolicy())
        assert chaos.name == "chaos(fixed)"
