"""Engine ladder: retries, degradation with provenance, NaN promotion."""

from __future__ import annotations

import math

import pytest

from repro.delay.models import DelayModel, SpiceDelayModel
from repro.runtime import (
    NonFiniteDelay,
    ResilientDelayModel,
    RetryExhausted,
    RetryPolicy,
    collecting,
    resilient_spice_model,
)
from repro.runtime.provenance import KIND_DEGRADE, KIND_RETRY

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


class ScriptedModel(DelayModel):
    """An oracle that fails its first ``failures`` calls, then answers."""

    def __init__(self, tech, name, failures=0, exc=OSError("engine down"),
                 value=1e-9):
        super().__init__(tech)
        self.name = name
        self.failures = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def delays(self, graph, widths=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return {1: self.value}


def resilient(tech, *models, retry=FAST_RETRY):
    return ResilientDelayModel(models, retry=retry, sleep=lambda _: None)


class TestResilientDelayModel:
    def test_healthy_first_rung_no_events(self, tech):
        good = ScriptedModel(tech, "a")
        with collecting() as events:
            delays = resilient(tech, good).delays(None)
        assert delays == {1: 1e-9}
        assert events == []

    def test_transient_flake_retries_same_rung(self, tech):
        flaky = ScriptedModel(tech, "a", failures=2)
        backup = ScriptedModel(tech, "b")
        with collecting() as events:
            delays = resilient(tech, flaky, backup).delays(None)
        assert delays == {1: 1e-9}
        assert flaky.calls == 3
        assert backup.calls == 0
        assert [e.kind for e in events] == [KIND_RETRY, KIND_RETRY]

    def test_dead_rung_degrades_with_provenance(self, tech):
        dead = ScriptedModel(tech, "primary", failures=99)
        backup = ScriptedModel(tech, "fallback", value=2e-9)
        with collecting() as events:
            delays = resilient(tech, dead, backup).delays(None)
        assert delays == {1: 2e-9}
        degrades = [e for e in events if e.kind == KIND_DEGRADE]
        assert len(degrades) == 1
        assert degrades[0].source == "primary"
        assert degrades[0].target == "fallback"
        assert "OSError" in degrades[0].detail

    def test_all_rungs_dead_raises_exhausted(self, tech):
        a = ScriptedModel(tech, "a", failures=99)
        b = ScriptedModel(tech, "b", failures=99)
        with pytest.raises(RetryExhausted, match="all 2 engine"):
            resilient(tech, a, b).delays(None)

    def test_non_transient_error_propagates(self, tech):
        buggy = ScriptedModel(tech, "a", failures=99, exc=KeyError("bug"))
        backup = ScriptedModel(tech, "b")
        with pytest.raises(KeyError):
            resilient(tech, buggy, backup).delays(None)
        assert buggy.calls == 1
        assert backup.calls == 0

    def test_nan_output_promoted_and_degraded(self, tech):
        poisoned = ScriptedModel(tech, "a", value=math.nan)
        backup = ScriptedModel(tech, "b")
        with collecting() as events:
            delays = resilient(tech, poisoned, backup).delays(None)
        assert delays == {1: 1e-9}
        assert any(e.kind == KIND_DEGRADE and "NonFiniteDelay" in e.detail
                   for e in events)

    def test_nan_with_no_fallback_raises(self, tech):
        poisoned = ScriptedModel(tech, "a", value=math.inf)
        with pytest.raises(RetryExhausted) as info:
            resilient(tech, poisoned).delays(None)
        assert isinstance(info.value.__cause__, NonFiniteDelay)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ResilientDelayModel([])

    def test_name_reflects_engine_of_record(self, tech):
        model = resilient(tech, ScriptedModel(tech, "primary"))
        assert model.name == "resilient(primary)"


class TestResilientSpiceModel:
    def test_default_ladder_rungs(self, tech):
        model = resilient_spice_model(tech)
        assert [m.name for m in model.ladder] == [
            "ngspice", "spice-transient", "spice-analytic"]

    def test_inprocess_only_ladder(self, tech):
        model = resilient_spice_model(tech,
                                      engines=("transient", "analytic"))
        assert all(isinstance(m, SpiceDelayModel) for m in model.ladder)

    def test_unknown_engine_rejected(self, tech):
        with pytest.raises(ValueError, match="unknown resilience engine"):
            resilient_spice_model(tech, engines=("ngspice", "hspice"))

    def test_inprocess_rungs_work(self, tech, mst10):
        model = resilient_spice_model(tech,
                                      engines=("analytic",),
                                      retry=FAST_RETRY)
        delays = model.delays(mst10)
        assert delays
        assert all(math.isfinite(v) and v > 0 for v in delays.values())
