"""Crash-safety and round-trip tests for the trial journal."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.runtime import (
    ProvenanceEvent,
    RunJournal,
    TrialFailure,
    TrialResult,
    atomic_write_text,
    fingerprint,
)
from repro.runtime.journal import (
    _record_name,
    canonical_journal_bytes,
    canonical_record,
)
from repro.runtime.provenance import KIND_DEGRADE, KIND_RETRY
from repro.runtime.trial import outcome_from_json_dict, outcome_to_json_dict


def make_result(delay=0.1 + 0.2, cost=12345.678901234567) -> TrialResult:
    """A result with floats that expose any lossy serialization."""
    return TrialResult(
        algorithm="ldrg", model="spice", delay=delay, cost=cost,
        base_delay=1.0 / 3.0, base_cost=9876.5,
        history=((0.25, 100.0), (delay, cost)),
        provenance=(
            ProvenanceEvent(kind=KIND_RETRY, source="ngspice",
                            detail="attempt 1: OSError: boom"),
            ProvenanceEvent(kind=KIND_DEGRADE, source="ngspice",
                            target="spice-transient", detail="gave up"),
        ),
        elapsed=0.0421)


def make_failure() -> TrialFailure:
    return TrialFailure(kind="timeout", error_type="TrialTimeout",
                        message="trial exceeded its 2s budget",
                        traceback="Traceback ...\n", elapsed=2.5)


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = {"sizes": [5, 10], "seed": 1994}
        b = {"seed": 1994, "sizes": [5, 10]}
        assert fingerprint(a) == fingerprint(b)

    def test_sensitive_to_values(self):
        base = {"sizes": [5, 10], "seed": 1994}
        assert fingerprint(base) != fingerprint({**base, "seed": 1995})
        assert fingerprint(base) != fingerprint({**base, "sizes": [5, 20]})

    def test_is_short_hex(self):
        digest = fingerprint({"x": 1})
        assert len(digest) == 16
        int(digest, 16)  # must parse as hex


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "f.json"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "f.json"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_tmp_files_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "a.json", "x")
        atomic_write_text(tmp_path / "b.json", "y")
        leftovers = [p.name for p in tmp_path.iterdir()
                     if ".tmp" in p.name]
        assert leftovers == []


class TestOutcomeRoundTrip:
    def test_result_round_trips_exact_floats(self):
        result = make_result()
        data = outcome_to_json_dict((10, 3), result)
        # Simulate the real journal path: through JSON text and back.
        key, loaded = outcome_from_json_dict(json.loads(json.dumps(data)))
        assert key == (10, 3)
        assert loaded == result
        assert loaded.delay == result.delay  # bit-identical, not approx
        assert loaded.provenance == result.provenance

    def test_failure_round_trips(self):
        failure = make_failure()
        data = outcome_to_json_dict((5, 0), failure)
        key, loaded = outcome_from_json_dict(json.loads(json.dumps(data)))
        assert key == (5, 0)
        assert loaded == failure
        assert loaded.kind == "timeout"

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="unknown status"):
            outcome_from_json_dict({"key": [5, 0], "status": "weird"})

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            outcome_from_json_dict({"status": "ok"})


class TestRunJournal:
    def test_record_and_load(self, tmp_path):
        journal = RunJournal(tmp_path, "abc123", manifest={"kind": "test"})
        result, failure = make_result(), make_failure()
        journal.record((5, 0), result)
        journal.record((10, 1), failure)
        loaded = journal.load()
        assert loaded == {(5, 0): result, (10, 1): failure}
        assert journal.completed_keys() == {(5, 0), (10, 1)}

    def test_manifest_written_once(self, tmp_path):
        RunJournal(tmp_path, "abc123", manifest={"kind": "first"})
        RunJournal(tmp_path, "abc123", manifest={"kind": "second"})
        manifest = json.loads(
            (tmp_path / "abc123" / "manifest.json").read_text())
        assert manifest["config"] == {"kind": "first"}
        assert manifest["fingerprint"] == "abc123"

    def test_record_is_idempotent(self, tmp_path):
        journal = RunJournal(tmp_path, "abc123")
        journal.record((5, 0), make_result())
        journal.record((5, 0), make_result())
        assert len(journal.load()) == 1

    def test_malformed_record_skipped(self, tmp_path):
        journal = RunJournal(tmp_path, "abc123")
        journal.record((5, 0), make_result())
        # A truncated write under the final name must not kill resume.
        (journal.directory / _record_name((5, 1))).write_text('{"key": [5')
        (journal.directory / "trial_alien.json").write_text("not json")
        assert set(journal.load()) == {(5, 0)}

    def test_separate_fingerprints_isolated(self, tmp_path):
        a = RunJournal(tmp_path, "aaaa")
        b = RunJournal(tmp_path, "bbbb")
        a.record((5, 0), make_result())
        assert b.load() == {}


class TestCanonicalization:
    def test_volatile_fields_stripped_at_any_depth(self):
        data = {"elapsed": 1.5,
                "result": {"delay": 0.3, "elapsed": 0.1,
                           "steps": [{"elapsed": 0.2, "cost": 1.0}]}}
        assert canonical_record(data) == {
            "result": {"delay": 0.3, "steps": [{"cost": 1.0}]}}

    def test_journals_differing_only_in_elapsed_match(self, tmp_path):
        a = RunJournal(tmp_path / "a", "f0")
        b = RunJournal(tmp_path / "b", "f0")
        a.record((5, 0), make_result())
        b.record((5, 0), replace(make_result(), elapsed=99.9))
        assert (canonical_journal_bytes(a.directory)
                == canonical_journal_bytes(b.directory))

    def test_real_divergence_is_detected(self, tmp_path):
        a = RunJournal(tmp_path / "a", "f0")
        b = RunJournal(tmp_path / "b", "f0")
        a.record((5, 0), make_result())
        b.record((5, 0), replace(make_result(), delay=0.9999))
        assert (canonical_journal_bytes(a.directory)
                != canonical_journal_bytes(b.directory))

    def test_missing_and_extra_records_are_detected(self, tmp_path):
        a = RunJournal(tmp_path / "a", "f0")
        b = RunJournal(tmp_path / "b", "f0")
        a.record((5, 0), make_result())
        a.record((5, 1), make_result())
        b.record((5, 0), make_result())
        assert (canonical_journal_bytes(a.directory)
                != canonical_journal_bytes(b.directory))

    def test_malformed_record_kept_verbatim(self, tmp_path):
        journal = RunJournal(tmp_path, "f0")
        (journal.directory / _record_name((5, 0))).write_text('{"key": [5')
        assert b'{"key": [5' in canonical_journal_bytes(journal.directory)
