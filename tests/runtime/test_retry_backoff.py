"""Backoff sequences under sustained transient failure.

``test_retry`` covers the policy knobs in isolation; this file pins the
*observed* sleep sequence when ``call_with_retries`` is driven through
repeated transient faults — the service's retry behavior under a flaky
oracle, reproduced with an injected sleep so no test ever waits.
"""

from __future__ import annotations

import pytest

from repro.runtime import RetryPolicy, RetryExhausted, call_with_retries
from repro.runtime.errors import FaultInjected


def observed_sleeps(policy):
    """The sleeps a never-succeeding call actually performs."""
    sleeps = []

    def flaky():
        raise FaultInjected("scripted transient fault")

    with pytest.raises(RetryExhausted):
        call_with_retries(flaky, policy, (FaultInjected,),
                          sleep=sleeps.append)
    return sleeps


class TestObservedSequence:
    def test_matches_declared_backoff(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.05, seed=11)
        assert observed_sleeps(policy) == list(policy.backoff_delays())

    def test_seeded_determinism_across_runs(self):
        policy = RetryPolicy(max_attempts=6, seed=42)
        assert observed_sleeps(policy) == observed_sleeps(policy)

    def test_different_seeds_differ(self):
        a = observed_sleeps(RetryPolicy(max_attempts=6, seed=1))
        b = observed_sleeps(RetryPolicy(max_attempts=6, seed=2))
        assert a != b

    def test_zero_jitter_is_exact_geometric(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1,
                             multiplier=2.0, max_delay=100.0, jitter=0.0)
        assert observed_sleeps(policy) == [0.1, 0.2, 0.4, 0.8]


class TestJitterBounds:
    def test_every_sleep_within_jitter_envelope(self):
        policy = RetryPolicy(max_attempts=10, base_delay=0.01,
                             multiplier=1.5, max_delay=1e9, jitter=0.5,
                             seed=7)
        base = 0.01
        for sleep in observed_sleeps(policy):
            assert base <= sleep < base * 1.5
            base *= 1.5

    def test_jitter_never_negative(self):
        policy = RetryPolicy(max_attempts=8, jitter=0.9, seed=3)
        assert all(s >= 0 for s in observed_sleeps(policy))


class TestCeiling:
    def test_ceiling_holds_under_many_faults(self):
        policy = RetryPolicy(max_attempts=20, base_delay=0.05,
                             multiplier=3.0, max_delay=0.4, seed=5)
        sleeps = observed_sleeps(policy)
        assert len(sleeps) == 19
        assert all(s <= 0.4 for s in sleeps)
        # the tail saturates at the cap exactly (jitter is capped too)
        assert sleeps[-1] == 0.4

    def test_total_backoff_is_bounded(self):
        policy = RetryPolicy(max_attempts=50, base_delay=0.1,
                             multiplier=2.0, max_delay=0.25, seed=9)
        assert sum(observed_sleeps(policy)) <= 49 * 0.25
