"""The persistent WorkerPool: submit/poll lifecycle and graceful drain.

Worker functions are shared with ``test_pool`` (module-level, hence
picklable); this file exercises the long-lived API the routing service
uses — the run-to-completion wrapper is covered there.
"""

from __future__ import annotations

import time

import pytest

from repro.runtime import PoolTask, TrialFailure, WorkerPool
from repro.runtime.trial import (
    FAILURE_CRASH,
    FAILURE_DRAINED,
    FAILURE_TIMEOUT,
)
from tests.runtime.test_pool import (
    crash_trial,
    hang_trial,
    ok_trial,
    payload,
    stubborn_hang_trial,
)


def collect(pool, n, timeout=30.0):
    """Poll until n outcomes land (or the wall-clock budget runs out)."""
    outcomes = {}
    deadline = time.monotonic() + timeout
    while len(outcomes) < n and time.monotonic() < deadline:
        for key, outcome in pool.poll(0.2):
            outcomes[key] = outcome
    assert len(outcomes) == n, f"only {len(outcomes)}/{n} landed"
    return outcomes


class TestSubmitPoll:
    def test_results_match_payloads(self):
        with WorkerPool(2) as pool:
            submitted = 0
            outcomes = {}
            while submitted < 5 or len(outcomes) < 5:
                while submitted < 5 and pool.can_accept():
                    task = PoolTask(key=(7, submitted), fn=ok_trial,
                                    args=(7, submitted))
                    assert pool.submit(task) is None
                    submitted += 1
                for key, outcome in pool.poll(0.2):
                    outcomes[key] = outcome
            assert outcomes == {(7, t): payload(7, t) for t in range(5)}

    def test_lazy_spawn_up_to_target(self):
        pool = WorkerPool(4)
        try:
            assert pool.in_flight() == 0
            assert pool.can_accept()
            pool.submit(PoolTask(key=(1, 0), fn=ok_trial, args=(1, 0)))
            assert pool.in_flight() == 1
            assert (1, 0) in pool.in_flight_keys()
        finally:
            pool.shutdown()

    def test_workers_below_one_are_clamped(self):
        pool = WorkerPool(0)
        assert pool.target == 1
        pool.shutdown()

    def test_submit_after_shutdown_rejected(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit(PoolTask(key=(1, 0), fn=ok_trial, args=(1, 0)))

    def test_unpicklable_task_fails_immediately(self):
        with WorkerPool(1) as pool:
            immediate = pool.submit(
                PoolTask(key=(1, 0), fn=lambda: None))
            assert isinstance(immediate, TrialFailure)
            # the worker survives for the next submission
            assert pool.can_accept()


class TestCasualties:
    def test_crash_reported_and_capacity_recovers(self):
        with WorkerPool(1) as pool:
            pool.submit(PoolTask(key=(9, 0), fn=crash_trial))
            outcomes = collect(pool, 1)
            assert outcomes[(9, 0)].kind == FAILURE_CRASH
            # casualty freed its slot: the pool accepts and serves again
            assert pool.can_accept()
            pool.submit(PoolTask(key=(9, 1), fn=ok_trial, args=(9, 1)))
            outcomes = collect(pool, 1)
            assert outcomes[(9, 1)] == payload(9, 1)

    def test_sequential_crashes_never_shrink_capacity(self):
        # regression: each casualty must be replaced, so N crashes in a
        # row still leave the pool with its full complement of slots
        with WorkerPool(2) as pool:
            for round_ in range(3):
                pool.submit(PoolTask(key=(10, round_), fn=crash_trial))
                outcomes = collect(pool, 1)
                assert outcomes[(10, round_)].kind == FAILURE_CRASH
            # full capacity: two concurrent submissions both accepted
            assert pool.can_accept()
            pool.submit(PoolTask(key=(11, 0), fn=ok_trial, args=(11, 0)))
            assert pool.can_accept()
            pool.submit(PoolTask(key=(11, 1), fn=ok_trial, args=(11, 1)))
            outcomes = collect(pool, 2)
            assert outcomes == {(11, t): payload(11, t) for t in range(2)}
            assert len(pool._live) <= 2

    def test_worker_dying_while_idle_is_culled_on_next_submit(self):
        with WorkerPool(1) as pool:
            pool.submit(PoolTask(key=(12, 0), fn=ok_trial, args=(12, 0)))
            collect(pool, 1)
            # the worker sits idle; kill it behind the pool's back
            (casualty,) = pool._idle
            casualty.process.kill()
            casualty.process.join(timeout=10.0)
            # the next submit must notice, replace, and still deliver
            assert pool.submit(PoolTask(key=(12, 1), fn=ok_trial,
                                        args=(12, 1))) is None
            outcomes = collect(pool, 1)
            assert outcomes[(12, 1)] == payload(12, 1)

    def test_overdue_worker_hard_killed(self):
        with WorkerPool(1) as pool:
            pool.submit(PoolTask(key=(9, 2), fn=stubborn_hang_trial),
                        timeout=0.2)
            outcomes = collect(pool, 1, timeout=30.0)
            assert outcomes[(9, 2)].kind == FAILURE_TIMEOUT


class TestDrain:
    def test_drain_waits_for_quick_work(self):
        pool = WorkerPool(2)
        pool.submit(PoolTask(key=(3, 0), fn=ok_trial, args=(3, 0)))
        pool.submit(PoolTask(key=(3, 1), fn=ok_trial, args=(3, 1)))
        outcomes = pool.drain(grace=30.0)
        assert outcomes == {(3, t): payload(3, t) for t in range(2)}
        assert pool.draining

    def test_drain_converts_stragglers(self):
        pool = WorkerPool(1)
        pool.submit(PoolTask(key=(3, 2), fn=hang_trial))
        outcomes = pool.drain(grace=0.3)
        assert outcomes[(3, 2)].kind == FAILURE_DRAINED
        assert "drain" in outcomes[(3, 2)].message

    def test_drain_refuses_new_submissions(self):
        pool = WorkerPool(1)
        pool.drain(grace=0.0)
        with pytest.raises(RuntimeError):
            pool.submit(PoolTask(key=(3, 3), fn=ok_trial, args=(3, 3)))

    def test_drain_of_idle_pool_is_empty(self):
        pool = WorkerPool(2)
        assert pool.drain(grace=1.0) == {}
