"""The fingerprint-keyed warm-result cache behind the routing service."""

from __future__ import annotations

import json

import pytest

from repro.runtime import ResultCache


PAYLOAD = {"result": {"delay": 1.5e-9, "cost": 1200.0}, "engine": "spice"}


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.lookup_cached("abc") is None
        cache.store("abc", PAYLOAD)
        assert cache.lookup_cached("abc") == PAYLOAD
        assert (cache.hits, cache.misses) == (1, 1)

    def test_returns_copies(self):
        cache = ResultCache()
        cache.store("abc", PAYLOAD)
        first = cache.lookup_cached("abc")
        first["mutated"] = True
        assert "mutated" not in cache.lookup_cached("abc")

    def test_capacity_bounds_memory(self):
        cache = ResultCache(capacity=3)
        for i in range(10):
            cache.store(f"fp{i}", {"i": i})
        assert len(cache) == 3
        assert cache.lookup_cached("fp0") is None  # evicted (LRU)
        assert cache.lookup_cached("fp9") == {"i": 9}

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.store("a", {"v": 1})
        cache.store("b", {"v": 2})
        cache.lookup_cached("a")       # refresh a
        cache.store("c", {"v": 3})     # evicts b, not a
        assert cache.lookup_cached("a") == {"v": 1}
        assert cache.lookup_cached("b") is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestDiskTier:
    def test_survives_new_instance(self, tmp_path):
        ResultCache(tmp_path).store("abc", PAYLOAD)
        fresh = ResultCache(tmp_path)
        assert fresh.lookup_cached("abc") == PAYLOAD
        assert fresh.hits == 1

    def test_disk_record_is_versioned_json(self, tmp_path):
        ResultCache(tmp_path).store("abc", PAYLOAD)
        record = json.loads((tmp_path / "result_abc.json").read_text())
        assert record["fingerprint"] == "abc"
        assert record["payload"] == PAYLOAD
        assert "version" in record

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "result_bad.json").write_text("{not json")
        assert cache.lookup_cached("bad") is None
        assert cache.corrupt_records == 1

    def test_truncated_record_is_a_counted_miss(self, tmp_path):
        # a crash mid-write leaves a prefix of valid JSON: must be a
        # quiet miss, not an exception that takes the daemon down
        ResultCache(tmp_path).store("abc", PAYLOAD)
        path = tmp_path / "result_abc.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        cache = ResultCache(tmp_path)
        assert cache.lookup_cached("abc") is None
        assert cache.corrupt_records == 1
        # the slot is recoverable: a fresh store overwrites the wreck
        cache.store("abc", PAYLOAD)
        assert ResultCache(tmp_path).lookup_cached("abc") == PAYLOAD

    def test_non_dict_record_is_a_counted_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "result_odd.json").write_text("[1, 2, 3]")
        assert cache.lookup_cached("odd") is None
        assert cache.corrupt_records == 1

    def test_wrong_fingerprint_record_is_a_miss(self, tmp_path):
        ResultCache(tmp_path).store("abc", PAYLOAD)
        (tmp_path / "result_xyz.json").write_text(
            (tmp_path / "result_abc.json").read_text())
        cache = ResultCache(tmp_path)
        assert cache.lookup_cached("xyz") is None
        assert cache.corrupt_records == 1

    def test_memory_only_mode_writes_nothing(self, tmp_path):
        cache = ResultCache()
        cache.store("abc", PAYLOAD)
        assert list(tmp_path.iterdir()) == []
