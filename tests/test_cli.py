"""Unit tests for the command-line interface (in-process main calls)."""

import json

import pytest

from repro.cli import main


class TestParams:
    def test_prints_table1(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "driver resistance" in out
        assert "100 ohm" in out


class TestRandomNet:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "n.nets"
        assert main(["random-net", "--pins", "6", "--seed", "3",
                     "--out", str(out)]) == 0
        assert "wrote 1 net(s)" in capsys.readouterr().out
        assert out.read_text().count("sink") == 5

    def test_multiple_nets(self, tmp_path):
        out = tmp_path / "n.nets"
        main(["random-net", "--pins", "4", "--count", "3",
              "--out", str(out)])
        assert out.read_text().count("net ") == 3


class TestRoute:
    @pytest.fixture
    def net_file(self, tmp_path):
        path = tmp_path / "demo.nets"
        main(["random-net", "--pins", "8", "--seed", "4",
              "--out", str(path)])
        return path

    def test_route_summary(self, net_file, capsys):
        assert main(["route", str(net_file), "--algorithm", "h3",
                     "--segments", "1"]) == 0
        out = capsys.readouterr().out
        assert "h3 on" in out
        assert "ns" in out

    def test_artifacts_written(self, net_file, tmp_path, capsys):
        svg = tmp_path / "r.svg"
        js = tmp_path / "r.json"
        deck = tmp_path / "r.cir"
        assert main(["route", str(net_file), "--algorithm", "ldrg",
                     "--segments", "1", "--svg", str(svg),
                     "--json", str(js), "--deck", str(deck)]) == 0
        assert svg.read_text().startswith("<svg")
        assert json.loads(js.read_text())["format"] == "repro-routing-v1"
        assert deck.read_text().rstrip().endswith(".end")

    def test_bad_index(self, net_file, capsys):
        assert main(["route", str(net_file), "--index", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_artifacts_need_single_net(self, tmp_path, capsys):
        path = tmp_path / "many.nets"
        main(["random-net", "--pins", "4", "--count", "2",
              "--out", str(path)])
        assert main(["route", str(path), "--svg",
                     str(tmp_path / "x.svg")]) == 2
        assert "single net" in capsys.readouterr().err


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_small_table6(self, capsys):
        assert main(["table", "6", "--trials", "2", "--sizes", "5"]) == 0
        out = capsys.readouterr().out
        assert "Elmore Routing Tree" in out
        assert "net size" in out

    def test_unknown_table(self, capsys):
        assert main(["table", "9", "--trials", "1", "--sizes", "5"]) == 2
        assert "no such experiment table" in capsys.readouterr().err


class TestFigure:
    def test_figure1(self, tmp_path, capsys):
        assert main(["figure", "1", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert (tmp_path / "figure1_before.svg").exists()
        assert (tmp_path / "figure1_after.svg").exists()


class TestEmbed:
    @pytest.fixture
    def net_file(self, tmp_path):
        path = tmp_path / "demo.nets"
        main(["random-net", "--pins", "8", "--seed", "4",
              "--out", str(path)])
        return path

    def test_embed_open_grid(self, net_file, capsys):
        assert main(["embed", str(net_file), "--algorithm", "h3"]) == 0
        out = capsys.readouterr().out
        assert "embedded on a" in out
        assert "detour" in out

    def test_embed_with_blockage_and_svg(self, net_file, tmp_path, capsys):
        svg = tmp_path / "e.svg"
        assert main(["embed", str(net_file), "--algorithm", "h3",
                     "--block", "3500,3500,6500,6500",
                     "--svg", str(svg)]) == 0
        assert svg.read_text().startswith("<svg")
        assert "% blocked" in capsys.readouterr().out

    def test_bad_block_spec(self, net_file, capsys):
        assert main(["embed", str(net_file), "--block", "1,2,3"]) == 2
        assert "bad --block" in capsys.readouterr().err

    def test_bad_index(self, net_file, capsys):
        assert main(["embed", str(net_file), "--index", "9"]) == 2
        assert "out of range" in capsys.readouterr().err
