"""Unit tests for the command-line interface (in-process main calls)."""

import json

import pytest

from repro.cli import main


class TestParams:
    def test_prints_table1(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "driver resistance" in out
        assert "100 ohm" in out


class TestRandomNet:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "n.nets"
        assert main(["random-net", "--pins", "6", "--seed", "3",
                     "--out", str(out)]) == 0
        assert "wrote 1 net(s)" in capsys.readouterr().out
        assert out.read_text().count("sink") == 5

    def test_multiple_nets(self, tmp_path):
        out = tmp_path / "n.nets"
        main(["random-net", "--pins", "4", "--count", "3",
              "--out", str(out)])
        assert out.read_text().count("net ") == 3


class TestRoute:
    @pytest.fixture
    def net_file(self, tmp_path):
        path = tmp_path / "demo.nets"
        main(["random-net", "--pins", "8", "--seed", "4",
              "--out", str(path)])
        return path

    def test_route_summary(self, net_file, capsys):
        assert main(["route", str(net_file), "--algorithm", "h3",
                     "--segments", "1"]) == 0
        out = capsys.readouterr().out
        assert "h3 on" in out
        assert "ns" in out

    def test_artifacts_written(self, net_file, tmp_path, capsys):
        svg = tmp_path / "r.svg"
        js = tmp_path / "r.json"
        deck = tmp_path / "r.cir"
        assert main(["route", str(net_file), "--algorithm", "ldrg",
                     "--segments", "1", "--svg", str(svg),
                     "--json", str(js), "--deck", str(deck)]) == 0
        assert svg.read_text().startswith("<svg")
        assert json.loads(js.read_text())["format"] == "repro-routing-v1"
        assert deck.read_text().rstrip().endswith(".end")

    def test_bad_index(self, net_file, capsys):
        assert main(["route", str(net_file), "--index", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_artifacts_need_single_net(self, tmp_path, capsys):
        path = tmp_path / "many.nets"
        main(["random-net", "--pins", "4", "--count", "2",
              "--out", str(path)])
        assert main(["route", str(path), "--svg",
                     str(tmp_path / "x.svg")]) == 2
        assert "single net" in capsys.readouterr().err


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_small_table6(self, capsys):
        assert main(["table", "6", "--trials", "2", "--sizes", "5"]) == 0
        out = capsys.readouterr().out
        assert "Elmore Routing Tree" in out
        assert "net size" in out

    def test_unknown_table(self, capsys):
        assert main(["table", "9", "--trials", "1", "--sizes", "5"]) == 2
        assert "no such experiment table" in capsys.readouterr().err


class TestTableMultinet:
    def test_eligible_table_is_fleet_batched(self, capsys):
        assert main(["table", "7", "--multinet", "--trials", "2",
                     "--sizes", "5"]) == 0
        assert "fleet-batched" in capsys.readouterr().out

    def test_ineligible_table_falls_back_with_note(self, capsys):
        assert main(["table", "4", "--multinet", "--trials", "1",
                     "--sizes", "5"]) == 0
        captured = capsys.readouterr()
        assert "no fleet-batched form" in captured.err
        assert "Table 4" in captured.out

    def test_rejects_journaling_runtime_flags(self, capsys):
        assert main(["table", "7", "--multinet", "--trials", "1",
                     "--sizes", "5", "--workers", "2"]) == 2
        assert "in-process batched pipeline" in capsys.readouterr().err


class TestFigure:
    def test_figure1(self, tmp_path, capsys):
        assert main(["figure", "1", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert (tmp_path / "figure1_before.svg").exists()
        assert (tmp_path / "figure1_after.svg").exists()


class TestEmbed:
    @pytest.fixture
    def net_file(self, tmp_path):
        path = tmp_path / "demo.nets"
        main(["random-net", "--pins", "8", "--seed", "4",
              "--out", str(path)])
        return path

    def test_embed_open_grid(self, net_file, capsys):
        assert main(["embed", str(net_file), "--algorithm", "h3"]) == 0
        out = capsys.readouterr().out
        assert "embedded on a" in out
        assert "detour" in out

    def test_embed_with_blockage_and_svg(self, net_file, tmp_path, capsys):
        svg = tmp_path / "e.svg"
        assert main(["embed", str(net_file), "--algorithm", "h3",
                     "--block", "3500,3500,6500,6500",
                     "--svg", str(svg)]) == 0
        assert svg.read_text().startswith("<svg")
        assert "% blocked" in capsys.readouterr().out

    def test_bad_block_spec(self, net_file, capsys):
        assert main(["embed", str(net_file), "--block", "1,2,3"]) == 2
        assert "bad --block" in capsys.readouterr().err

    def test_bad_index(self, net_file, capsys):
        assert main(["embed", str(net_file), "--index", "9"]) == 2
        assert "out of range" in capsys.readouterr().err


class TestRobustnessFlags:
    """The fault-tolerance surface of the table subcommand."""

    def test_help_documents_runtime_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["table", "--help"])
        out = capsys.readouterr().out
        for flag in ("--workers", "--resume", "--run-dir",
                     "--trial-timeout", "--chaos"):
            assert flag in out

    def test_workers_match_serial_output(self, capsys):
        base = ["table", "6", "--trials", "2", "--sizes", "5"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main([*base, "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_run_dir_journals_and_resumes(self, tmp_path, capsys):
        base = ["table", "6", "--trials", "2", "--sizes", "5",
                "--run-dir", str(tmp_path / "runs")]
        assert main(base) == 0
        first = capsys.readouterr().out
        records = list((tmp_path / "runs").glob("*/trial_*.json"))
        assert len(records) == 2
        assert main([*base, "--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_chaos_sweep_reports_failures(self, capsys):
        assert main(["table", "6", "--trials", "10", "--sizes", "5",
                     "--chaos", "0.2", "--chaos-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "failed]" in out

    def test_resume_without_run_dir_exits_2(self, capsys):
        assert main(["table", "6", "--trials", "1", "--sizes", "5",
                     "--resume"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--run-dir" in err

    def test_bad_sizes_exits_2(self, capsys):
        assert main(["table", "6", "--trials", "1",
                     "--sizes", "5,ten"]) == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_bad_chaos_rate_exits_2(self, capsys):
        assert main(["table", "6", "--trials", "1", "--sizes", "5",
                     "--chaos", "1.5"]) == 2
        assert "error:" in capsys.readouterr().err


class TestErrorExitCodes:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupted(argv):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", interrupted)
        assert main(["params"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err

    def test_config_error_from_env(self, monkeypatch, capsys):
        from repro.experiments.harness import ExperimentConfig
        from repro.runtime import ConfigError

        monkeypatch.setenv("REPRO_TRIALS", "ten")
        with pytest.raises(ConfigError, match="REPRO_TRIALS='ten'"):
            ExperimentConfig.from_env()

    def test_config_error_exits_2(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.runtime import ConfigError

        def bad_dispatch(argv):
            raise ConfigError("environment variable REPRO_TRIALS='ten' "
                              "is invalid: expected an integer")

        monkeypatch.setattr(cli, "_dispatch", bad_dispatch)
        assert main(["params"]) == 2
        assert "REPRO_TRIALS" in capsys.readouterr().err

    def test_ngspice_error_exits_2(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.circuit.ngspice import NgspiceError

        monkeypatch.setattr(
            cli, "_dispatch",
            lambda argv: (_ for _ in ()).throw(
                NgspiceError("ngspice timed out after 60s")))
        assert main(["params"]) == 2
        assert "ngspice timed out" in capsys.readouterr().err

    def test_malformed_nets_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "garbage.nets"
        bad.write_text("net demo\nsink not-a-number 3 4\n")
        assert main(["route", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_embed_zero_pitch_exits_2(self, tmp_path, capsys):
        nets = tmp_path / "demo.nets"
        main(["random-net", "--pins", "4", "--seed", "1",
              "--out", str(nets)])
        capsys.readouterr()
        assert main(["embed", str(nets), "--pitch", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "pitch" in err

    def test_guard_incident_exits_3(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.guard.incidents import GuardError

        monkeypatch.setattr(
            cli, "_dispatch",
            lambda argv: (_ for _ in ()).throw(
                GuardError("singular phasor MNA system")))
        assert main(["params"]) == 3
        err = capsys.readouterr().err
        assert "numerical guard" in err
        assert "singular" in err

    def test_oserror_exits_2(self, tmp_path, capsys):
        nets = tmp_path / "demo.nets"
        main(["random-net", "--pins", "4", "--seed", "1",
              "--out", str(nets)])
        capsys.readouterr()
        missing_dir = tmp_path / "no" / "such" / "dir" / "out.svg"
        assert main(["route", str(nets), "--svg", str(missing_dir)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
