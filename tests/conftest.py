"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import prim_mst


@pytest.fixture(scope="session")
def tech() -> Technology:
    """The paper's Table 1 technology."""
    return Technology.cmos08()


@pytest.fixture
def net4() -> Net:
    """A tiny hand-placed 4-pin net with a corner-heavy shape."""
    return Net.from_points(
        [(0.0, 0.0), (4000.0, 0.0), (4000.0, 3000.0), (500.0, 3500.0)],
        name="hand4")


@pytest.fixture
def net10() -> Net:
    """The canonical seeded 10-pin random net used across tests."""
    return Net.random(10, seed=42)


@pytest.fixture
def mst10(net10):
    return prim_mst(net10)


@pytest.fixture
def line_net() -> Net:
    """Three collinear pins — the simplest chain topology."""
    return Net.from_points(
        [(0.0, 0.0), (1000.0, 0.0), (2000.0, 0.0)], name="line3")


def approx_point(p: Point, x: float, y: float, tol: float = 1e-9) -> bool:
    return abs(p.x - x) < tol and abs(p.y - y) < tol
