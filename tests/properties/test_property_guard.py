"""Property tests: degenerate inputs never yield silent numerical garbage.

The guard layer's contract on the solver core: every dense solve either
returns fully finite numbers or raises a structured
:class:`~repro.guard.incidents.NumericalIncident` — never NaN/inf in a
result, never a raw ``LinAlgError``. These tests push the degenerate
corners of that contract:

* **coincident pins** — Steiner points placed exactly on a pin create
  zero-length edges, i.e. 1 µΩ pseudo-shorts stacking huge conductances
  into the RC system;
* **collinear pins** — all pins on one line, the classic
  degenerate-geometry stressor;
* **conductance stacking** — parallel zero-length chords multiplying
  the pseudo-short conductance by the chord count;
* **raw near-singular systems** — rank-deficient SPD matrices fed
  straight to :class:`~repro.guard.numerics.GuardedFactorization`.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ldrg import ldrg
from repro.delay.models import ElmoreGraphModel
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import prim_mst
from repro.guard.incidents import NumericalIncident
from repro.guard.numerics import GuardedFactorization

TECH = Technology.cmos08()

seeds = st.integers(min_value=0, max_value=100_000)
sizes = st.integers(min_value=3, max_value=8)


def assert_clean_or_incident(compute):
    """``compute`` must finish with all-finite delays or raise the
    structured incident — anything else (NaN, inf, LinAlgError) fails."""
    try:
        delays = compute()
    except NumericalIncident as incident:
        assert incident.fingerprint.shape > 0
        return
    for sink, delay in delays.items():
        assert math.isfinite(delay), f"non-finite delay at sink {sink}"
        assert delay >= 0.0


class TestDegenerateNets:
    @given(seeds, sizes, st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_coincident_steiner_points(self, seed, size, stacked):
        """Pseudo-shorts: Steiner points exactly on existing pins."""
        graph = prim_mst(Net.random(size, seed=seed))
        for k in range(stacked):
            node = graph.add_steiner_point(graph.position(k % size))
            graph.add_edge(k % size, node)
        assert_clean_or_incident(
            lambda: ElmoreGraphModel(TECH).delays(graph))

    @given(seeds, sizes)
    @settings(max_examples=30, deadline=None)
    def test_collinear_pins(self, seed, size):
        """All pins on one horizontal line (distinct x positions)."""
        rng = np.random.default_rng(seed)
        xs = np.cumsum(1.0 + rng.random(size)) * 100.0
        pins = [Point(float(x), 500.0) for x in xs]
        net = Net(source=pins[0], sinks=tuple(pins[1:]))
        graph = prim_mst(net)
        assert_clean_or_incident(
            lambda: ElmoreGraphModel(TECH).delays(graph))

    @given(seeds, st.integers(min_value=2, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_conductance_stacking(self, seed, shorts):
        """Many parallel pseudo-shorts onto one pin stack ~1e6-scale
        conductances into a single row of the RC system."""
        graph = prim_mst(Net.random(4, seed=seed))
        anchor = graph.position(1)
        for _ in range(shorts):
            node = graph.add_steiner_point(anchor)
            graph.add_edge(1, node)
        assert_clean_or_incident(
            lambda: ElmoreGraphModel(TECH).delays(graph))

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_full_ldrg_on_degenerate_start(self, seed):
        """The whole greedy loop over a graph carrying a pseudo-short."""
        graph = prim_mst(Net.random(5, seed=seed))
        node = graph.add_steiner_point(graph.position(4))
        graph.add_edge(0, node)

        def run():
            return ldrg(graph, TECH, delay_model="elmore").delays

        assert_clean_or_incident(run)


class TestNearSingularSystems:
    @given(seeds, st.integers(min_value=2, max_value=10),
           st.integers(min_value=0, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_rank_deficient_spd_never_returns_garbage(self, seed, n, rank):
        """Gram matrices of ``rank`` vectors: singular whenever
        ``rank < n``. The factorization must regularize or raise."""
        rng = np.random.default_rng(seed)
        V = rng.standard_normal((n, min(rank, n) + 1))
        A = V @ V.T  # PSD, rank-deficient when rank+1 < n
        try:
            fact = GuardedFactorization(A, spd=True, context="property")
        except NumericalIncident:
            return
        x = fact.solve(rng.standard_normal(n))
        assert np.isfinite(x).all()

    @given(seeds, st.floats(min_value=0.0, max_value=16.0))
    @settings(max_examples=40, deadline=None)
    def test_extreme_scaling(self, seed, exponent):
        """Well-posed systems stay solvable across 16 decades of scale."""
        rng = np.random.default_rng(seed)
        M = rng.standard_normal((5, 5))
        A = (M @ M.T + 5.0 * np.eye(5)) * 10.0 ** exponent
        b = rng.standard_normal(5)
        x = GuardedFactorization(A, spd=True).solve(b)
        assert np.allclose(A @ x, b, rtol=1e-8, atol=1e-8 * np.abs(b).max())
