"""Property-based tests for the delay models — the repo's key invariants.

The heart of the reproduction is that three independent delay engines
(O(k) tree formula, first-moment linear solve, exact eigendecomposition)
describe the same physics. Hypothesis drives them across random trees and
graphs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delay.elmore_graph import graph_elmore_delays
from repro.delay.elmore_tree import elmore_delays
from repro.delay.parameters import Technology
from repro.delay.rc_builder import build_reduced_rc
from repro.delay.spice_delay import SpiceOptions, spice_delays
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import prim_mst

TECH = Technology.cmos08()

pin_lists = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
    min_size=2, max_size=10, unique=True,
)
seeds = st.integers(min_value=0, max_value=10_000)


def net_from(raw) -> Net:
    return Net.from_points([Point(float(x), float(y)) for x, y in raw])


class TestElmoreEquivalence:
    @given(pin_lists)
    @settings(max_examples=30, deadline=None)
    def test_tree_formula_equals_first_moment(self, raw):
        """The O(k) recursion and the G^-1*C solve are the same number."""
        net = net_from(raw)
        tree = prim_mst(net)
        via_tree = elmore_delays(tree, TECH)
        via_graph = graph_elmore_delays(tree, TECH)
        for node in range(net.num_pins):
            scale = max(via_tree[node], 1e-15)
            assert abs(via_tree[node] - via_graph[node]) <= 1e-9 * scale

    @given(pin_lists, seeds)
    @settings(max_examples=20, deadline=None)
    def test_first_moment_well_defined_on_graphs(self, raw, seed):
        net = net_from(raw)
        tree = prim_mst(net)
        candidates = tree.candidate_edges()
        if candidates:
            tree.add_edge(*candidates[seed % len(candidates)])
        delays = graph_elmore_delays(tree, TECH)
        assert all(np.isfinite(d) and d > 0 for d in delays.values())


class TestSpiceVsElmore:
    @given(pin_lists)
    @settings(max_examples=12, deadline=None)
    def test_elmore_upper_bounds_50pct_delay(self, raw):
        """Rubinstein-Penfield-Horowitz: the Elmore delay upper-bounds
        the 50% threshold delay on RC trees."""
        net = net_from(raw)
        tree = prim_mst(net)
        spice = spice_delays(tree, TECH, SpiceOptions(segments=1))
        elmore = graph_elmore_delays(tree, TECH)
        for sink, measured in spice.items():
            assert measured <= elmore[sink] * (1 + 1e-6)

    @given(pin_lists)
    @settings(max_examples=12, deadline=None)
    def test_50pct_delay_at_least_a_third_of_elmore(self, raw):
        """The 50% delay of a monotone RC response cannot be arbitrarily
        small relative to its first moment (ln2/2 ~ 0.35 is the single-
        pole value; wire front-loading keeps real nets above ~0.2)."""
        net = net_from(raw)
        tree = prim_mst(net)
        spice = spice_delays(tree, TECH, SpiceOptions(segments=1))
        elmore = graph_elmore_delays(tree, TECH)
        worst = max(spice, key=spice.get)
        assert spice[worst] >= 0.2 * elmore[worst]


class TestReducedRCStructure:
    @given(pin_lists, st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_conductance_matrix_is_spd(self, raw, segments):
        net = net_from(raw)
        system = build_reduced_rc(prim_mst(net), TECH, segments=segments)
        assert np.allclose(system.G, system.G.T)
        eigenvalues = np.linalg.eigvalsh(system.G)
        assert eigenvalues[0] > 0

    @given(pin_lists, st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_dc_solution_is_all_ones(self, raw, segments):
        net = net_from(raw)
        system = build_reduced_rc(prim_mst(net), TECH, segments=segments)
        assert np.allclose(system.final_voltages(), 1.0, atol=1e-9)

    @given(pin_lists)
    @settings(max_examples=20, deadline=None)
    def test_total_capacitance_conserved(self, raw):
        """Sum of node caps = wire cap x total length + sink loads,
        regardless of topology or segmentation."""
        net = net_from(raw)
        tree = prim_mst(net)
        for segments in (1, 3):
            system = build_reduced_rc(tree, TECH, segments=segments)
            expected = (TECH.wire_capacitance * tree.cost()
                        + (net.num_pins - 1) * TECH.sink_capacitance)
            assert np.isclose(system.c.sum(), expected, rtol=1e-9)


class TestDelayMonotonicity:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_scaling_geometry_up_increases_delay(self, seed):
        net = Net.random(6, seed=seed)
        bigger = Net.from_points([Point(p.x * 2, p.y * 2) for p in net.pins])
        base = max(spice_delays(prim_mst(net), TECH,
                                SpiceOptions(segments=1)).values())
        scaled = max(spice_delays(prim_mst(bigger), TECH,
                                  SpiceOptions(segments=1)).values())
        assert scaled > base

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_weaker_driver_slows_everything(self, seed):
        net = Net.random(6, seed=seed)
        tree = prim_mst(net)
        fast = spice_delays(tree, TECH.with_driver(50.0),
                            SpiceOptions(segments=1))
        slow = spice_delays(tree, TECH.with_driver(500.0),
                            SpiceOptions(segments=1))
        for sink in fast:
            assert slow[sink] > fast[sink]
