"""Property-based tests (hypothesis) for the geometric substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.hanan import bounding_box, hanan_points
from repro.geometry.net import Net
from repro.geometry.point import Point

coords = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestManhattanMetricAxioms:
    @given(points, points)
    def test_non_negative(self, a, b):
        assert a.manhattan(b) >= 0.0

    @given(points)
    def test_identity(self, a):
        assert a.manhattan(a) == 0.0

    @given(points, points)
    def test_symmetry(self, a, b):
        assert a.manhattan(b) == b.manhattan(a)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.manhattan(c) <= a.manhattan(b) + b.manhattan(c) + 1e-6

    @given(points, points)
    def test_dominates_euclidean(self, a, b):
        assert a.manhattan(b) >= a.euclidean(b) - 1e-9

    @given(points, points, coords, coords)
    def test_translation_invariance(self, a, b, dx, dy):
        moved = a.translated(dx, dy).manhattan(b.translated(dx, dy))
        assert moved == abs(a.x - b.x) + abs(a.y - b.y) or \
            abs(moved - a.manhattan(b)) <= 1e-6 * (1 + a.manhattan(b))


class TestMidpoint:
    @given(points, points)
    def test_midpoint_is_equidistant(self, a, b):
        mid = a.midpoint(b)
        da, db = mid.manhattan(a), mid.manhattan(b)
        assert abs(da - db) <= 1e-6 * (1 + da + db)

    @given(points, points)
    def test_midpoint_halves_distance(self, a, b):
        mid = a.midpoint(b)
        total = a.manhattan(b)
        assert abs(mid.manhattan(a) - total / 2) <= 1e-6 * (1 + total)


class TestBoundingBoxProperties:
    @given(st.lists(points, min_size=1, max_size=20))
    def test_contains_all_points(self, pts):
        box = bounding_box(pts)
        assert all(box.contains(p) for p in pts)

    @given(st.lists(points, min_size=2, max_size=20))
    def test_half_perimeter_lower_bounds_any_spanning_cost(self, pts):
        """HPWL never exceeds the diameter-pair Manhattan distance sum."""
        box = bounding_box(pts)
        max_pairwise = max(a.manhattan(b) for a in pts for b in pts)
        assert box.half_perimeter <= max_pairwise * 2 + 1e-6


class TestHananProperties:
    @given(st.lists(points, min_size=2, max_size=8, unique=True))
    def test_grid_size_bound(self, pts):
        grid = hanan_points(pts)
        xs = {p.x for p in pts}
        ys = {p.y for p in pts}
        assert len(grid) <= len(xs) * len(ys)

    @given(st.lists(points, min_size=2, max_size=8, unique=True))
    def test_pins_excluded(self, pts):
        assert not set(pts) & set(hanan_points(pts))

    @given(st.lists(points, min_size=2, max_size=8, unique=True))
    def test_candidates_share_coordinates_with_pins(self, pts):
        xs = {p.x for p in pts}
        ys = {p.y for p in pts}
        for candidate in hanan_points(pts):
            assert candidate.x in xs and candidate.y in ys


class TestRandomNetProperties:
    @given(st.integers(min_value=2, max_value=20),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25)
    def test_random_nets_are_valid(self, num_pins, seed):
        net = Net.random(num_pins, seed=seed)
        assert net.num_pins == num_pins
        assert len(set(net.pins)) == num_pins
