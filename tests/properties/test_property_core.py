"""Property-based tests for the routing algorithms' invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heuristics import h1, h2, h3
from repro.core.ldrg import ldrg
from repro.delay.models import ElmoreGraphModel
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.mst import prim_mst

TECH = Technology.cmos08()
ORACLE = ElmoreGraphModel(TECH)

seeds = st.integers(min_value=0, max_value=100_000)
sizes = st.integers(min_value=3, max_value=12)


class TestLdrgInvariants:
    @given(seeds, sizes)
    @settings(max_examples=20, deadline=None)
    def test_delay_never_worse_cost_never_lower(self, seed, size):
        net = Net.random(size, seed=seed)
        result = ldrg(net, TECH, delay_model=ORACLE)
        assert result.delay <= result.base_delay * (1 + 1e-12)
        assert result.cost >= result.base_cost - 1e-9

    @given(seeds, sizes)
    @settings(max_examples=20, deadline=None)
    def test_mst_edges_preserved_and_spanning(self, seed, size):
        net = Net.random(size, seed=seed)
        mst_edges = set(prim_mst(net).edges())
        result = ldrg(net, TECH, delay_model=ORACLE)
        assert mst_edges <= set(result.graph.edges())
        assert result.graph.spans_net()

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_history_monotone(self, seed, size):
        net = Net.random(size, seed=seed)
        result = ldrg(net, TECH, delay_model=ORACLE)
        delays = [result.base_delay] + [r.delay for r in result.history]
        assert all(b < a for a, b in zip(delays, delays[1:]))

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_converged_no_single_edge_helps(self, seed, size):
        """After termination, no candidate edge improves the objective —
        the definition of the greedy fixed point (Figure 4, step 2)."""
        net = Net.random(size, seed=seed)
        result = ldrg(net, TECH, delay_model=ORACLE)
        final = ORACLE.max_delay(result.graph)
        for u, v in result.graph.candidate_edges():
            trial = ORACLE.max_delay(result.graph.with_edge(u, v))
            assert trial >= final * (1 - 1e-9)


class TestHeuristicInvariants:
    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_h1_never_worse(self, seed, size):
        net = Net.random(size, seed=seed)
        result = h1(net, TECH, delay_model=ORACLE)
        assert result.delay <= result.base_delay * (1 + 1e-12)

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_h2_h3_add_at_most_one_edge_from_source(self, seed, size):
        net = Net.random(size, seed=seed)
        for heuristic in (h2, h3):
            result = heuristic(net, TECH, evaluation_model=ORACLE)
            assert result.num_added_edges <= 1
            for record in result.history:
                assert 0 in record.edge

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_heuristics_preserve_spanning(self, seed, size):
        net = Net.random(size, seed=seed)
        for heuristic in (h2, h3):
            result = heuristic(net, TECH, evaluation_model=ORACLE)
            assert result.graph.spans_net()

    @given(seeds, sizes)
    @settings(max_examples=10, deadline=None)
    def test_ldrg_first_edge_at_least_as_good_as_h1_first(self, seed, size):
        """LDRG's first edge is the best over ALL node pairs; H1's is the
        best source shortcut only. After one iteration under the same
        oracle, LDRG can therefore never be behind."""
        net = Net.random(size, seed=seed)
        full = ldrg(net, TECH, delay_model=ORACLE, max_added_edges=1)
        shortcut_only = h1(net, TECH, delay_model=ORACLE, max_iterations=1)
        assert full.delay <= shortcut_only.delay * (1 + 1e-9)
