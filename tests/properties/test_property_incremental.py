"""Property tests: incremental candidate scores match the naive oracle.

The Sherman–Morrison engine must agree with per-candidate re-evaluation
to ≤ 1e-9 relative on *every* routing the greedy loops can present it:
cyclic graphs, Steiner points (including points coincident with a pin,
whose candidate edges are zero-length pseudo-shorts), weighted
objectives, and width upgrades. These tests sample that space.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delay.incremental import (
    IncrementalElmoreEvaluator,
    NaiveCandidateEvaluator,
)
from repro.delay.models import ElmoreGraphModel
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import prim_mst

TECH = Technology.cmos08()
RELATIVE_TOLERANCE = 1e-9

seeds = st.integers(min_value=0, max_value=100_000)
sizes = st.integers(min_value=3, max_value=7)
chord_counts = st.integers(min_value=0, max_value=3)


def build_graph(size, seed, chords, steiner_mode):
    """An MST plus chords, optionally with a Steiner point attached."""
    graph = prim_mst(Net.random(size, seed=seed))
    for edge in graph.candidate_edges()[:chords]:
        graph.add_edge(*edge)
    if steiner_mode == "coincident":
        # Coincides with the last pin: edges to it are zero-length.
        node = graph.add_steiner_point(graph.position(size - 1))
        graph.add_edge(0, node)
    elif steiner_mode == "offset":
        pivot = graph.position(0)
        node = graph.add_steiner_point(Point(pivot.x + 137.0, pivot.y + 59.0))
        graph.add_edge(0, node)
    return graph


def assert_scores_match(incremental, naive):
    assert len(incremental) == len(naive)
    for got, want in zip(incremental, naive):
        assert got == pytest.approx(want, rel=RELATIVE_TOLERANCE)


class TestIncrementalMatchesNaive:
    @given(seeds, sizes, chord_counts,
           st.sampled_from(["none", "coincident", "offset"]))
    @settings(max_examples=40, deadline=None)
    def test_additions(self, seed, size, chords, steiner_mode):
        graph = build_graph(size, seed, chords, steiner_mode)
        candidates = graph.candidate_edges()
        if not candidates:
            return
        incremental = IncrementalElmoreEvaluator(TECH)
        naive = NaiveCandidateEvaluator(ElmoreGraphModel(TECH))
        assert_scores_match(incremental.score_additions(graph, candidates),
                            naive.score_additions(graph, candidates))

    @given(seeds, sizes, chord_counts)
    @settings(max_examples=25, deadline=None)
    def test_additions_weighted(self, seed, size, chords):
        graph = build_graph(size, seed, chords, "none")
        candidates = graph.candidate_edges()
        if not candidates:
            return
        weights = {s: 0.5 + (s % 3) for s in graph.sink_indices()}
        incremental = IncrementalElmoreEvaluator(TECH, weights=weights)
        naive = NaiveCandidateEvaluator(ElmoreGraphModel(TECH),
                                        weights=weights)
        assert_scores_match(incremental.score_additions(graph, candidates),
                            naive.score_additions(graph, candidates))

    @given(seeds, sizes, chord_counts,
           st.sampled_from(["none", "coincident", "offset"]))
    @settings(max_examples=25, deadline=None)
    def test_width_upgrades(self, seed, size, chords, steiner_mode):
        graph = build_graph(size, seed, chords, steiner_mode)
        widths = {edge: 1.0 for edge in graph.edges()}
        upgrades = [(edge, 3.0) for edge in graph.edges()]
        incremental = IncrementalElmoreEvaluator(TECH)
        naive = NaiveCandidateEvaluator(ElmoreGraphModel(TECH))
        assert_scores_match(
            incremental.score_width_upgrades(graph, widths, upgrades),
            naive.score_width_upgrades(graph, widths, upgrades))
