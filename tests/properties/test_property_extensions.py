"""Property-based tests for the extension modules (baselines, tree/link,
SERT taps, file formats)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delay.elmore_graph import graph_elmore_delays
from repro.delay.parameters import Technology
from repro.delay.tree_link import tree_link_elmore
from repro.core.sert import closest_point_on_lpath
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.baselines import bounded_radius_tree, prim_dijkstra_tree
from repro.graph.mst import prim_mst
from repro.graph.paths import dijkstra_lengths
from repro.io.nets_file import format_nets, parse_nets
from repro.io.routing_json import routing_from_dict, routing_to_dict

TECH = Technology.cmos08()

pin_lists = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
    min_size=2, max_size=10, unique=True,
)
coords = st.floats(min_value=0.0, max_value=1e4,
                   allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


def net_from(raw) -> Net:
    return Net.from_points([Point(float(x), float(y)) for x, y in raw])


class TestTreeLinkEquivalence:
    @given(pin_lists, st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_matches_dense_solve(self, raw, num_links):
        """The repo's two non-tree Elmore engines agree on every graph."""
        graph = prim_mst(net_from(raw))
        for edge in graph.candidate_edges()[:num_links]:
            graph.add_edge(*edge)
        dense = graph_elmore_delays(graph, TECH)
        tree_link = tree_link_elmore(graph, TECH)
        for node, value in dense.items():
            assert abs(tree_link[node] - value) <= 1e-9 * max(value, 1e-15)


class TestBaselineInvariants:
    @given(pin_lists, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_prim_dijkstra_is_spanning_tree(self, raw, c):
        tree = prim_dijkstra_tree(net_from(raw), c)
        assert tree.is_tree()
        assert tree.spans_net()

    @given(pin_lists, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_prim_dijkstra_cost_at_least_mst(self, raw, c):
        net = net_from(raw)
        assert (prim_dijkstra_tree(net, c).cost()
                >= prim_mst(net).cost() - 1e-6)

    @given(pin_lists, st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_bounded_radius_invariant(self, raw, epsilon):
        net = net_from(raw)
        tree = bounded_radius_tree(net, epsilon)
        paths = dijkstra_lengths(tree)
        for sink in range(1, net.num_pins):
            direct = tree.distance(0, sink)
            assert paths[sink] <= (1.0 + epsilon) * direct + 1e-6


class TestLPathTaps:
    @given(points, points, points)
    def test_tap_lies_on_the_path(self, a, b, s):
        tap = closest_point_on_lpath(a, b, s)
        assert a.manhattan(tap) + tap.manhattan(b) <= a.manhattan(b) + 1e-6

    @given(points, points, points)
    def test_tap_at_least_as_close_as_endpoints(self, a, b, s):
        tap = closest_point_on_lpath(a, b, s)
        assert s.manhattan(tap) <= min(s.manhattan(a), s.manhattan(b)) + 1e-6

    @given(points, points)
    def test_query_on_endpoint_returns_it(self, a, b):
        assert closest_point_on_lpath(a, b, a) == a


class TestFileFormatRoundTrips:
    @given(st.lists(pin_lists, min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_nets_file_round_trip(self, raw_nets):
        nets = [net_from(raw).renamed(f"n{i}")
                for i, raw in enumerate(raw_nets)]
        recovered = parse_nets(format_nets(nets))
        assert len(recovered) == len(nets)
        for original, parsed in zip(nets, recovered):
            assert parsed.pins == original.pins

    @given(pin_lists, st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_routing_json_round_trip(self, raw, num_links):
        graph = prim_mst(net_from(raw))
        for edge in graph.candidate_edges()[:num_links]:
            graph.add_edge(*edge)
        recovered = routing_from_dict(routing_to_dict(graph))
        assert sorted(recovered.edges()) == sorted(graph.edges())
        assert abs(recovered.cost() - graph.cost()) <= 1e-9 * (
            1 + graph.cost())
