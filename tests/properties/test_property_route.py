"""Property-based tests for the detailed-routing substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import prim_mst
from repro.route.astar import astar_route, path_length
from repro.route.embed import embed_routing
from repro.route.grid import RoutingGrid

cells = st.tuples(st.integers(0, 9), st.integers(0, 9))
pin_lists = st.lists(
    st.tuples(st.integers(100, 9_900), st.integers(100, 9_900)),
    min_size=2, max_size=8, unique=True,
)


def small_grid(blocked=()) -> RoutingGrid:
    grid = RoutingGrid(region=1_000.0, pitch=100.0)
    for cell in blocked:
        grid.block_cell(cell)
    return grid


class TestAstarProperties:
    @given(cells, cells)
    @settings(max_examples=40)
    def test_open_grid_paths_have_manhattan_length(self, start, goal):
        grid = small_grid()
        path = astar_route(grid, start, goal)
        manhattan = 100.0 * (abs(start[0] - goal[0])
                             + abs(start[1] - goal[1]))
        assert path_length(grid, path) == manhattan

    @given(cells, cells, st.sets(cells, max_size=20))
    @settings(max_examples=40)
    def test_paths_avoid_obstacles(self, start, goal, blocked):
        blocked -= {start, goal}
        grid = small_grid(blocked)
        from repro.route.grid import GridError

        try:
            path = astar_route(grid, start, goal)
        except GridError:
            return  # disconnected: a legal outcome
        assert path[0] == start and path[-1] == goal
        assert not any(grid.is_blocked(cell) for cell in path)

    @given(cells, cells, st.sets(cells, max_size=20))
    @settings(max_examples=40)
    def test_obstacles_never_shorten_paths(self, start, goal, blocked):
        blocked -= {start, goal}
        from repro.route.grid import GridError

        open_path = astar_route(small_grid(), start, goal)
        try:
            blocked_path = astar_route(small_grid(blocked), start, goal)
        except GridError:
            return
        assert len(blocked_path) >= len(open_path)


class TestEmbeddingProperties:
    @given(pin_lists)
    @settings(max_examples=15, deadline=None)
    def test_embedding_preserves_spanning_and_cost_accounting(self, raw):
        net = Net.from_points([Point(float(x), float(y)) for x, y in raw])
        tree = prim_mst(net)
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        embedding = embed_routing(tree, grid)
        embedded = embedding.to_routing_graph()
        assert embedded.spans_net()
        assert abs(embedded.cost() - embedding.total_length()) <= 1e-6 * (
            1.0 + embedding.total_length())

    @given(pin_lists)
    @settings(max_examples=15, deadline=None)
    def test_embedded_length_at_least_quantized_abstract(self, raw):
        """Grid embedding can undercut the exact abstract length only by
        the endpoint-quantization slack (one pitch per edge endpoint)."""
        net = Net.from_points([Point(float(x), float(y)) for x, y in raw])
        tree = prim_mst(net)
        grid = RoutingGrid(region=10_000.0, pitch=250.0)
        embedding = embed_routing(tree, grid)
        slack = 2.0 * grid.pitch * tree.num_edges
        assert embedding.total_length() >= tree.cost() - slack
