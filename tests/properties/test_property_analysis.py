"""Property tests: every routing algorithm's output is lint-clean.

The static-analysis acceptance criterion for the lint pass is that it
never flags a routing produced by the repo's own algorithms as broken
— clean outputs are the quiet fixture, corrupted JSON the loud one.
Warnings and infos are allowed (e.g. LDRG legitimately adds chords of
equal Manhattan length); error-severity diagnostics are not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_graph, lint_routing_rc
from repro.analysis.diagnostics import Severity, has_errors
from repro.core.heuristics import h1, h2, h3
from repro.core.ldrg import ldrg
from repro.core.sldrg import sldrg
from repro.delay.models import ElmoreGraphModel
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.graph.mst import prim_mst

TECH = Technology.cmos08()
ORACLE = ElmoreGraphModel(TECH)

seeds = st.integers(min_value=0, max_value=100_000)
sizes = st.integers(min_value=3, max_value=10)


def assert_lint_clean(graph):
    diags = lint_graph(graph) + lint_routing_rc(graph, TECH)
    errors = [d for d in diags if d.severity >= Severity.ERROR]
    assert not has_errors(diags), [d.render() for d in errors]


class TestRoutingsAreLintClean:
    @given(seeds, sizes)
    @settings(max_examples=20, deadline=None)
    def test_mst(self, seed, size):
        assert_lint_clean(prim_mst(Net.random(size, seed=seed)))

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_ldrg(self, seed, size):
        net = Net.random(size, seed=seed)
        assert_lint_clean(ldrg(net, TECH, delay_model=ORACLE).graph)

    @given(seeds, sizes)
    @settings(max_examples=10, deadline=None)
    def test_sldrg(self, seed, size):
        net = Net.random(size, seed=seed)
        assert_lint_clean(sldrg(net, TECH, delay_model=ORACLE).graph)

    @given(seeds, sizes)
    @settings(max_examples=10, deadline=None)
    def test_h1(self, seed, size):
        net = Net.random(size, seed=seed)
        assert_lint_clean(h1(net, TECH, delay_model=ORACLE).graph)

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_h2(self, seed, size):
        net = Net.random(size, seed=seed)
        assert_lint_clean(h2(net, TECH, evaluation_model=ORACLE).graph)

    @given(seeds, sizes)
    @settings(max_examples=15, deadline=None)
    def test_h3(self, seed, size):
        net = Net.random(size, seed=seed)
        assert_lint_clean(h3(net, TECH, evaluation_model=ORACLE).graph)
