"""Property-based tests for spanning trees and routing graphs."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import kruskal_mst, prim_mst
from repro.graph.paths import dijkstra_lengths
from repro.graph.steiner import iterated_one_steiner

# Distinct integer-coordinate pins: float exactness keeps comparisons crisp.
pin_lists = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
    min_size=2, max_size=12, unique=True,
)


def net_from(raw) -> Net:
    return Net.from_points([Point(float(x), float(y)) for x, y in raw])


class TestMSTProperties:
    @given(pin_lists)
    @settings(max_examples=40)
    def test_prim_is_spanning_tree(self, raw):
        tree = prim_mst(net_from(raw))
        assert tree.is_tree()
        assert tree.num_edges == len(raw) - 1

    @given(pin_lists)
    @settings(max_examples=40)
    def test_prim_and_kruskal_agree_on_cost(self, raw):
        net = net_from(raw)
        prim_cost = prim_mst(net).cost()
        kruskal_cost = kruskal_mst(net).cost()
        assert abs(prim_cost - kruskal_cost) <= 1e-6 * (1 + prim_cost)

    @given(pin_lists)
    @settings(max_examples=30)
    def test_matches_networkx_mst(self, raw):
        """Cross-validate against networkx's independent implementation."""
        net = net_from(raw)
        graph = nx.Graph()
        pins = net.pins
        for i in range(len(pins)):
            for j in range(i + 1, len(pins)):
                graph.add_edge(i, j, weight=pins[i].manhattan(pins[j]))
        nx_cost = sum(d["weight"] for _, _, d in
                      nx.minimum_spanning_edges(graph, data=True))
        ours = prim_mst(net).cost()
        assert abs(ours - nx_cost) <= 1e-6 * (1 + ours)

    @given(pin_lists)
    @settings(max_examples=30)
    def test_cut_property_no_cheaper_swap(self, raw):
        """Removing any MST edge and reconnecting with any cross edge
        never gets cheaper (the exchange argument)."""
        net = net_from(raw)
        tree = prim_mst(net)
        edges = tree.edges()
        if not edges:
            return
        u, v = edges[0]
        removed_len = tree.edge_length(u, v)
        tree.remove_edge(u, v)
        side = set(dijkstra_lengths(tree, start=u))
        other = set(tree.nodes()) - side
        cheapest_cross = min(tree.distance(a, b) for a in side for b in other)
        assert removed_len <= cheapest_cross + 1e-6


class TestSteinerProperties:
    @given(pin_lists)
    @settings(max_examples=15, deadline=None)
    def test_steiner_never_above_mst(self, raw):
        net = net_from(raw)
        assert (iterated_one_steiner(net).cost()
                <= prim_mst(net).cost() + 1e-6)

    @given(pin_lists)
    @settings(max_examples=15, deadline=None)
    def test_steiner_at_least_half_mst(self, raw):
        """Rectilinear Steiner ratio: SMT >= 2/3 MST (we use the weaker
        1/2 bound to stay safely clear of float noise)."""
        net = net_from(raw)
        assert (iterated_one_steiner(net).cost()
                >= 0.5 * prim_mst(net).cost() - 1e-6)


class TestDijkstraProperties:
    @given(pin_lists)
    @settings(max_examples=30)
    def test_tree_paths_at_least_direct_distance(self, raw):
        net = net_from(raw)
        tree = prim_mst(net)
        lengths = dijkstra_lengths(tree)
        for node in range(net.num_pins):
            assert lengths[node] >= tree.distance(0, node) - 1e-6

    @given(pin_lists)
    @settings(max_examples=30)
    def test_adding_edge_never_lengthens_paths(self, raw):
        net = net_from(raw)
        tree = prim_mst(net)
        candidates = tree.candidate_edges()
        if not candidates:
            return
        before = dijkstra_lengths(tree)
        after = dijkstra_lengths(tree.with_edge(*candidates[0]))
        for node, dist in before.items():
            assert after[node] <= dist + 1e-6
