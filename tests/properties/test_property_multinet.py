"""Property tests: fleet-batched evaluation equals the per-net engine.

ISSUE 8's acceptance bar, sampled over the space the greedy loops can
present: for any fleet of nets — mixed sizes, cyclic graphs, Steiner
points with zero-length pseudo-short candidates — the stacked
:class:`~repro.delay.multinet.FleetEvaluator` must reproduce the
sequential incremental engine's candidate scores to ≤ 1e-9 relative,
:func:`~repro.delay.multinet.route_fleet` must choose the identical
edges, and a member's numbers must be bitwise independent of its
batch-mates and of its position in the batch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ldrg import ldrg
from repro.delay.incremental import IncrementalElmoreEvaluator
from repro.delay.multinet import FleetEvaluator, route_fleet
from repro.delay.parameters import Technology
from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import prim_mst

TECH = Technology.cmos08()
RELATIVE_TOLERANCE = 1e-9

seeds = st.integers(min_value=0, max_value=100_000)
fleet_specs = st.lists(
    st.tuples(st.integers(min_value=3, max_value=7),   # pins
              st.integers(min_value=0, max_value=2),   # chords
              seeds),
    min_size=1, max_size=6)


def build_graph(size, seed, chords, steiner_mode="none"):
    graph = prim_mst(Net.random(size, seed=seed))
    for edge in graph.candidate_edges()[:chords]:
        graph.add_edge(*edge)
    if steiner_mode == "coincident":
        node = graph.add_steiner_point(graph.position(size - 1))
        graph.add_edge(0, node)
    elif steiner_mode == "offset":
        pivot = graph.position(0)
        node = graph.add_steiner_point(Point(pivot.x + 137.0,
                                             pivot.y + 59.0))
        graph.add_edge(0, node)
    return graph


def assert_scores_match(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g == pytest.approx(w, rel=RELATIVE_TOLERANCE)


class TestFleetMatchesIncremental:
    @given(fleet_specs,
           st.sampled_from(["none", "coincident", "offset"]))
    @settings(max_examples=30, deadline=None)
    def test_addition_scores(self, specs, steiner_mode):
        graphs = [build_graph(size, seed, chords, steiner_mode)
                  for size, chords, seed in specs]
        batches = [g.candidate_edges() for g in graphs]
        _, scores = FleetEvaluator(TECH).evaluate_generation(graphs,
                                                             batches)
        for graph, batch, got in zip(graphs, batches, scores):
            want = IncrementalElmoreEvaluator(TECH).score_additions(
                graph, batch)
            assert_scores_match(got, want)

    @given(fleet_specs)
    @settings(max_examples=20, deadline=None)
    def test_weighted_addition_scores(self, specs):
        graphs = [build_graph(size, seed, chords)
                  for size, chords, seed in specs]
        batches = [g.candidate_edges() for g in graphs]
        weights = {}
        for graph in graphs:
            for sink in graph.sink_indices():
                weights.setdefault(sink, 0.5 + (sink % 3))
        _, scores = FleetEvaluator(TECH, weights=weights).\
            evaluate_generation(graphs, batches)
        for graph, batch, got in zip(graphs, batches, scores):
            want = IncrementalElmoreEvaluator(
                TECH, weights=weights).score_additions(graph, batch)
            assert_scores_match(got, want)

    @given(seeds, st.integers(min_value=3, max_value=7),
           st.sampled_from(["none", "coincident", "offset"]))
    @settings(max_examples=20, deadline=None)
    def test_width_upgrades(self, seed, size, steiner_mode):
        graph = build_graph(size, seed, 1, steiner_mode)
        widths = {edge: 1.0 for edge in graph.edges()}
        upgrades = [(edge, 3.0) for edge in graph.edges()]
        assert_scores_match(
            FleetEvaluator(TECH).score_width_upgrades(graph, widths,
                                                      upgrades),
            IncrementalElmoreEvaluator(TECH).score_width_upgrades(
                graph, widths, upgrades))


class TestBatchInvariance:
    @given(fleet_specs)
    @settings(max_examples=20, deadline=None)
    def test_member_bits_ignore_batch_mates(self, specs):
        graphs = [build_graph(size, seed, chords)
                  for size, chords, seed in specs]
        batches = [g.candidate_edges() for g in graphs]
        whole_delays, whole_scores = FleetEvaluator(TECH).\
            evaluate_generation(graphs, batches)
        for i, graph in enumerate(graphs):
            alone_delays, alone_scores = FleetEvaluator(
                TECH).evaluate_generation([graph], [batches[i]])
            assert alone_scores[0] == whole_scores[i]
            assert alone_delays[0] == whole_delays[i]


class TestRouteFleetMatchesSequential:
    @given(st.lists(st.tuples(st.integers(min_value=3, max_value=6), seeds),
                    min_size=1, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_identical_chosen_edges_and_close_delays(self, specs):
        nets = [Net.random(size, seed=seed, name=f"n{i}")
                for i, (size, seed) in enumerate(specs)]
        sequential = [ldrg(net, TECH, delay_model="elmore",
                           candidate_evaluator="incremental")
                      for net in nets]
        fleet = route_fleet(nets, TECH)
        for seq, bat in zip(sequential, fleet):
            assert sorted(seq.graph.edges()) == sorted(bat.graph.edges())
            for sink, want in seq.delays.items():
                assert bat.delays[sink] == pytest.approx(
                    want, rel=RELATIVE_TOLERANCE)
