"""Property-based tests for the circuit simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.analytic import AnalyticRC, ReducedRC
from repro.circuit.measure import threshold_crossing
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient
from repro.circuit.waveform import Step

resistances = st.floats(min_value=1.0, max_value=1e5)
capacitances = st.floats(min_value=1e-15, max_value=1e-9)


class TestSingleRCUniversality:
    @given(resistances, capacitances)
    @settings(max_examples=25, deadline=None)
    def test_rc_charge_curve(self, r, c):
        """v(t) = 1 - exp(-t/RC) for every R, C over 8 decades."""
        ckt = Circuit()
        ckt.add_voltage_source("vin", "in", GROUND, Step())
        ckt.add_resistor("r1", "in", "out", r)
        ckt.add_capacitor("c1", "out", GROUND, c)
        tau = r * c
        result = transient(ckt, t_stop=5 * tau, num_steps=800)
        expected = 1.0 - np.exp(-result.times / tau)
        assert np.allclose(result.voltage("out"), expected, atol=1e-3)

    @given(resistances, capacitances)
    @settings(max_examples=25, deadline=None)
    def test_50pct_crossing_scale_invariance(self, r, c):
        """The 50% crossing is RC ln2 regardless of absolute scale."""
        g = 1.0 / r
        system = ReducedRC(G=np.array([[g]]), c=np.array([c]),
                           b=np.array([g]), labels=["out"])
        sol = AnalyticRC(system)
        expected = r * c * np.log(2.0)
        measured = sol.crossing_time("out", 0.5)
        assert abs(measured - expected) <= 1e-6 * expected


def random_rc_ladder(draw_values):
    """Build an n-stage RC ladder circuit from drawn element values."""
    ckt = Circuit("ladder")
    ckt.add_voltage_source("vin", "n0", GROUND, Step())
    prev = "n0"
    for i, (r, c) in enumerate(draw_values, start=1):
        node = f"n{i}"
        ckt.add_resistor(f"r{i}", prev, node, r)
        ckt.add_capacitor(f"c{i}", node, GROUND, c)
        prev = node
    return ckt, prev


ladder_stages = st.lists(st.tuples(resistances, capacitances),
                         min_size=1, max_size=5)


class TestLadderProperties:
    @given(ladder_stages)
    @settings(max_examples=15, deadline=None)
    def test_everything_settles_to_source(self, stages):
        ckt, last = random_rc_ladder(stages)
        tau_bound = sum(r for r, _ in stages) * sum(c for _, c in stages)
        result = transient(ckt, t_stop=10 * tau_bound, num_steps=600)
        finals = result.final_voltages()
        for node, value in finals.items():
            assert abs(value - 1.0) < 0.02

    @given(ladder_stages)
    @settings(max_examples=15, deadline=None)
    def test_monotone_rise_along_ladder(self, stages):
        """RC ladders driven by a step rise monotonically (no ringing is
        possible without inductance). Checked with backward Euler: the
        L-stable method inherits the circuit's monotonicity even when the
        fixed step is much larger than the fastest time constant, whereas
        trapezoidal integration may micro-oscillate there (A-stable but
        not L-stable) without that being a circuit property."""
        ckt, last = random_rc_ladder(stages)
        tau_bound = sum(r for r, _ in stages) * sum(c for _, c in stages)
        result = transient(ckt, t_stop=5 * tau_bound, num_steps=600,
                           method="backward-euler")
        wave = result.voltage(last)
        assert np.all(np.diff(wave) >= -1e-9)

    @given(ladder_stages)
    @settings(max_examples=15, deadline=None)
    def test_downstream_nodes_lag_upstream(self, stages):
        ckt, last = random_rc_ladder(stages)
        if len(stages) < 2:
            return
        tau_bound = sum(r for r, _ in stages) * sum(c for _, c in stages)
        result = transient(ckt, t_stop=10 * tau_bound, num_steps=1200)
        t_first = threshold_crossing(result.times, result.voltage("n1"), 0.5)
        t_last = threshold_crossing(result.times, result.voltage(last), 0.5)
        if t_first is not None and t_last is not None:
            assert t_last >= t_first - 1e-12


class TestMeasureProperties:
    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_crossing_inverse_of_ramp(self, threshold):
        times = np.linspace(0.0, 1.0, 257)
        values = times.copy()
        measured = threshold_crossing(times, values, threshold)
        assert abs(measured - threshold) < 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0),
                    min_size=2, max_size=40))
    def test_crossing_time_is_within_range(self, raw):
        values = np.array(raw)
        times = np.arange(len(values), dtype=float)
        crossing = threshold_crossing(times, values, 5.0)
        if crossing is not None:
            assert times[0] <= crossing <= times[-1]
