"""Unit tests for shortest-path queries."""

import pytest

from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.paths import dijkstra_lengths, graph_radius, tree_path
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError


@pytest.fixture
def ring() -> RoutingGraph:
    net = Net.from_points([(0, 0), (10, 0), (10, 10), (0, 10)], name="ring")
    return RoutingGraph.from_edges(net, [(0, 1), (1, 2), (2, 3), (3, 0)])


class TestDijkstra:
    def test_chain_distances(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        lengths = dijkstra_lengths(graph)
        assert lengths == {0: 0.0, 1: 1000.0, 2: 2000.0}

    def test_cycle_takes_shorter_way_around(self, ring):
        lengths = dijkstra_lengths(ring)
        assert lengths[2] == 20.0  # both ways tie at 20
        assert lengths[3] == 10.0  # direct edge, not 0-1-2-3

    def test_unreachable_nodes_absent(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        lengths = dijkstra_lengths(graph)
        assert 2 not in lengths

    def test_custom_start(self, ring):
        lengths = dijkstra_lengths(ring, start=2)
        assert lengths[0] == 20.0

    def test_unknown_start_raises(self, ring):
        with pytest.raises(RoutingGraphError, match="unknown start"):
            dijkstra_lengths(ring, start=77)

    def test_shortcut_edge_reduces_distance(self, net10):
        tree = prim_mst(net10)
        before = dijkstra_lengths(tree)
        far = max(range(1, 10), key=before.get)
        shortcut = tree.with_edge(0, far)
        after = dijkstra_lengths(shortcut)
        assert after[far] <= before[far]
        assert all(after[n] <= before[n] + 1e-9 for n in before)


class TestGraphRadius:
    def test_chain_radius(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        assert graph_radius(graph) == 2000.0

    def test_disconnected_raises(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        with pytest.raises(RoutingGraphError, match="unreachable"):
            graph_radius(graph)

    def test_radius_only_counts_pins(self, line_net):
        from repro.geometry.point import Point

        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        far = graph.add_steiner_point(Point(2000.0, 5000.0))
        graph.add_edge(2, far)
        assert graph_radius(graph) == 2000.0


class TestTreePath:
    def test_path_on_chain(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        assert tree_path(graph, 2) == [0, 1, 2]
        assert tree_path(graph, 0) == [0]

    def test_rejects_cyclic_graph(self, ring):
        with pytest.raises(RoutingGraphError, match="only defined for trees"):
            tree_path(ring, 2)
