"""Unit tests for the RoutingGraph data structure."""

import pytest

from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError


@pytest.fixture
def square_net() -> Net:
    return Net.from_points([(0, 0), (10, 0), (10, 10), (0, 10)], name="sq")


@pytest.fixture
def chain(square_net) -> RoutingGraph:
    return RoutingGraph.from_edges(square_net, [(0, 1), (1, 2), (2, 3)])


class TestNodes:
    def test_source_is_zero(self, square_net):
        assert RoutingGraph(square_net).source == 0

    def test_nodes_start_as_pins(self, square_net):
        graph = RoutingGraph(square_net)
        assert sorted(graph.nodes()) == [0, 1, 2, 3]
        assert graph.num_pins == 4

    def test_positions_match_net(self, square_net):
        graph = RoutingGraph(square_net)
        for i, pin in enumerate(square_net.pins):
            assert graph.position(i) == pin

    def test_unknown_node_raises(self, square_net):
        with pytest.raises(RoutingGraphError, match="unknown node"):
            RoutingGraph(square_net).position(99)

    def test_add_steiner_point(self, square_net):
        graph = RoutingGraph(square_net)
        idx = graph.add_steiner_point(Point(5, 5))
        assert idx == 4
        assert graph.is_steiner(idx)
        assert not graph.is_steiner(0)
        assert graph.position(idx) == Point(5, 5)

    def test_remove_steiner_point_drops_edges(self, square_net):
        graph = RoutingGraph(square_net)
        idx = graph.add_steiner_point(Point(5, 5))
        graph.add_edge(0, idx)
        graph.add_edge(idx, 2)
        graph.remove_node(idx)
        assert idx not in set(graph.nodes())
        assert graph.num_edges == 0

    def test_cannot_remove_pin(self, square_net):
        graph = RoutingGraph(square_net)
        with pytest.raises(RoutingGraphError, match="net pin"):
            graph.remove_node(1)


class TestEdges:
    def test_add_edge_returns_manhattan_length(self, square_net):
        graph = RoutingGraph(square_net)
        assert graph.add_edge(0, 2) == 20.0  # (0,0) -> (10,10)

    def test_edges_are_undirected(self, square_net):
        graph = RoutingGraph(square_net)
        graph.add_edge(2, 0)
        assert graph.has_edge(0, 2) and graph.has_edge(2, 0)
        assert graph.edges() == [(0, 2)]

    def test_rejects_self_loop(self, square_net):
        with pytest.raises(RoutingGraphError, match="self-loop"):
            RoutingGraph(square_net).add_edge(1, 1)

    def test_rejects_duplicate_edge(self, square_net):
        graph = RoutingGraph(square_net)
        graph.add_edge(0, 1)
        with pytest.raises(RoutingGraphError, match="already present"):
            graph.add_edge(1, 0)

    def test_rejects_unknown_endpoint(self, square_net):
        with pytest.raises(RoutingGraphError, match="unknown node"):
            RoutingGraph(square_net).add_edge(0, 7)

    def test_remove_edge(self, chain):
        chain.remove_edge(1, 2)
        assert not chain.has_edge(1, 2)
        assert chain.num_edges == 2

    def test_remove_missing_edge_raises(self, chain):
        with pytest.raises(RoutingGraphError, match="not present"):
            chain.remove_edge(0, 3)

    def test_edge_lengths_map(self, chain):
        lengths = chain.edge_lengths()
        assert lengths[(0, 1)] == 10.0
        assert set(lengths) == {(0, 1), (1, 2), (2, 3)}

    def test_degree_and_neighbors(self, chain):
        assert chain.degree(1) == 2
        assert sorted(chain.neighbors(1)) == [0, 2]

    def test_candidate_edges_excludes_existing(self, chain):
        candidates = chain.candidate_edges()
        assert (0, 1) not in candidates
        assert (0, 2) in candidates and (0, 3) in candidates and (1, 3) in candidates
        assert len(candidates) == 3  # C(4,2) - 3 existing


class TestProperties:
    def test_cost_sums_lengths(self, chain):
        assert chain.cost() == 30.0

    def test_chain_is_tree(self, chain):
        assert chain.is_tree()
        assert chain.is_connected()
        assert chain.spans_net()

    def test_cycle_is_not_tree_but_connected(self, chain):
        chain.add_edge(0, 3)
        assert not chain.is_tree()
        assert chain.is_connected()
        assert chain.spans_net()

    def test_disconnected_graph(self, square_net):
        graph = RoutingGraph.from_edges(square_net, [(0, 1)])
        assert not graph.is_connected()
        assert not graph.spans_net()

    def test_dangling_steiner_does_not_break_spanning(self, chain):
        chain.add_steiner_point(Point(5, 5))
        assert chain.spans_net()
        assert not chain.is_connected()

    def test_rooted_parents_on_chain(self, chain):
        parents = chain.rooted_parents()
        assert parents == {0: None, 1: 0, 2: 1, 3: 2}

    def test_rooted_parents_rejects_cycles(self, chain):
        chain.add_edge(0, 3)
        with pytest.raises(RoutingGraphError, match="only defined for trees"):
            chain.rooted_parents()


class TestCopySemantics:
    def test_copy_is_independent(self, chain):
        clone = chain.copy()
        clone.add_edge(0, 2)
        assert not chain.has_edge(0, 2)
        assert clone.has_edge(0, 2)

    def test_with_edge_leaves_original(self, chain):
        grown = chain.with_edge(0, 3)
        assert grown.num_edges == chain.num_edges + 1
        assert not chain.has_edge(0, 3)

    def test_copy_preserves_steiner_markers(self, square_net):
        graph = RoutingGraph(square_net)
        idx = graph.add_steiner_point(Point(5, 5))
        clone = graph.copy()
        assert clone.is_steiner(idx)

    def test_steiner_indices_never_reused_after_copy(self, square_net):
        graph = RoutingGraph(square_net)
        first = graph.add_steiner_point(Point(5, 5))
        clone = graph.copy()
        second = clone.add_steiner_point(Point(6, 6))
        assert second > first


class TestExport:
    def test_to_networkx_roundtrip(self, chain):
        nx_graph = chain.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 3
        assert nx_graph[0][1]["weight"] == 10.0
        assert nx_graph.nodes[0]["pos"] == (0.0, 0.0)
        assert nx_graph.nodes[0]["steiner"] is False

    def test_repr_mentions_kind(self, chain):
        assert "tree" in repr(chain)
        chain.add_edge(0, 2)
        assert "graph" in repr(chain)
