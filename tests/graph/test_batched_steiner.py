"""Unit tests for the Batched 1-Steiner variant."""

import pytest

from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.steiner import batched_one_steiner, iterated_one_steiner


class TestBatchedOneSteiner:
    def test_cross_net_center(self):
        net = Net.from_points(
            [(0, 10), (20, 10), (10, 0), (10, 20)], name="plus")
        tree = batched_one_steiner(net)
        assert tree.cost() == pytest.approx(40.0)
        assert len(tree.steiner) == 1

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_never_worse_than_mst(self, seed):
        net = Net.random(10, seed=seed)
        assert batched_one_steiner(net).cost() <= prim_mst(net).cost() + 1e-6

    @pytest.mark.parametrize("seed", [0, 2, 4])
    def test_comparable_to_iterated(self, seed):
        """Batched admits rounds greedily; its cost should track the
        iterated version within a small factor."""
        net = Net.random(10, seed=seed)
        batched = batched_one_steiner(net).cost()
        iterated = iterated_one_steiner(net).cost()
        assert batched <= iterated * 1.05

    def test_is_spanning_tree(self):
        net = Net.random(11, seed=7)
        tree = batched_one_steiner(net)
        assert tree.is_tree()
        assert tree.spans_net()

    def test_steiner_degree_invariant(self):
        net = Net.random(12, seed=9)
        tree = batched_one_steiner(net)
        for node in tree.steiner:
            assert tree.degree(node) >= 3

    def test_cap_respected(self):
        net = Net.random(10, seed=3)
        tree = batched_one_steiner(net, max_steiner_points=1)
        assert len(tree.steiner) <= 1

    def test_deterministic(self):
        net = Net.random(10, seed=5)
        a = batched_one_steiner(net)
        b = batched_one_steiner(net)
        assert a.cost() == pytest.approx(b.cost())
