"""Unit tests for routing-graph validation helpers."""

import pytest

from repro.geometry.point import Point
from repro.graph.routing_graph import RoutingGraph, RoutingGraphError
from repro.graph.validation import check_connected, check_spanning, check_tree


class TestCheckConnected:
    def test_passes_on_tree(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        check_connected(graph)  # no raise

    def test_fails_on_disconnected(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        with pytest.raises(RoutingGraphError, match="disconnected"):
            check_connected(graph)


class TestCheckSpanning:
    def test_ignores_dangling_steiner(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)])
        graph.add_steiner_point(Point(500, 500))
        check_spanning(graph)  # dangling Steiner point is fine

    def test_fails_on_unreached_pin(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        with pytest.raises(RoutingGraphError, match="does not span"):
            check_spanning(graph)


class TestCheckTree:
    def test_passes_on_tree(self, line_net):
        check_tree(RoutingGraph.from_edges(line_net, [(0, 1), (1, 2)]))

    def test_fails_on_cycle(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(RoutingGraphError, match="cycles"):
            check_tree(graph)

    def test_fails_on_disconnected(self, line_net):
        graph = RoutingGraph.from_edges(line_net, [(0, 1)])
        with pytest.raises(RoutingGraphError, match="disconnected"):
            check_tree(graph)
