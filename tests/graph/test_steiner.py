"""Unit tests for the Iterated 1-Steiner implementation."""

import pytest

from repro.geometry.net import Net
from repro.graph.mst import prim_mst
from repro.graph.steiner import iterated_one_steiner


class TestCanonicalCases:
    def test_cross_net_gets_center_steiner_point(self):
        # Plus-shaped net: the optimal Steiner topology uses the center.
        net = Net.from_points(
            [(0, 10), (20, 10), (10, 0), (10, 20)], name="plus")
        tree = iterated_one_steiner(net)
        assert tree.is_tree()
        assert len(tree.steiner) == 1
        center = tree.position(next(iter(tree.steiner)))
        assert (center.x, center.y) == (10, 10)
        assert tree.cost() == pytest.approx(40.0)

    def test_l_shaped_two_pin_net_needs_no_steiner(self):
        net = Net.from_points([(0, 0), (10, 7)], name="l2")
        tree = iterated_one_steiner(net)
        assert len(tree.steiner) == 0
        assert tree.cost() == pytest.approx(17.0)

    def test_collinear_net_needs_no_steiner(self, line_net):
        tree = iterated_one_steiner(line_net)
        assert len(tree.steiner) == 0
        assert tree.cost() == pytest.approx(2000.0)


class TestInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_never_worse_than_mst(self, seed):
        net = Net.random(9, seed=seed)
        steiner = iterated_one_steiner(net)
        mst = prim_mst(net)
        assert steiner.cost() <= mst.cost() + 1e-6

    @pytest.mark.parametrize("seed", [0, 5])
    def test_result_is_spanning_tree(self, seed):
        net = Net.random(11, seed=seed)
        tree = iterated_one_steiner(net)
        assert tree.is_tree()
        assert tree.spans_net()

    def test_steiner_points_have_degree_three_plus(self):
        net = Net.random(12, seed=8)
        tree = iterated_one_steiner(net)
        for node in tree.steiner:
            assert tree.degree(node) >= 3

    def test_deterministic(self):
        net = Net.random(10, seed=21)
        a = iterated_one_steiner(net)
        b = iterated_one_steiner(net)
        assert a.cost() == pytest.approx(b.cost())
        assert sorted(a.edges()) == sorted(b.edges())

    def test_max_steiner_points_cap(self):
        net = Net.random(12, seed=8)
        tree = iterated_one_steiner(net, max_steiner_points=1)
        assert len(tree.steiner) <= 1

    def test_zero_cap_returns_mst_cost(self):
        net = Net.random(10, seed=4)
        capped = iterated_one_steiner(net, max_steiner_points=0)
        assert capped.cost() == pytest.approx(prim_mst(net).cost())

    def test_typical_savings_are_real(self):
        # Across a batch, Iterated 1-Steiner should save wire on average
        # (literature: ~10% below MST for uniform nets).
        ratios = []
        for seed in range(6):
            net = Net.random(10, seed=100 + seed)
            ratios.append(iterated_one_steiner(net).cost()
                          / prim_mst(net).cost())
        assert min(ratios) < 1.0
        assert sum(ratios) / len(ratios) < 0.99
