"""Unit tests for the Prim–Dijkstra and bounded-radius tree baselines."""

import pytest

from repro.geometry.net import Net
from repro.graph.baselines import bounded_radius_tree, prim_dijkstra_tree
from repro.graph.mst import prim_mst
from repro.graph.paths import dijkstra_lengths, graph_radius


class TestPrimDijkstra:
    def test_c_zero_is_prim(self, net10):
        pd = prim_dijkstra_tree(net10, 0.0)
        assert pd.cost() == pytest.approx(prim_mst(net10).cost())

    def test_c_one_is_dijkstra(self, net10):
        """At c = 1 every source–pin tree path is a shortest path."""
        pd = prim_dijkstra_tree(net10, 1.0)
        tree_paths = dijkstra_lengths(pd)
        for sink in range(1, 10):
            # Direct Manhattan distance is the shortest-path length in a
            # complete geometric graph (triangle inequality).
            assert tree_paths[sink] == pytest.approx(
                pd.distance(0, sink), rel=1e-9)

    def test_is_spanning_tree(self, net10):
        for c in (0.0, 0.5, 1.0):
            tree = prim_dijkstra_tree(net10, c)
            assert tree.is_tree()
            assert tree.spans_net()

    def test_tradeoff_monotone_in_c(self):
        """Cost grows and radius shrinks (weakly) as c rises — averaged
        over nets, the AHHK tradeoff."""
        total = {0.0: [0.0, 0.0], 0.5: [0.0, 0.0], 1.0: [0.0, 0.0]}
        for seed in range(6):
            net = Net.random(12, seed=seed)
            for c in total:
                tree = prim_dijkstra_tree(net, c)
                total[c][0] += tree.cost()
                total[c][1] += graph_radius(tree)
        assert total[0.0][0] <= total[0.5][0] + 1e-6 <= total[1.0][0] + 1e-5
        assert total[1.0][1] <= total[0.5][1] + 1e-6 <= total[0.0][1] + 1e-5

    def test_rejects_out_of_range_c(self, net10):
        with pytest.raises(ValueError, match="c must lie"):
            prim_dijkstra_tree(net10, 1.5)

    def test_deterministic(self, net10):
        a = prim_dijkstra_tree(net10, 0.3)
        b = prim_dijkstra_tree(net10, 0.3)
        assert sorted(a.edges()) == sorted(b.edges())


class TestBoundedRadius:
    @pytest.mark.parametrize("epsilon", [0.0, 0.2, 1.0])
    def test_radius_invariant(self, epsilon):
        """pathlength(v) <= (1 + eps) * dist(source, v) for every pin."""
        for seed in range(4):
            net = Net.random(12, seed=seed)
            tree = bounded_radius_tree(net, epsilon)
            paths = dijkstra_lengths(tree)
            for sink in range(1, 12):
                assert paths[sink] <= ((1.0 + epsilon)
                                       * tree.distance(0, sink) + 1e-6)

    def test_is_spanning_tree(self, net10):
        tree = bounded_radius_tree(net10, 0.5)
        assert tree.is_tree()
        assert tree.spans_net()

    def test_epsilon_zero_gives_shortest_paths(self, net10):
        tree = bounded_radius_tree(net10, 0.0)
        paths = dijkstra_lengths(tree)
        for sink in range(1, 10):
            assert paths[sink] == pytest.approx(tree.distance(0, sink))

    def test_large_epsilon_approaches_mst_cost(self, net10):
        relaxed = bounded_radius_tree(net10, 100.0)
        assert relaxed.cost() == pytest.approx(prim_mst(net10).cost(),
                                               rel=0.01)

    def test_cost_decreases_with_epsilon(self):
        for seed in range(4):
            net = Net.random(12, seed=seed)
            tight = bounded_radius_tree(net, 0.0).cost()
            loose = bounded_radius_tree(net, 1.0).cost()
            assert loose <= tight + 1e-6

    def test_rejects_negative_epsilon(self, net10):
        with pytest.raises(ValueError, match="non-negative"):
            bounded_radius_tree(net10, -0.1)
