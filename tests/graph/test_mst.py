"""Unit tests for minimum spanning tree construction."""

import numpy as np
import pytest

from repro.geometry.net import Net
from repro.geometry.point import Point
from repro.graph.mst import (
    kruskal_mst,
    kruskal_mst_from_edges,
    manhattan_matrix,
    mst_cost_with_extra_point,
    prim_mst,
    prim_mst_indices,
)


class TestManhattanMatrix:
    def test_values(self):
        points = [Point(0, 0), Point(1, 2), Point(3, 0)]
        dist = manhattan_matrix(points)
        assert dist[0, 1] == 3
        assert dist[0, 2] == 3
        assert dist[1, 2] == 4

    def test_symmetric_zero_diagonal(self):
        points = [Point(0, 0), Point(5, 7), Point(-1, 2)]
        dist = manhattan_matrix(points)
        assert np.allclose(dist, dist.T)
        assert np.all(np.diag(dist) == 0)


class TestPrim:
    def test_two_points(self):
        edges = prim_mst_indices([Point(0, 0), Point(1, 1)])
        assert edges == [(0, 1)]

    def test_single_point(self):
        assert prim_mst_indices([Point(0, 0)]) == []

    def test_chain_topology(self):
        points = [Point(0, 0), Point(10, 0), Point(20, 0)]
        edges = set(prim_mst_indices(points))
        assert edges == {(0, 1), (1, 2)}

    def test_edge_count(self, net10):
        assert len(prim_mst_indices(net10.pins)) == net10.num_pins - 1

    def test_result_is_spanning_tree(self, net10):
        tree = prim_mst(net10)
        assert tree.is_tree()
        assert tree.spans_net()

    def test_deterministic(self, net10):
        assert prim_mst_indices(net10.pins) == prim_mst_indices(net10.pins)


class TestKruskal:
    def test_matches_prim_cost(self, net10):
        assert kruskal_mst(net10).cost() == pytest.approx(
            prim_mst(net10).cost())

    def test_is_spanning_tree(self, net10):
        tree = kruskal_mst(net10)
        assert tree.is_tree()

    def test_from_edges_minimal_triangle(self):
        edges = [(1.0, 0, 1), (2.0, 1, 2), (10.0, 0, 2)]
        chosen, total = kruskal_mst_from_edges(3, edges)
        assert set(chosen) == {(0, 1), (1, 2)}
        assert total == 3.0

    def test_from_edges_disconnected_raises(self):
        with pytest.raises(ValueError, match="does not connect"):
            kruskal_mst_from_edges(3, [(1.0, 0, 1)])


class TestMSTOptimality:
    def test_mst_not_above_star_from_source(self, net10):
        """The star from the source is *a* spanning tree, so MST <= it."""
        star_cost = sum(net10.source.manhattan(s) for s in net10.sinks)
        assert prim_mst(net10).cost() <= star_cost + 1e-9

    def test_mst_not_above_chain(self):
        net = Net.random(8, seed=11)
        chain_cost = sum(net.pins[i].manhattan(net.pins[i + 1])
                         for i in range(net.num_pins - 1))
        assert prim_mst(net).cost() <= chain_cost + 1e-9

    def test_translation_invariance(self):
        net = Net.random(9, seed=13)
        moved = Net.from_points([p.translated(1234.5, -777.0)
                                 for p in net.pins])
        assert prim_mst(net).cost() == pytest.approx(prim_mst(moved).cost())


class TestIncrementalSteinerEval:
    def test_center_of_cross_saves_wire(self):
        # Four pins in a plus shape: a center Steiner point saves wire.
        points = [Point(0, 10), Point(20, 10), Point(10, 0), Point(10, 20)]
        tree_edges = prim_mst_indices(points)
        base = sum(points[u].manhattan(points[v]) for u, v in tree_edges)
        with_center = mst_cost_with_extra_point(tree_edges, points,
                                                Point(10, 10))
        assert with_center == pytest.approx(40.0)
        assert with_center < base

    def test_extra_point_must_be_spanned(self):
        # The helper returns MST cost over points PLUS the candidate, so a
        # far-away candidate adds its cheapest attachment wire.
        points = [Point(0, 0), Point(10, 0)]
        tree_edges = prim_mst_indices(points)
        far = mst_cost_with_extra_point(tree_edges, points, Point(5, 1000))
        assert far == pytest.approx(10.0 + 1005.0)

    def test_incremental_matches_full_recompute(self, net10):
        points = list(net10.pins)
        tree_edges = prim_mst_indices(points)
        candidate = Point(5000.0, 5000.0)
        fast = mst_cost_with_extra_point(tree_edges, points, candidate)
        full_edges = prim_mst_indices(points + [candidate])
        all_points = points + [candidate]
        full = sum(all_points[u].manhattan(all_points[v])
                   for u, v in full_edges)
        assert fast == pytest.approx(full)
